"""Smoke tests: every shipped example must run to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    # Examples print to stdout; keep their connection ids stable per run.
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "adaptive_video",
        "meeting_room",
        "campus_day",
        "cell_learning",
        "backbone_multicast",
    } <= names
