"""Cross-validation: packet-level delays vs the analytic Table 2 bounds.

The admission test promises a WFQ-style delay bound
``(sigma + L_max)/b + L_max/C`` per hop for a (sigma, rho)-conformant
source served at rate ``b``.  The SCFQ MAC is an approximation of WFQ, so
measured per-packet delays for conformant traffic must stay within the
analytic bound (plus one packet transmission time of SCFQ slack per
competing flow).
"""

from repro.des import Environment
from repro.network import Link, per_hop_delay
from repro.traffic import FlowSpec, cbr_packets
from repro.wireless import CellMac


def run_scenario(rates, sigma, l_max, capacity=1000.0, duration=50.0):
    """Serve CBR flows at their reserved rates; return max delay per flow."""
    env = Environment()
    link = Link("bs", "air", capacity=capacity)
    mac = CellMac(env, link)
    for i, rate in enumerate(rates):
        link.admit(f"f{i}", rate)
        env.process(
            mac.feed(f"f{i}", cbr_packets(rate, l_max, duration=duration))
        )
    env.run(until=duration + 10.0)
    return {
        conn_id: max(
            (r.delay for r in stats.records if r.delay is not None),
            default=0.0,
        )
        for conn_id, stats in mac.stats.items()
    }


def test_conformant_cbr_meets_wfq_bound():
    """Fully-booked link, CBR at exactly the reserved rates: every flow's
    max delay stays within the analytic bound plus SCFQ slack."""
    sigma, l_max, capacity = 0.0, 10.0, 1000.0
    rates = [100.0, 300.0, 600.0]
    max_delays = run_scenario(rates, sigma, l_max, capacity)
    for i, rate in enumerate(rates):
        spec = FlowSpec(sigma=max(sigma, 1e-9), rho=rate, l_max=l_max)
        bound = per_hop_delay(rate, capacity, l_max)
        # SCFQ slack: up to one maximum packet per competing flow.
        slack = (len(rates) - 1) * l_max / capacity
        assert max_delays[f"f{i}"] <= bound + slack + 1e-9, (
            f"flow {i} at rate {rate}: {max_delays[f'f{i}']} > {bound} + {slack}"
        )


def test_bursty_conformant_source_within_burst_bound():
    """A source that dumps its full burst sigma at once still drains within
    (sigma + L)/b + L/C (+ cross-traffic slack)."""
    env = Environment()
    capacity, l_max = 1000.0, 10.0
    rate, sigma = 200.0, 60.0
    link = Link("bs", "air", capacity=capacity)
    mac = CellMac(env, link)
    link.admit("bursty", rate)
    link.admit("cross", capacity - rate)
    env.process(
        mac.feed("cross", cbr_packets(capacity - rate, l_max, duration=30.0))
    )

    def burster():
        while env.now < 30.0:
            # Dump the whole burst (sigma bits), then stay silent long
            # enough to re-earn the tokens: conformant with (sigma, rho).
            for _ in range(int(sigma / l_max)):
                mac.submit("bursty", l_max)
            yield env.timeout(sigma / rate + 1.0)

    env.process(burster())
    env.run(until=40.0)
    worst = max(
        r.delay for r in mac.stats["bursty"].records if r.delay is not None
    )
    bound = (sigma + l_max) / rate + l_max / capacity
    slack = l_max / capacity  # one cross-traffic packet
    assert worst <= bound + slack + 1e-9


def test_nonconformant_source_violates_bound():
    """Sanity check of the check: exceeding the reserved rate blows the
    bound — the MAC does not magically protect cheaters."""
    env = Environment()
    capacity, l_max, rate = 1000.0, 10.0, 100.0
    link = Link("bs", "air", capacity=capacity)
    mac = CellMac(env, link)
    link.admit("cheater", rate)
    link.admit("honest", capacity - rate)
    env.process(
        mac.feed("honest", cbr_packets(capacity - rate, l_max, duration=30.0))
    )
    # Sends at 3x the reserved rate.
    env.process(mac.feed("cheater", cbr_packets(3 * rate, l_max, duration=30.0)))
    env.run(until=40.0)
    worst = max(
        r.delay for r in mac.stats["cheater"].records if r.delay is not None
    )
    bound = per_hop_delay(rate, capacity, l_max)
    assert worst > bound  # the cheater's own queue grows


def test_admission_bound_covers_measured_delay_end_to_end():
    """Admit a connection via the Table 2 controller, then measure: the
    relaxed per-hop budget d'_1 the reverse pass committed must cover the
    actual wireless-hop delays for conformant traffic."""
    from repro.core import AdmissionController, audio_request
    from repro.network import Topology
    from repro.traffic import Connection

    topo = Topology()
    topo.add_link("air", "bs", capacity=1600.0)
    topo.add_link("bs", "router", capacity=10_000.0)
    controller = AdmissionController(topo)
    conn = Connection(src="air", dst="router", qos=audio_request())
    result = controller.admit(conn, ["air", "bs", "router"])
    assert result.accepted

    env = Environment()
    mac = CellMac(env, topo.link("air", "bs"))
    env.process(
        mac.feed(conn.conn_id, cbr_packets(16.0, 1.0, duration=60.0))
    )
    # Background traffic filling the rest of the wireless hop.
    topo.link("air", "bs").admit("bg", 1500.0)
    env.process(mac.feed("bg", cbr_packets(1500.0, 1.0, duration=60.0)))
    env.run(until=70.0)
    worst = max(
        r.delay
        for r in mac.stats[conn.conn_id].records
        if r.delay is not None
    )
    assert worst <= result.hop_delays[0] + 1e-9
