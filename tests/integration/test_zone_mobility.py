"""Multi-zone mobility: profiles follow portables across zone boundaries."""

import random

from repro.profiles import ZoneDirectory


def build_two_zone_floor():
    """Two zones of three cells each, joined at a border corridor pair."""
    directory = ZoneDirectory()
    directory.add_zone("west", cells=["w1", "w2", "w3"])
    directory.add_zone("east", cells=["e1", "e2", "e3"])
    adjacency = {
        "w1": ["w2"], "w2": ["w1", "w3"], "w3": ["w2", "e1"],
        "e1": ["w3", "e2"], "e2": ["e1", "e3"], "e3": ["e2"],
    }
    return directory, adjacency


def test_commuter_profile_survives_many_crossings():
    """A portable commuting between zones keeps an intact triplet history
    on whichever server currently owns it."""
    directory, adjacency = build_two_zone_floor()
    path = ["w1", "w2", "w3", "e1", "e2", "e3"]
    directory.seed_presence("commuter", "w1")
    for _round in range(4):
        for a, b in zip(path, path[1:]):
            directory.report_handoff("commuter", a, b)
        for a, b in zip(reversed(path), list(reversed(path))[1:]):
            directory.report_handoff("commuter", a, b)
    assert directory.cross_zone_handoffs == 8  # one crossing each way, x4
    # The east server currently... the commuter ended back at w1.
    assert directory.portable_zone("commuter") == "west"
    profile = directory.server_for_zone("west").portable_profile("commuter")
    # Mid-route triplets from both zones are intact in one profile.
    assert profile.next_predicted("w2", "w3") == "e1"
    assert profile.next_predicted("e2", "e1") == "w3"


def test_random_multi_portable_churn_consistency():
    """Random walks of many portables: every portable is owned by exactly
    one server, and ownership matches its last known cell's zone."""
    directory, adjacency = build_two_zone_floor()
    rng = random.Random(7)
    cells = list(adjacency)
    position = {}
    for i in range(12):
        pid = f"p{i}"
        position[pid] = rng.choice(cells)
        directory.seed_presence(pid, position[pid])

    for _ in range(400):
        pid = rng.choice(list(position))
        current = position[pid]
        nxt = rng.choice(adjacency[current])
        directory.report_handoff(pid, current, nxt)
        position[pid] = nxt

    west = directory.server_for_zone("west")
    east = directory.server_for_zone("east")
    for pid, cell in position.items():
        zone = directory.zone_of(cell)
        assert directory.portable_zone(pid) == zone
        owner = west if zone == "west" else east
        other = east if zone == "west" else west
        assert pid in owner.portables
        assert pid not in other.portables
    # Total portables conserved across the two servers.
    assert len(west.portables) + len(east.portables) == 12


def test_zone_prediction_uses_owning_server_after_crossing():
    directory, adjacency = build_two_zone_floor()
    directory.seed_presence("p", "w2")
    for _ in range(3):
        directory.report_handoff("p", "w2", "w3")
        directory.report_handoff("p", "w3", "e1")
        directory.report_handoff("p", "e1", "w3")
        directory.report_handoff("p", "w3", "w2")
    prediction = directory.predict_next("p", "w3", previous_cell="w2")
    assert prediction.cell == "e1"
    prediction = directory.predict_next("p", "e1", previous_cell="w3")
    assert prediction.cell == "w3"
