"""Cross-module integration tests: the full pipeline in one place."""

import random

import pytest

from repro.core import (
    AdaptationProtocol,
    AdmissionController,
    audio_request,
    video_request,
)
from repro.des import Environment
from repro.mobility import campus_floorplan, figure4_floorplan, office_week_trace
from repro.network import Discipline, campus_backbone
from repro.network.routing import qos_route
from repro.profiles import ProfileServer
from repro.sim import FloorplanSimulator
from repro.traffic import Connection
from repro.wireless import GilbertElliottChannel


def test_wired_admission_plus_distributed_adaptation():
    """Admit over the backbone with Table 2, then let the distributed
    protocol divide the excess — final rates must be max-min fair."""
    topo = campus_backbone(["A", "B"], wireless_capacity=1600.0)
    env = Environment()
    controller = AdmissionController(topo, Discipline.WFQ)
    protocol = AdaptationProtocol(env, topo)

    conns = []
    for i in range(3):
        conn = Connection(src=f"air:A", dst="bs:B" if i else "router",
                          qos=video_request(), conn_id=f"v{i}")
        route = qos_route(topo, conn.src, conn.dst, conn.b_min)
        result = controller.admit(conn, route, static_portable=False)
        assert result.accepted
        conn.activate(route, result.granted_rate, env.now)
        protocol.register_connection(conn)
        conns.append(conn)
    env.run()

    reference = protocol.reference_allocation()
    for conn in conns:
        assert protocol.rate_of(conn.conn_id) == pytest.approx(
            conn.b_min + reference[conn.conn_id], abs=1e-3
        )
        assert conn.qos.bounds.contains(conn.rate)


def test_channel_fade_triggers_adaptation_round():
    topo = campus_backbone(["A"], wireless_capacity=1600.0)
    env = Environment()
    protocol = AdaptationProtocol(env, topo, delta=1.0)
    conn = Connection(src="bs:A", dst="air:A", qos=video_request(), conn_id="v")
    conn.activate(["bs:A", "air:A"], 60.0, 0.0)
    protocol.register_connection(conn)
    env.run()
    assert protocol.rate_of("v") == pytest.approx(600.0)  # b_max on idle cell

    wireless = topo.link("bs:A", "air:A")
    channel = GilbertElliottChannel(random.Random(1), capacity_factor_bad=0.25)
    nominal = wireless.capacity

    def on_flip(state, now):
        wireless.capacity = nominal * channel.capacity_factor()
        protocol.notify_capacity_change(wireless.key)

    env.process(channel.run(env, on_flip))
    # Run until at least one fade has been processed.
    env.run(until=100.0)
    assert channel.transitions  # the channel did flip
    assert conn.qos.bounds.contains(protocol.rate_of("v"))


def test_profile_learning_improves_reservation_placement():
    """Replay a measured week through the live manager: after learning,
    the corridor base station reserves in the right office."""
    plan = figure4_floorplan()
    sim = FloorplanSimulator(plan, capacity=1600.0, static_threshold=1e6)
    trace = office_week_trace(seed=11)

    faculty = sim.add_portable("faculty", "C", home_office="A")
    sim.request_connection("faculty", audio_request())
    # Train the profile server with a slice of the week (cells only).
    for event in trace.events[:400]:
        sim.manager.server.report_handoff(
            event.portable, event.from_cell, event.to_cell
        )
    # Faculty walks C -> D; the base station must book office A.
    sim.move("faculty", "D")
    assert sim.manager.base_station("D").reservation_target("faculty") == "A"
    assert sim.cells["A"].reservations.targeted_for("faculty") > 0


def test_full_campus_tick_with_background_load():
    """A dense mini-day: admissions, upgrades, handoffs, drops all coexist
    without resource-accounting violations."""
    plan = campus_floorplan()
    sim = FloorplanSimulator(plan, capacity=200.0, static_threshold=50.0)
    rng = random.Random(5)

    portables = []
    for i, cell in enumerate(["office-1", "office-2", "cor-1", "cor-2", "lounge"]):
        pid = f"u{i}"
        sim.add_portable(pid, cell)
        sim.request_connection(pid, audio_request())
        portables.append(pid)

    for step in range(120):
        sim.env.run(until=sim.env.now + 30.0)
        pid = rng.choice(portables)
        current = sim.portables[pid].current_cell
        target = rng.choice(sorted(plan.neighbors(current), key=repr))
        sim.move(pid, target)
        if step % 10 == 0:
            sim.manager.refresh_static_states()
        # Invariant: no link oversubscribed at the floor level.
        for cell in sim.cells.values():
            assert cell.link.min_committed <= cell.link.capacity + 1e-6
            assert cell.link.reserved >= 0

    assert sim.stats.handoff_attempts > 0
    # Rates always within negotiated bounds.
    for conn in sim.manager.connections.values():
        if conn.qos.bounds is not None and conn.state.value == "active":
            assert conn.qos.bounds.contains(conn.rate)


def test_zone_handover_between_profile_servers():
    """Portable profiles migrate across zones without losing triplets."""
    north = ProfileServer(zone_id="north")
    south = ProfileServer(zone_id="south")
    north.seed_presence("p", "n1")
    north.report_handoff("p", "n1", "n2")
    north.report_handoff("p", "n2", "border")
    profile = north.forget_portable("p")
    south.adopt_portable(profile, context=("n2", "border"))
    south.report_handoff("p", "border", "s1")
    assert south.portable_profile("p").next_predicted("n2", "border") == "s1"
    assert south.portable_profile("p").next_predicted("n1", "n2") == "border"
