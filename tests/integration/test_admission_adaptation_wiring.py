"""Integration of admission stamping with the adaptation protocol.

Section 5.3.1: "in the forward pass of admission test ... the stamped rate
is also reset to the smallest of the connection's b_max - b_min and the
advertised rates of all links on the packet's forward route."  The
:class:`AdmissionController` takes the advertised-rate function as a hook;
here we wire it to a live :class:`AdaptationProtocol` and check that new
static connections are stamped with the protocol's current view instead of
raw unassigned capacity.
"""

import pytest

from repro.core import AdaptationProtocol, AdmissionController, QoSBounds, QoSRequest
from repro.des import Environment
from repro.network import line_topology
from repro.network.routing import shortest_path
from repro.traffic import Connection, FlowSpec


def make_conn(topo, src, dst, b_min, b_max, cid):
    qos = QoSRequest(
        flowspec=FlowSpec(sigma=1.0, rho=b_min),
        bounds=QoSBounds(b_min, b_max),
    )
    return Connection(src=src, dst=dst, qos=qos, conn_id=cid)


def test_stamp_uses_protocol_advertised_rates():
    topo = line_topology(3, capacity=100.0)
    env = Environment()
    protocol = AdaptationProtocol(env, topo)
    controller = AdmissionController(
        topo,
        advertised_rate=lambda link: protocol.link_states[link.key].advertised(),
    )

    # An incumbent static connection takes the whole excess first.
    incumbent = make_conn(topo, "s0", "s2", 10.0, 1000.0, "incumbent")
    result = controller.admit(
        incumbent, shortest_path(topo, "s0", "s2"), static_portable=True
    )
    incumbent.activate(shortest_path(topo, "s0", "s2"), result.granted_rate, 0.0)
    protocol.register_connection(incumbent, kickoff=True)
    env.run()
    assert protocol.rate_of("incumbent") == pytest.approx(100.0, abs=1e-3)

    # A newcomer's stamp reflects the advertised fair share, not zero and
    # not the raw leftover.
    newcomer = make_conn(topo, "s0", "s2", 10.0, 1000.0, "newcomer")
    result = controller.admit(
        newcomer, shortest_path(topo, "s0", "s2"), static_portable=True
    )
    assert result.accepted
    # With the protocol hook, the stamp is the advertised excess capped by
    # the headroom after the newcomer's own floor (100 - 10 - 10 = 80).
    # Without the hook it would be 0: the incumbent's excess grant consumes
    # all *unassigned* capacity.
    assert result.b_stamp == pytest.approx(80.0)
    plain = AdmissionController(topo)
    probe = plain.admit(
        make_conn(topo, "s0", "s2", 10.0, 1000.0, "probe"),
        shortest_path(topo, "s0", "s2"),
        static_portable=True,
        commit=False,
    )
    assert probe.b_stamp == pytest.approx(0.0)

    # After registration the protocol settles both at the true max-min.
    newcomer.activate(shortest_path(topo, "s0", "s2"), result.granted_rate, 0.0)
    protocol.register_connection(newcomer)
    env.run()
    assert protocol.rate_of("incumbent") == pytest.approx(50.0, abs=1e-3)
    assert protocol.rate_of("newcomer") == pytest.approx(50.0, abs=1e-3)


def test_default_stamp_hook_uses_unassigned_capacity():
    topo = line_topology(2, capacity=100.0)
    controller = AdmissionController(topo)
    conn = make_conn(topo, "s0", "s1", 10.0, 1000.0, "c")
    result = controller.admit(conn, ["s0", "s1"], static_portable=True)
    # Without a protocol, the stamp is the link's unassigned capacity.
    assert result.b_stamp == pytest.approx(90.0)
