"""Scale stress: a big floor, heavy churn, global invariants throughout."""

import random

import pytest

from repro.core import audio_request
from repro.mobility import FloorPlan
from repro.profiles import CellClass
from repro.sim import FloorplanSimulator
from repro.traffic import ConnectionState


def big_floorplan(rows=4, cols=6) -> FloorPlan:
    """A grid of corridors with offices hanging off the edges."""
    plan = FloorPlan(name="grid")
    for r in range(rows):
        for c in range(cols):
            plan.add_cell((r, c), CellClass.CORRIDOR)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                plan.connect((r, c), (r, c + 1))
            if r + 1 < rows:
                plan.connect((r, c), (r + 1, c))
    for c in range(cols):
        plan.add_cell(("office", c), CellClass.OFFICE)
        plan.connect(("office", c), (0, c))
    plan.validate()
    return plan


def test_heavy_churn_preserves_global_invariants():
    plan = big_floorplan()
    sim = FloorplanSimulator(plan, capacity=120.0, static_threshold=200.0, seed=3)
    rng = random.Random(3)

    portables = []
    for i in range(40):
        pid = f"u{i}"
        cell = rng.choice(plan.cells)
        sim.add_portable(pid, cell)
        sim.request_connection(pid, audio_request())
        portables.append(pid)

    moves = 0
    for step in range(600):
        sim.env.run(until=sim.env.now + 10.0)
        pid = rng.choice(portables)
        current = sim.portables[pid].current_cell
        neighbors = sorted(plan.neighbors(current), key=repr)
        sim.move(pid, rng.choice(neighbors))
        moves += 1
        if step % 50 == 0:
            sim.manager.refresh_static_states()

        # Global invariants after every single handoff:
        for cell in sim.cells.values():
            link = cell.link
            # Floors never oversubscribe capacity.
            assert link.min_committed <= link.capacity + 1e-6
            # Ledger and link reservation stay in sync.
            assert link.reserved == pytest.approx(cell.reservations.total)
            assert link.reserved >= -1e-9

    # Every portable's connection is in a consistent state.
    active = dropped = 0
    for conn in sim.manager.connections.values():
        if conn.state is ConnectionState.ACTIVE:
            active += 1
            owner = sim.portables[conn.portable_id]
            # The active connection is allocated exactly in its owner's cell.
            hosting = [
                cid
                for cid, cell in sim.cells.items()
                if conn.conn_id in cell.link.allocations
            ]
            assert hosting == [owner.current_cell]
            assert conn.qos.bounds.contains(conn.rate)
        elif conn.state is ConnectionState.DROPPED:
            dropped += 1
            # Dropped connections hold nothing anywhere.
            assert not any(
                conn.conn_id in cell.link.allocations
                for cell in sim.cells.values()
            )
    assert active + dropped == len(sim.manager.connections)
    assert sim.stats.handoff_attempts > 0
    assert moves == 600


def test_occupancy_bookkeeping_consistent_at_scale():
    plan = big_floorplan(rows=3, cols=4)
    sim = FloorplanSimulator(plan, capacity=1600.0, seed=9)
    rng = random.Random(9)
    for i in range(25):
        sim.add_portable(f"u{i}", rng.choice(plan.cells))
    for _ in range(300):
        pid = f"u{rng.randrange(25)}"
        current = sim.portables[pid].current_cell
        sim.move(pid, rng.choice(sorted(plan.neighbors(current), key=repr)))
    # Presence sets partition the population.
    seen = {}
    for cell_id, cell in sim.cells.items():
        for pid in cell.present:
            assert pid not in seen, f"{pid} present in two cells"
            seen[pid] = cell_id
    assert len(seen) == 25
    for pid, cell_id in seen.items():
        assert sim.portables[pid].current_cell == cell_id
