"""Tests for the adaptation-value experiment."""

import pytest

from repro.experiments import render_adaptation_value, run_adaptation_value


@pytest.fixture(scope="module")
def results():
    return run_adaptation_value(duration=120.0, seed=23)


def test_policies_labelled(results):
    assert [r.policy for r in results] == ["fixed", "adaptive"]


def test_adaptive_keeps_delay_bounded(results):
    fixed, adaptive = results
    assert adaptive.mean_delay < 0.2
    assert fixed.mean_delay > 1.0  # queues blow up during fades


def test_adaptive_switches_layers_fixed_does_not(results):
    fixed, adaptive = results
    assert adaptive.layer_switches > 0
    assert fixed.layer_switches == 0


def test_goodputs_positive_and_plausible(results):
    for r in results:
        assert 100.0 < r.goodput < 1600.0
        assert 0.0 <= r.loss_rate < 0.05


def test_render(results):
    text = render_adaptation_value(results)
    assert "fading link" in text
    assert "adaptive" in text
