"""Tests for the Figure 6 default-algorithm experiment."""

import pytest

from repro.experiments import (
    render_figure6,
    run_figure6,
    run_plain_baseline,
)


@pytest.fixture(scope="module")
def points():
    # A reduced sweep keeps the test fast; the bench runs the full figure.
    return run_figure6(
        windows=(0.05,),
        p_qos_values=(0.001, 0.02, 0.3),
        seeds=(1, 2),
        horizon=200.0,
    )


def test_pb_decreases_along_each_curve(points):
    """The paper's reading of Figure 6: P_b decreases with increasing P_d."""
    curve = sorted(points, key=lambda p: p.p_qos)
    p_bs = [p.p_b for p in curve]
    assert p_bs == sorted(p_bs, reverse=True)
    p_ds = [p.p_d for p in curve]
    assert p_ds == sorted(p_ds)


def test_curves_converge_to_plain_baseline(points):
    baseline = run_plain_baseline(seeds=(1, 2), horizon=200.0)
    loosest = max(points, key=lambda p: p.p_qos)
    assert loosest.p_b == pytest.approx(baseline.p_b, abs=0.01)
    assert loosest.p_d == pytest.approx(baseline.p_d, abs=0.01)


def test_strict_pqos_keeps_pd_near_target(points):
    strict = min(points, key=lambda p: p.p_qos)
    # The design goal: measured P_d stays at or below ~P_QOS scale.
    assert strict.p_d <= 5 * strict.p_qos + 0.002


def test_render_lists_every_point(points):
    baseline = run_plain_baseline(seeds=(1,), horizon=100.0)
    text = render_figure6(points, baseline)
    assert "Figure 6" in text
    assert "plain" in text
    assert text.count("\n") >= len(points) + 2
