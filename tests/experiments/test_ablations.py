"""Tests for the ablation experiments."""

from repro.experiments import (
    mlist_overhead,
    pool_fraction_sweep,
    prediction_levels,
    render_mlist_overhead,
    render_pool_fraction,
    render_prediction_levels,
    render_static_vs_predictive,
    static_vs_predictive,
)


def test_mlist_refinement_saves_messages_preserves_allocation():
    rows = mlist_overhead(conns=5, switches=5, seeds=(3, 4))
    for seed, refined_msgs, flooding_msgs, err_r, err_f in rows:
        assert refined_msgs < flooding_msgs
        assert err_r < 1e-3
        assert err_f < 1e-3
    assert "flooding" in render_mlist_overhead(rows)


def test_prediction_level_contributions():
    rows = {name: rate for name, _preds, rate in prediction_levels(seed=1996)}
    full = rows["full three-level"]
    assert full >= rows["level 1 only (portable profile)"]
    assert full >= rows["level 2 only (cell profile)"]
    assert full > 0.6
    assert "three-level" in render_prediction_levels(list(rows.items()))


def test_pool_fraction_monotone_drop_rate():
    rows = pool_fraction_sweep(fractions=(0.0, 0.05, 0.10), trials=60)
    rates = [rate for _f, _n, _d, rate in rows]
    assert rates[0] >= rates[1] >= rates[2]
    assert rates[0] > 0.5          # no pool: sudden movers mostly drop
    assert rates[2] == 0.0         # a 10% pool covers a 16/160 connection
    assert "B_dyn" in render_pool_fraction(rows)


def test_static_vs_predictive_frontier():
    rows = static_vs_predictive(
        static_reserves=(0.0, 4.0),
        p_qos_values=(0.005, 0.3),
        seeds=(1, 2),
        horizon=150.0,
    )
    static = rows["static"]
    predictive = rows["predictive"]
    assert len(static) == 2 and len(predictive) == 2
    # Bigger static reserve: fewer drops, more blocks.
    assert static[1][1] <= static[0][1]
    assert static[1][2] >= static[0][2]
    # Stricter P_QOS: fewer drops, more blocks.
    assert predictive[0][1] <= predictive[1][1]
    assert predictive[0][2] >= predictive[1][2]
    text = render_static_vs_predictive(rows)
    assert "predictive" in text and "static" in text
