"""Tests for the Table 2 admission experiment driver."""

import pytest

from repro.experiments import render_table2, run_table2
from repro.network import Discipline


@pytest.fixture(scope="module")
def cases():
    return run_table2()


def test_covers_both_disciplines_and_workloads(cases):
    keys = {(c.name, c.discipline) for c in cases}
    assert ("audio (static)", Discipline.WFQ) in keys
    assert ("video (static)", Discipline.RCSP) in keys


def test_accepted_and_rejected_cases_present(cases):
    accepted = [c for c in cases if c.result.accepted]
    rejected = [c for c in cases if not c.result.accepted]
    assert len(accepted) == 5
    assert len(rejected) == 1
    assert rejected[0].result.reason == "delay"


def test_static_vs_mobile_grants(cases):
    static_audio = next(
        c for c in cases
        if c.name == "audio (static)" and c.discipline is Discipline.WFQ
    )
    mobile_audio = next(c for c in cases if c.name == "audio (mobile)")
    assert static_audio.result.granted_rate == 64.0
    assert mobile_audio.result.granted_rate == 16.0
    assert mobile_audio.result.b_stamp == 0.0


def test_per_hop_audit_lengths(cases):
    for case in cases:
        if case.result.accepted:
            hops = len(case.route) - 1
            assert len(case.result.hop_delays) == hops
            assert len(case.result.hop_buffers) == hops


def test_render_contains_per_hop_tables(cases):
    text = render_table2(cases)
    assert "Table 2" in text
    assert "per-hop commitments" in text
    assert "reject:delay" in text
