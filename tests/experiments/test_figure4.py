"""Tests for the Figure 4 office-case experiment."""

import pytest

from repro.experiments import render_figure4, run_figure4
from repro.mobility import OFFICE_WEEK_TARGETS


@pytest.fixture(scope="module")
def result():
    return run_figure4(seed=1996)


def test_split_close_to_paper_targets(result):
    """Outcome counts are within a few journeys of Section 7.1's numbers
    (return walks can occasionally intersect a forward journey)."""
    for group, (a, b, away) in result.split.items():
        ta, tb, taway = OFFICE_WEEK_TARGETS[group]
        assert abs(a - ta) <= 3, group
        assert abs(b - tb) <= 3, group
        assert abs(away - taway) <= 5, group


def test_brute_force_always_hits_but_wastes(result):
    brute = result.strategies[0]
    assert brute.hit_rate == 1.0
    # Four neighbors of D: three of four reservations are always wasted.
    assert brute.waste_rate == pytest.approx(0.75)


def test_profile_strategies_beat_waste(result):
    brute, aggregate, threelevel = result.strategies
    assert aggregate.waste_rate < brute.waste_rate
    assert threelevel.waste_rate < brute.waste_rate
    assert threelevel.hit_rate >= aggregate.hit_rate


def test_occupants_highly_predictable(result):
    """Paper take-away (a): deterministic reservation for office occupants
    is valid — occupant groups predict far better than passers-by."""
    preds_f, hits_f = result.threelevel_by_group["faculty"]
    preds_s, hits_s = result.threelevel_by_group["students"]
    preds_o, hits_o = result.threelevel_by_group["others"]
    assert hits_f / preds_f > 0.7
    assert hits_s / preds_s > 0.8
    assert hits_o / preds_o < 0.65


def test_render_contains_tables(result):
    text = render_figure4(result)
    assert "Figure 4" in text
    assert "brute-force" in text
    assert "faculty" in text
