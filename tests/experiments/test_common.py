"""Tests for the experiment rendering helpers."""

from repro.experiments.common import format_series, format_table, sparkline


def test_format_table_alignment_and_title():
    text = format_table(
        ["name", "value"],
        [("alpha", 1.5), ("b", 100)],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert lines[1].startswith("name")
    assert set(lines[2]) <= {"-", " "}
    # Columns align: 'value' entries start at the same offset.
    offset = lines[1].index("value")
    assert lines[3][offset:].startswith("1.5")
    assert lines[4][offset:].startswith("100")


def test_format_table_float_formatting():
    text = format_table(["x"], [(0.00001234,), (3.0,), (123456.0,)])
    assert "1.234e-05" in text
    assert "\n3" in text
    assert "1.235e+05" in text or "1.234e+05" in text


def test_sparkline_scales_to_max():
    line = sparkline([0, 1, 2, 4])
    assert len(line) == 4
    assert line[-1] == "█"
    assert line[0] == " "


def test_sparkline_downsamples_preserving_peaks():
    values = [0.0] * 100
    values[50] = 9.0
    line = sparkline(values, width=10)
    assert len(line) == 10
    assert "█" in line  # the spike survives max-pooling


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_format_series_summary():
    text = format_series("demo", [(0.0, 1), (1.0, 5), (2.0, 2)])
    assert "total=8" in text
    assert "peak=5" in text
    assert text.startswith("demo")
