"""Tests for the Figure 5 meeting-room experiment."""

import pytest

from repro.experiments import (
    Figure5Config,
    render_figure5,
    run_figure5,
    run_figure5_comparison,
)


@pytest.fixture(scope="module")
def comparison():
    return run_figure5_comparison()


def test_offered_loads_match_paper(comparison):
    lecture = comparison[(35, "meeting_room")].config
    lab = comparison[(55, "meeting_room")].config
    # Paper: 59% and 94%; the 75/25 16/64 kbps mix gives 61% / 96%.
    assert lecture.offered_load == pytest.approx(0.61, abs=0.03)
    assert lab.offered_load == pytest.approx(0.96, abs=0.03)


def test_meeting_room_never_drops(comparison):
    assert comparison[(35, "meeting_room")].drops == 0
    assert comparison[(55, "meeting_room")].drops == 0


def test_drop_ordering_matches_paper(comparison):
    """Brute force >= aggregation >= meeting room, strict at high load."""
    for students in (35, 55):
        brute = comparison[(students, "brute_force")].drops
        aggregate = comparison[(students, "aggregation")].drops
        meeting = comparison[(students, "meeting_room")].drops
        assert brute >= aggregate >= meeting
    assert comparison[(55, "brute_force")] .drops > comparison[
        (55, "aggregation")
    ].drops
    assert comparison[(55, "brute_force")].drops > 0


def test_load_increases_drops(comparison):
    assert (
        comparison[(55, "brute_force")].drops
        >= comparison[(35, "brute_force")].drops
    )


def test_activity_series_shapes(comparison):
    """Figure 5 panels: entries cluster at the start, exits after the end."""
    r = comparison[(55, "meeting_room")]
    config = r.config
    assert r.into_class.total == 55
    assert r.out_of_class.total == 55
    # All entries within the arrival window.
    entry_peak_t, _ = r.into_class.peak()
    assert config.start - 600.0 <= entry_peak_t <= config.start + 240.0
    exit_peak_t, _ = r.out_of_class.peak()
    assert config.end <= exit_peak_t <= config.end + 300.0
    # Hall activity strictly exceeds classroom entries (walk-by traffic).
    assert r.hall_at_start.total > r.into_class.total


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        run_figure5(Figure5Config(students=5), "magic")


def test_render_includes_drop_table(comparison):
    text = render_figure5(comparison)
    assert "Connection drops per reservation policy" in text
    assert "meeting_room" in text
    assert "paper drops" in text
