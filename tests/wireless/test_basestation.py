"""Tests for the base-station control agent (Section 6.4 cascade)."""

import pytest

from repro.core import StaticMobileClassifier, audio_request
from repro.core.prediction import PredictionLevel
from repro.profiles import CellClass, ProfileServer
from repro.traffic import Connection
from repro.wireless import BaseStation, Cell, Portable


def build():
    cells = {
        "office": Cell("office", capacity=160.0, cell_class=CellClass.OFFICE),
        "corridor": Cell("corridor", capacity=160.0, cell_class=CellClass.CORRIDOR),
        "lounge": Cell("lounge", capacity=160.0, cell_class=CellClass.DEFAULT),
    }
    cells["office"].add_neighbor("corridor")
    cells["corridor"].add_neighbor("office")
    cells["corridor"].add_neighbor("lounge")
    cells["lounge"].add_neighbor("corridor")
    cells["office"].occupants.add("worker")
    server = ProfileServer()
    for cid, cell in cells.items():
        profile = server.register_cell(cid, cell.cell_class,
                                       neighbors=sorted(cell.neighbors, key=repr))
        profile.occupants |= cell.occupants
    statmob = StaticMobileClassifier(threshold=100.0)
    stations = {
        cid: BaseStation(cell, server, statmob, cells.__getitem__)
        for cid, cell in cells.items()
    }
    return cells, server, statmob, stations


def with_connection(pid, cell_id, cells):
    p = Portable(pid)
    p.move_to(cell_id, 0.0)
    conn = Connection(src="x", dst="y", qos=audio_request())
    conn.activate(["x", "y"], 16.0, 0.0)
    p.attach(conn)
    return p


def test_static_portable_gets_no_reservation():
    cells, server, statmob, stations = build()
    p = with_connection("worker", "office", cells)
    statmob.observe("worker", "office", 0.0)
    prediction = stations["office"].plan_advance_reservation(p, now=200.0)
    assert prediction is None
    assert stations["office"].predictions_skipped_static == 1
    assert cells["corridor"].reservations.targeted_for("worker") == 0.0


def test_occupant_in_own_office_no_reservation():
    """Section 6.4 office rule 2: an occupant at home is expected to stay."""
    cells, server, statmob, stations = build()
    p = with_connection("worker", "office", cells)
    prediction = stations["office"].plan_advance_reservation(p, now=0.0)
    assert prediction is not None
    assert prediction.cell is None
    for cell in cells.values():
        assert cell.reservations.targeted_for("worker") == 0.0


def test_corridor_occupant_rule_reserves_home_office():
    cells, server, statmob, stations = build()
    p = with_connection("worker", "corridor", cells)
    prediction = stations["corridor"].plan_advance_reservation(p, now=0.0)
    assert prediction.cell == "office"
    assert prediction.level is PredictionLevel.CELL_PROFILE
    assert cells["office"].reservations.targeted_for("worker") == pytest.approx(16.0)


def test_portable_profile_beats_occupant_rule():
    cells, server, statmob, stations = build()
    p = with_connection("worker", "corridor", cells)
    p.previous_cell = "office"
    # History says: coming from office, the worker heads to the lounge.
    server.seed_presence("worker", "office")
    for _ in range(3):
        server.report_handoff("worker", "office", "corridor")
        server.report_handoff("worker", "corridor", "lounge")
        server.report_handoff("worker", "lounge", "corridor")
        server.report_handoff("worker", "corridor", "office")
    prediction = stations["corridor"].plan_advance_reservation(p, now=0.0)
    assert prediction.level is PredictionLevel.PORTABLE_PROFILE
    assert prediction.cell == "lounge"
    assert cells["lounge"].reservations.targeted_for("worker") == pytest.approx(16.0)


def test_moving_reservation_releases_old_target():
    cells, server, statmob, stations = build()
    p = with_connection("worker", "corridor", cells)
    stations["corridor"].plan_advance_reservation(p, now=0.0)
    assert cells["office"].reservations.targeted_for("worker") == 16.0
    # Teach a strong (prev, cur) -> lounge triplet; replan moves the booking.
    server.seed_presence("worker", "office")
    for _ in range(3):
        server.report_handoff("worker", "office", "corridor")
        server.report_handoff("worker", "corridor", "lounge")
        server.report_handoff("worker", "lounge", "office")
    p.previous_cell = "office"
    stations["corridor"].plan_advance_reservation(p, now=0.0)
    assert cells["office"].reservations.targeted_for("worker") == 0.0
    assert cells["lounge"].reservations.targeted_for("worker") == 16.0


def test_default_prediction_makes_no_targeted_reservation():
    cells, server, statmob, stations = build()
    p = with_connection("stranger", "lounge", cells)
    prediction = stations["lounge"].plan_advance_reservation(p, now=0.0)
    assert prediction.cell is None
    assert prediction.level is PredictionLevel.DEFAULT
    for cell in cells.values():
        assert cell.reservations.targeted_for("stranger") == 0.0


def test_no_demand_no_reservation():
    cells, server, statmob, stations = build()
    p = Portable("idle")
    p.move_to("corridor", 0.0)
    prediction = stations["corridor"].plan_advance_reservation(p, now=0.0)
    assert prediction is None


def test_withdraw_reservation_idempotent():
    cells, server, statmob, stations = build()
    p = with_connection("worker", "corridor", cells)
    stations["corridor"].plan_advance_reservation(p, now=0.0)
    stations["corridor"].withdraw_reservation("worker")
    stations["corridor"].withdraw_reservation("worker")
    assert cells["office"].reservations.targeted_for("worker") == 0.0
    assert stations["corridor"].reservation_target("worker") is None
