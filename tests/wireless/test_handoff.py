"""Tests for the handoff engine's admission cascade."""

import pytest

from repro.core import audio_request
from repro.profiles import CellClass
from repro.traffic import Connection, ConnectionState
from repro.wireless import Cell, HandoffEngine, Portable


def build(target_capacity=100.0):
    cells = {
        "src": Cell("src", capacity=1000.0, cell_class=CellClass.CORRIDOR),
        "dst": Cell("dst", capacity=target_capacity, cell_class=CellClass.DEFAULT),
    }
    cells["src"].add_neighbor("dst")
    cells["dst"].add_neighbor("src")
    engine = HandoffEngine(get_cell=cells.__getitem__)
    return cells, engine


def portable_with_conn(cells, bw=16.0):
    p = Portable("p")
    p.move_to("src", 0.0)
    cells["src"].enter("p", 0.0)
    conn = Connection(src="x", dst="y", qos=audio_request(b_min=bw, b_max=bw))
    conn.activate(["x", "y"], bw, 0.0)
    p.attach(conn)
    cells["src"].link.admit(conn.conn_id, bw)
    return p, conn


def test_clean_handoff_moves_allocation():
    cells, engine = build()
    p, conn = portable_with_conn(cells)
    outcome = engine.execute(p, "dst", now=1.0)
    assert outcome.clean
    assert conn.conn_id in cells["dst"].link.allocations
    assert conn.conn_id not in cells["src"].link.allocations
    assert p.current_cell == "dst"
    assert conn.handoffs == 1
    assert "p" in cells["dst"].present
    assert "p" not in cells["src"].present


def test_handoff_rate_resets_to_floor():
    cells, engine = build()
    p = Portable("p")
    p.move_to("src", 0.0)
    conn = Connection(src="x", dst="y", qos=audio_request())  # [16, 64]
    conn.activate(["x", "y"], 16.0, 0.0)
    conn.rate = 64.0  # upgraded while static
    p.attach(conn)
    cells["src"].link.admit(conn.conn_id, 16.0)
    engine.execute(p, "dst", now=1.0)
    assert conn.rate == 16.0


def test_drop_when_target_saturated():
    cells, engine = build(target_capacity=40.0)
    p, conn = portable_with_conn(cells)
    cells["dst"].link.admit("bg", 38.0)
    cells["dst"].reservations.set_pool(0.0)  # clamps to 5% = 2.0
    outcome = engine.execute(p, "dst", now=1.0)
    assert not outcome.clean
    assert conn.state is ConnectionState.DROPPED
    assert conn not in p.connections
    # The portable itself still moved.
    assert p.current_cell == "dst"


def test_targeted_reservation_rescues_handoff():
    cells, engine = build(target_capacity=40.0)
    p, conn = portable_with_conn(cells)
    cells["dst"].reservations.reserve_for_portable("p", 16.0)
    cells["dst"].link.admit("bg", 22.0)  # leaves 0 free beyond resv + pool
    outcome = engine.execute(p, "dst", now=1.0)
    assert outcome.clean
    assert outcome.claimed_targeted == pytest.approx(16.0)
    # The reservation was consumed.
    assert cells["dst"].reservations.targeted_for("p") == 0.0


def test_aggregate_pool_draw():
    cells, engine = build(target_capacity=40.0)
    p, conn = portable_with_conn(cells)
    cells["dst"].reservations.reserve_aggregate(("meeting", "dst"), 16.0)
    cells["dst"].link.admit("bg", 22.0)
    outcome = engine.execute(p, "dst", now=1.0)
    assert outcome.clean
    assert outcome.claimed_aggregate == pytest.approx(16.0)
    assert cells["dst"].reservations.aggregate_for(("meeting", "dst")) == 0.0


def test_pool_draw_for_unforeseen_arrival():
    cells, engine = build(target_capacity=100.0)
    p, conn = portable_with_conn(cells)
    # Pool is 5 (5% of 100).  Floors of 80 leave 15 free beyond the pool:
    # the 16-unit arrival needs 1 unit from B_dyn.
    cells["dst"].link.admit("bg", 80.0)
    outcome = engine.execute(p, "dst", now=1.0)
    assert outcome.clean
    assert outcome.claimed_pool == pytest.approx(1.0)
    assert cells["dst"].reservations.pool == pytest.approx(4.0)


def test_best_effort_connections_always_move():
    from repro.core.qos import QoSRequest
    from repro.traffic import FlowSpec

    cells, engine = build(target_capacity=40.0)
    cells["dst"].link.admit("bg", 40.0 - 2.0)
    p = Portable("p")
    p.move_to("src", 0.0)
    conn = Connection(
        src="x", dst="y",
        qos=QoSRequest(flowspec=FlowSpec(sigma=1.0, rho=1.0), bounds=None),
    )
    conn.activate(["x", "y"], 0.0, 0.0)
    p.attach(conn)
    outcome = engine.execute(p, "dst", now=1.0)
    assert outcome.clean
    assert conn.state is ConnectionState.ACTIVE


def test_partial_bundle_drop():
    """Only the connection that does not fit is dropped."""
    cells, engine = build(target_capacity=40.0)
    p = Portable("p")
    p.move_to("src", 0.0)
    conns = []
    for bw in (16.0, 16.0):
        conn = Connection(src="x", dst="y", qos=audio_request(b_min=bw, b_max=bw))
        conn.activate(["x", "y"], bw, 0.0)
        p.attach(conn)
        cells["src"].link.admit(conn.conn_id, bw)
        conns.append(conn)
    cells["dst"].link.admit("bg", 20.0)
    cells["dst"].reservations.set_pool(0.0)
    outcome = engine.execute(p, "dst", now=1.0)
    assert len(outcome.moved) == 1
    assert len(outcome.dropped) == 1
    states = sorted(c.state.value for c in conns)
    assert states == ["active", "dropped"]


def test_observer_callback_invoked():
    seen = []
    cells = {
        "src": Cell("src", capacity=100.0),
        "dst": Cell("dst", capacity=100.0),
    }
    engine = HandoffEngine(
        get_cell=cells.__getitem__,
        on_handoff=lambda outcome, now: seen.append((outcome.to_cell, now)),
    )
    p, conn = portable_with_conn(cells)
    engine.execute(p, "dst", now=7.0)
    assert seen == [("dst", 7.0)]
    assert len(engine.outcomes) == 1


def test_outcome_history_is_bounded():
    # Retention used to be unbounded: at campus scale every crossing
    # leaked a HandoffOutcome.  The window keeps the most recent records;
    # full-history consumers subscribe on_handoff instead.
    cells = {
        "src": Cell("src", capacity=100.0),
        "dst": Cell("dst", capacity=100.0),
    }
    engine = HandoffEngine(get_cell=cells.__getitem__, outcome_history=3)
    p = Portable("p")
    p.move_to("src", 0.0)
    cells["src"].enter("p", 0.0)
    here, there = "src", "dst"
    for i in range(5):
        engine.execute(p, there, now=float(i))
        here, there = there, here
    assert len(engine.outcomes) == 3
    assert [o.to_cell for o in engine.outcomes] == ["dst", "src", "dst"]
