"""Tests for the SCFQ packet MAC over the wireless hop."""

import random

import pytest

from repro.des import Environment
from repro.network import Link
from repro.traffic import cbr_packets
from repro.wireless import CellMac, ChannelState, GilbertElliottChannel


def build(capacity=1000.0, channel=None, **kw):
    env = Environment()
    link = Link("bs", "air", capacity=capacity)
    mac = CellMac(env, link, channel=channel, **kw)
    return env, link, mac


def test_submit_validation():
    env, link, mac = build()
    with pytest.raises(ValueError):
        mac.submit("c", 0.0)
    with pytest.raises(ValueError):
        CellMac(env, link, retransmit_limit=-1)


def test_single_packet_delivery_time():
    env, link, mac = build(capacity=1000.0)
    link.admit("c", 100.0)
    record = mac.submit("c", 500.0)
    env.run(until=10.0)
    assert record.delivered == pytest.approx(0.5)  # 500 bits at 1000 bps
    assert record.delay == pytest.approx(0.5)
    assert mac.stats["c"].delivered == 1


def test_idle_server_wakes_on_late_submission():
    env, link, mac = build(capacity=1000.0)
    link.admit("c", 100.0)

    def feeder():
        yield env.timeout(5.0)
        mac.submit("c", 1000.0)

    env.process(feeder())
    env.run(until=10.0)
    assert mac.stats["c"].delivered == 1
    assert mac.stats["c"].records[0].delivered == pytest.approx(6.0)


def test_scfq_shares_proportional_to_rates():
    """Under saturation, delivered bits track the granted rates 3:1."""
    env, link, mac = build(capacity=1000.0)
    link.admit("big", 600.0)
    link.admit("small", 200.0)
    env.process(mac.feed("big", cbr_packets(2000.0, 100.0, duration=10.0)))
    env.process(mac.feed("small", cbr_packets(2000.0, 100.0, duration=10.0)))
    env.run(until=10.0)
    big = mac.stats["big"].bits_delivered
    small = mac.stats["small"].bits_delivered
    assert big / small == pytest.approx(3.0, rel=0.15)
    # Work conservation: the channel stayed busy.
    assert big + small == pytest.approx(1000.0 * 10.0, rel=0.05)


def test_unknown_connection_served_best_effort():
    env, link, mac = build(capacity=1000.0, best_effort_rate=1.0)
    link.admit("vip", 900.0)
    env.process(mac.feed("vip", cbr_packets(2000.0, 100.0, duration=5.0)))
    env.process(mac.feed("guest", cbr_packets(2000.0, 100.0, duration=5.0)))
    env.run(until=5.0)
    assert mac.stats["vip"].bits_delivered > mac.stats["guest"].bits_delivered * 5


def test_channel_losses_match_loss_probability():
    channel = GilbertElliottChannel(
        random.Random(3), loss_good=0.2, loss_bad=0.2
    )
    env, link, mac = build(capacity=10_000.0, channel=channel)
    link.admit("c", 1000.0)
    for _ in range(2000):
        mac.submit("c", 10.0)
    env.run(until=100.0)
    assert mac.overall_loss_rate() == pytest.approx(0.2, abs=0.03)


def test_fade_halves_throughput():
    rng = random.Random(4)
    channel = GilbertElliottChannel(rng, loss_good=0.0, loss_bad=0.0,
                                    capacity_factor_bad=0.5)
    env, link, mac = build(capacity=1000.0, channel=channel)
    link.admit("c", 1000.0)
    env.process(mac.feed("c", cbr_packets(5000.0, 100.0, duration=20.0)))
    env.run(until=10.0)
    good_bits = mac.total_delivered_bits()
    channel.state = ChannelState.BAD
    env.run(until=20.0)
    bad_bits = mac.total_delivered_bits() - good_bits
    assert bad_bits == pytest.approx(good_bits / 2, rel=0.1)


def test_retransmission_recovers_losses():
    channel = GilbertElliottChannel(
        random.Random(5), loss_good=0.3, loss_bad=0.3
    )
    env, link, mac = build(capacity=10_000.0, channel=channel,
                           retransmit_limit=10)
    link.admit("c", 1000.0)
    for _ in range(500):
        mac.submit("c", 10.0)
    env.run(until=100.0)
    assert mac.stats["c"].lost == 0
    assert mac.stats["c"].delivered == 500


def test_mac_stats_goodput_and_delay():
    env, link, mac = build(capacity=1000.0)
    link.admit("c", 1000.0)
    for _ in range(10):
        mac.submit("c", 100.0)
    env.run(until=2.0)
    stats = mac.stats["c"]
    assert stats.goodput(1.0) == pytest.approx(1000.0)
    assert stats.mean_delay > 0
    with pytest.raises(ValueError):
        stats.goodput(0.0)
