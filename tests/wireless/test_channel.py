"""Tests for the Gilbert-Elliott channel model."""

import random

import pytest

from repro.des import Environment
from repro.wireless import ChannelState, GilbertElliottChannel


def make(**kw):
    defaults = dict(mean_good=10.0, mean_bad=2.0, loss_good=0.01, loss_bad=0.5)
    defaults.update(kw)
    return GilbertElliottChannel(random.Random(3), **defaults)


def test_validation():
    rng = random.Random(1)
    with pytest.raises(ValueError):
        GilbertElliottChannel(rng, mean_good=0.0)
    with pytest.raises(ValueError):
        GilbertElliottChannel(rng, loss_bad=1.5)
    with pytest.raises(ValueError):
        GilbertElliottChannel(rng, capacity_factor_bad=0.0)


def test_starts_good():
    channel = make()
    assert channel.state is ChannelState.GOOD
    assert channel.loss_probability == 0.01
    assert channel.capacity_factor() == 1.0


def test_steady_state_loss_weighted_average():
    channel = make(mean_good=9.0, mean_bad=1.0, loss_good=0.0, loss_bad=0.3)
    assert channel.steady_state_loss() == pytest.approx(0.03)


def test_packet_loss_statistics_per_state():
    channel = make(loss_good=0.0, loss_bad=1.0)
    assert not any(channel.packet_lost() for _ in range(100))
    channel.state = ChannelState.BAD
    assert all(channel.packet_lost() for _ in range(100))


def test_des_process_alternates_states():
    env = Environment()
    channel = make(mean_good=5.0, mean_bad=5.0)
    flips = []
    env.process(channel.run(env, on_change=lambda s, t: flips.append((s, t))))
    env.run(until=200.0)
    assert len(flips) >= 10
    # Strictly alternating states.
    for (s1, _), (s2, _) in zip(flips, flips[1:]):
        assert s1 is not s2
    assert channel.transitions == [(t, s) for s, t in flips]


def test_sojourn_times_match_configuration():
    env = Environment()
    channel = make(mean_good=20.0, mean_bad=2.0)
    env.process(channel.run(env))
    env.run(until=20000.0)
    times = [t for t, _ in channel.transitions]
    durations = [b - a for a, b in zip(times, times[1:])]
    # Transitions alternate GOOD-sojourn, BAD-sojourn, ...
    good = durations[1::2]
    bad = durations[0::2]
    assert sum(good) / len(good) == pytest.approx(20.0, rel=0.25)
    assert sum(bad) / len(bad) == pytest.approx(2.0, rel=0.25)


def test_capacity_factor_in_bad_state():
    channel = make(capacity_factor_bad=0.25)
    channel.state = ChannelState.BAD
    assert channel.capacity_factor() == 0.25
