"""Tests for Portable state and connection bundles."""

import pytest

from repro.core import audio_request, video_request
from repro.traffic import Connection
from repro.wireless import Portable


def test_move_to_tracks_previous_and_counts():
    p = Portable("u")
    p.move_to("A", 0.0)
    assert p.current_cell == "A"
    assert p.previous_cell is None
    assert p.handoff_count == 0  # first placement is not a handoff
    p.move_to("B", 10.0)
    assert p.previous_cell == "A"
    assert p.handoff_count == 1
    p.move_to("B", 20.0)  # no-op
    assert p.handoff_count == 1


def test_residence_time():
    p = Portable("u")
    p.move_to("A", 5.0)
    assert p.residence_time(12.0) == 7.0


def test_attach_sets_ownership():
    p = Portable("u")
    conn = Connection(src="a", dst="b", qos=audio_request())
    p.attach(conn)
    assert conn.portable_id == "u"
    assert conn in p.connections
    p.detach(conn)
    assert conn not in p.connections


def test_active_connections_filter():
    p = Portable("u")
    active = Connection(src="a", dst="b", qos=audio_request())
    active.activate(["a", "b"], 16.0, 0.0)
    blocked = Connection(src="a", dst="b", qos=audio_request())
    blocked.block(0.0)
    p.attach(active)
    p.attach(blocked)
    assert p.active_connections == [active]


def test_demand_floor_and_max_rate():
    p = Portable("u")
    a = Connection(src="a", dst="b", qos=audio_request())
    a.activate(["a", "b"], 16.0, 0.0)
    v = Connection(src="a", dst="b", qos=video_request())
    v.activate(["a", "b"], 60.0, 0.0)
    v.rate = 240.0
    p.attach(a)
    p.attach(v)
    assert p.demand_floor == pytest.approx(76.0)
    assert p.max_allocated_rate == pytest.approx(240.0)


def test_empty_portable_zero_demand():
    p = Portable("u")
    assert p.demand_floor == 0.0
    assert p.max_allocated_rate == 0.0
