"""Tests for the Cell abstraction."""

import pytest

from repro.profiles import CellClass
from repro.wireless import Cell


def test_cell_wires_link_and_ledger():
    cell = Cell("A", capacity=1600.0, cell_class=CellClass.OFFICE)
    assert cell.capacity == 1600.0
    assert cell.link.src == "bs:A"
    assert cell.link.dst == "air:A"
    # The B_dyn pool is live from the start.
    assert cell.link.reserved == pytest.approx(0.05 * 1600.0)


def test_free_capacity_accounts_for_pool_and_floors():
    cell = Cell("A", capacity=100.0)
    cell.link.admit("c1", 30.0)
    assert cell.load == 30.0
    assert cell.free_capacity == pytest.approx(100.0 - 5.0 - 30.0)


def test_neighbors_no_self_loop():
    cell = Cell("A", capacity=10.0)
    cell.add_neighbor("B")
    assert cell.neighbors == {"B"}
    with pytest.raises(ValueError):
        cell.add_neighbor("A")


def test_presence_tracking():
    cell = Cell("A", capacity=10.0)
    cell.enter("p", now=5.0)
    assert cell.occupancy() == 1
    assert cell.present["p"] == 5.0
    assert cell.leave("p") == 5.0
    assert cell.leave("ghost") is None
    assert cell.occupancy() == 0


def test_error_prob_propagates_to_link():
    cell = Cell("A", capacity=10.0, error_prob=0.02)
    assert cell.link.error_prob == 0.02
