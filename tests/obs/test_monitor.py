"""Monitor view over a real run directory, plus fabricated heartbeat states."""

import json
import time

import pytest

from repro.obs.monitor import (
    load_run_status,
    main,
    render_status,
    resolve_run_dir,
)
from repro.runtime import ExperimentRunner
from repro.runtime.cache import config_key
from repro.runtime.distributed import (
    chunk_result_path,
    load_manifest,
    write_progress_doc,
)


def _digest_worker(config):
    return {"key": config_key(config), "seed": config["seed"]}


@pytest.fixture()
def finished_run(tmp_path):
    """A real two-node distributed run, completed, in a tmp run root."""
    configs = [{"seed": i, "monitor-test": True} for i in range(6)]
    runner = ExperimentRunner(
        backend="distributed", nodes=2, run_root=tmp_path / "runs"
    )
    runner.run_many(_digest_worker, configs, label="monitored")
    (run_dir,) = [p for p in (tmp_path / "runs").iterdir() if p.is_dir()]
    return run_dir


# -- resolve ----------------------------------------------------------------


def test_resolve_accepts_run_dir_and_run_root(finished_run):
    assert resolve_run_dir(finished_run) == finished_run
    assert resolve_run_dir(finished_run.parent) == finished_run


def test_resolve_rejects_empty_dir(tmp_path):
    with pytest.raises(FileNotFoundError):
        resolve_run_dir(tmp_path)


# -- status from a finished run ---------------------------------------------


def test_finished_run_reports_done(finished_run):
    status = load_run_status(finished_run)
    assert status["state"] == "done"
    assert status["label"] == "monitored"
    assert status["chunks"]["done"] == status["chunks"]["total"] == 6
    assert status["replications"] == {"done": 6, "total": 6}
    assert status["faults"]["crashes"] == 0
    assert status["eta_seconds"] is None
    assert {n["state"] for n in status["nodes"]} == {"done"}
    assert status["events_per_second"] >= 0.0


def test_render_status_mentions_the_essentials(finished_run):
    text = render_status(load_run_status(finished_run))
    assert "done" in text
    assert "6/6" in text
    assert "node 0" in text


# -- fabricated heartbeat states --------------------------------------------


def test_stalled_coordinator_detected(finished_run):
    doc = json.loads((finished_run / "progress" / "coordinator.json").read_text())
    doc["state"] = "running"
    doc["updated_at"] = time.time() - 3600.0
    write_progress_doc(finished_run, "coordinator", doc)
    assert load_run_status(finished_run, stale_after=5.0)["state"] == "stalled"
    doc["updated_at"] = time.time()
    write_progress_doc(finished_run, "coordinator", doc)
    assert load_run_status(finished_run, stale_after=5.0)["state"] == "running"


def test_silent_running_node_reported_stale(finished_run):
    doc = json.loads((finished_run / "progress" / "node-0.json").read_text())
    doc["state"] = "running"
    doc["updated_at"] = time.time() - 3600.0
    write_progress_doc(finished_run, "node-0", doc)
    status = load_run_status(finished_run, stale_after=5.0)
    by_node = {n["node"]: n for n in status["nodes"]}
    assert by_node[0]["state"] == "stale"


def test_eta_estimated_for_running_sweep(finished_run):
    plan = load_manifest(finished_run)
    chunk_result_path(finished_run, plan.chunks[0].chunk_id).unlink()
    coord = json.loads(
        (finished_run / "progress" / "coordinator.json").read_text()
    )
    coord["state"] = "running"
    coord["updated_at"] = time.time()
    write_progress_doc(finished_run, "coordinator", coord)
    node = json.loads((finished_run / "progress" / "node-0.json").read_text())
    node.update(
        state="running", updated_at=time.time(), wall_time_total=2.0,
        replications=4, current_done=0, jobs=1,
    )
    write_progress_doc(finished_run, "node-0", node)
    other = json.loads((finished_run / "progress" / "node-1.json").read_text())
    other.update(state="done", wall_time_total=0.0, replications=0,
                 des_events=0)
    write_progress_doc(finished_run, "node-1", other)
    status = load_run_status(finished_run, stale_after=60.0)
    assert status["state"] == "running"
    assert status["replications"]["done"] == 5
    assert status["eta_seconds"] == pytest.approx(0.5)  # 1 rep x 2.0/4


def test_fault_counts_are_summed_across_nodes(finished_run):
    for node_id in (0, 1):
        name = f"node-{node_id}"
        doc = json.loads(
            (finished_run / "progress" / f"{name}.json").read_text()
        )
        doc.update(retries=1, timeouts=2, crashes=0, failures=1)
        write_progress_doc(finished_run, name, doc)
    faults = load_run_status(finished_run)["faults"]
    assert faults == {"retries": 2, "timeouts": 4, "crashes": 0, "failures": 2}


def test_des_core_summed_and_surfaced(finished_run):
    """Nodes heartbeat per-core event counts; the monitor sums them and
    names the core when the fleet agrees, or flags the mix when it doesn't."""
    for node_id in (0, 1):
        name = f"node-{node_id}"
        doc = json.loads(
            (finished_run / "progress" / f"{name}.json").read_text()
        )
        doc.update(des_events=40, des_cores={"native": 40}, wall_time_total=1.0)
        write_progress_doc(finished_run, name, doc)
    status = load_run_status(finished_run)
    assert status["des_cores"] == {"native": 80}
    assert status["des_core"] == "native"
    assert "[native core]" in render_status(status)

    doc = json.loads((finished_run / "progress" / "node-1.json").read_text())
    doc.update(des_cores={"pure": 40})
    write_progress_doc(finished_run, "node-1", doc)
    status = load_run_status(finished_run)
    assert status["des_core"] is None
    assert "MIXED CORES: native=40, pure=40" in render_status(status)


def test_missing_manifest_raises(tmp_path):
    (tmp_path / "manifest.json").write_text("not json")
    with pytest.raises(FileNotFoundError):
        load_run_status(tmp_path)


# -- CLI --------------------------------------------------------------------


def test_cli_once_json_parses(finished_run, capsys):
    assert main([str(finished_run), "--once", "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["state"] == "done"
    assert status["chunks"]["done"] == 6


def test_cli_human_output(finished_run, capsys):
    assert main([str(finished_run)]) == 0
    assert "replications:  6/6" in capsys.readouterr().out


def test_cli_missing_dir_exits_2(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "manifest" in capsys.readouterr().err


def test_cli_follow_exits_when_done(finished_run, capsys):
    assert main([str(finished_run), "--follow", "--interval", "0.01"]) == 0
    assert "done" in capsys.readouterr().out


def test_cli_rejects_follow_plus_once(finished_run):
    with pytest.raises(SystemExit):
        main([str(finished_run), "--follow", "--once"])


def test_module_dispatch(finished_run, capsys):
    from repro.__main__ import main as repro_main

    assert repro_main(["monitor", str(finished_run), "--once", "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["state"] == "done"
