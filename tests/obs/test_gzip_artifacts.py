"""Gzip support across observability artifacts: sinks, readers, open_text."""

import gzip
import json

import pytest

from repro.obs import JsonlSink, Tracer, open_text, read_jsonl, use_tracer


def _emit_some(path, compress=None):
    kwargs = {} if compress is None else {"compress": compress}
    sink = JsonlSink(path, **kwargs)
    with use_tracer(Tracer(sink)) as tracer:
        tracer.emit("des.schedule", t=0.0, event="arrival")
        tracer.emit("des.fire", t=1.5, event="arrival")
    sink.close()
    return sink


def test_jsonl_sink_infers_gzip_from_suffix(tmp_path):
    path = tmp_path / "trace.jsonl.gz"
    sink = _emit_some(path)
    assert sink.written == 2
    assert path.read_bytes()[:2] == b"\x1f\x8b"
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh]
    assert [r["kind"] for r in records] == ["des.schedule", "des.fire"]


def test_jsonl_sink_explicit_compress_without_suffix(tmp_path):
    path = tmp_path / "trace.jsonl"
    _emit_some(path, compress=True)
    assert path.read_bytes()[:2] == b"\x1f\x8b"


def test_jsonl_sink_plain_by_default(tmp_path):
    path = tmp_path / "trace.jsonl"
    _emit_some(path)
    first = path.read_bytes()[:1]
    assert first == b"{"


@pytest.mark.parametrize("name", ["trace.jsonl", "trace.jsonl.gz"])
def test_read_jsonl_round_trip(tmp_path, name):
    path = tmp_path / name
    _emit_some(path)
    records = read_jsonl(path)
    assert [r["kind"] for r in records] == ["des.schedule", "des.fire"]
    assert records[0]["t"] == 0.0


def test_gzipped_and_plain_traces_have_identical_records(tmp_path):
    plain, packed = tmp_path / "t.jsonl", tmp_path / "t.jsonl.gz"
    _emit_some(plain)
    _emit_some(packed)
    assert read_jsonl(plain) == read_jsonl(packed)


def test_open_text_writes_and_reads_both_forms(tmp_path):
    for name in ("x.txt", "x.txt.gz"):
        path = tmp_path / name
        with open_text(path, "w") as fh:
            fh.write("hello\n")
        with open_text(path, "r") as fh:
            assert fh.read() == "hello\n"
    assert (tmp_path / "x.txt.gz").read_bytes()[:2] == b"\x1f\x8b"
