"""Metrics registry: instrument semantics, determinism, no-op default."""

import json

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.metrics import DEFAULT_BUCKETS


# -- instruments ------------------------------------------------------------


def test_counter_get_or_create_and_inc():
    reg = MetricsRegistry()
    c = reg.counter("admissions_total", cell="q")
    c.inc()
    c.inc(2.5)
    assert reg.counter("admissions_total", cell="q") is c
    assert c.value == 3.5


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("x").inc(-1.0)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("occupancy")
    g.set(4.0)
    g.inc()
    g.dec(2.0)
    assert g.value == 3.0


def test_histogram_buckets_and_mean():
    reg = MetricsRegistry()
    h = reg.histogram("latency", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 3
    assert snap["sum"] == pytest.approx(55.5)
    assert snap["buckets"] == [
        {"le": 1.0, "count": 1},
        {"le": 10.0, "count": 1},
        {"le": "inf", "count": 1},
    ]
    assert h.mean == pytest.approx(55.5 / 3)


def test_histogram_default_buckets_sorted():
    reg = MetricsRegistry()
    h = reg.histogram("t")
    assert h.bounds == tuple(sorted(DEFAULT_BUCKETS))


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x", a=1)
    with pytest.raises(ValueError):
        reg.gauge("x", a=1)
    with pytest.raises(ValueError):
        reg.histogram("x", a=1)
    # Different labels are a different instrument: no conflict.
    assert reg.gauge("x", a=2) is not None


def test_labels_distinguish_instruments():
    reg = MetricsRegistry()
    a = reg.counter("hits", cell="q")
    b = reg.counter("hits", cell="s")
    assert a is not b
    assert len(reg) == 2


# -- determinism ------------------------------------------------------------


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    a = reg.counter("x", cell="q", kind="audio")
    b = reg.counter("x", kind="audio", cell="q")
    assert a is b


def test_export_sorted_regardless_of_creation_order():
    reg1, reg2 = MetricsRegistry(), MetricsRegistry()
    reg1.counter("b").inc()
    reg1.counter("a", z="1", a="2").inc(2)
    reg2.counter("a", a="2", z="1").inc(2)
    reg2.counter("b").inc()
    assert reg1.to_json() == reg2.to_json()
    names = [m["name"] for m in reg1.to_dict()["metrics"]]
    assert names == sorted(names)


def test_to_json_round_trips():
    reg = MetricsRegistry()
    reg.counter("c", x="1").inc(3)
    reg.gauge("g").set(7)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    data = json.loads(reg.to_json(indent=2))
    kinds = {m["name"]: m["type"] for m in data["metrics"]}
    assert kinds == {"c": "counter", "g": "gauge", "h": "histogram"}


# -- the no-op default ------------------------------------------------------


def test_default_registry_is_null_and_absorbs_everything():
    assert get_registry() is NULL_REGISTRY
    reg = get_registry()
    reg.counter("anything", a="b").inc(5)
    reg.gauge("g").set(2)
    reg.histogram("h").observe(1.0)
    assert reg.to_dict() == {"metrics": []}
    # Shared singletons: no per-call allocation.
    assert reg.counter("x") is reg.counter("y", l="1")


def test_set_registry_installs_and_restores():
    real = MetricsRegistry()
    previous = set_registry(real)
    try:
        assert get_registry() is real
        get_registry().counter("seen").inc()
        assert real.counter("seen").value == 1
    finally:
        set_registry(previous)
    assert isinstance(get_registry(), NullRegistry)


def test_use_registry_scopes():
    real = MetricsRegistry()
    with use_registry(real) as reg:
        assert get_registry() is reg is real
    assert get_registry() is NULL_REGISTRY
