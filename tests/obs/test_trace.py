"""Tracer, sinks, JSONL validation, and the summarize aggregation."""

import io
import json

import pytest

from repro.des import Environment
from repro.obs import (
    JsonlSink,
    RingBufferSink,
    Tracer,
    get_tracer,
    read_jsonl,
    set_tracer,
    summarize_records,
    use_tracer,
)


# -- sinks ------------------------------------------------------------------


def test_ring_buffer_keeps_most_recent_and_counts_drops():
    sink = RingBufferSink(capacity=3)
    for i in range(5):
        sink.emit({"t": float(i), "kind": "k"})
    records = sink.records()
    assert [r["t"] for r in records] == [2.0, 3.0, 4.0]
    assert sink.dropped == 2


def test_ring_buffer_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_jsonl_sink_writes_one_object_per_line(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path)
    sink.emit({"t": 1.0, "kind": "a", "x": 1})
    sink.emit({"t": None, "kind": "b"})
    sink.close()
    assert sink.written == 2
    records = read_jsonl(path)
    assert records == [{"t": 1.0, "kind": "a", "x": 1}, {"t": None, "kind": "b"}]


def test_jsonl_sink_degrades_unserializable_fields_to_repr():
    buf = io.StringIO()
    sink = JsonlSink(buf)
    sink.emit({"t": 0.0, "kind": "k", "obj": object()})
    record = json.loads(buf.getvalue())
    assert record["obj"].startswith("<object object")


# -- tracer -----------------------------------------------------------------


def test_tracer_stamps_clock_and_sorts_fields():
    sink = RingBufferSink()
    tracer = Tracer(sink, clock=lambda: 42.0)
    tracer.emit("k", zebra=1, alpha=2)
    (record,) = sink.records()
    assert record["t"] == 42.0
    assert list(record) == ["t", "kind", "alpha", "zebra"]


def test_tracer_explicit_t_beats_clock():
    sink = RingBufferSink()
    tracer = Tracer(sink, clock=lambda: 42.0)
    tracer.emit("k", t=7.0)
    assert sink.records()[0]["t"] == 7.0


def test_tracer_kind_filter_and_counts():
    sink = RingBufferSink()
    tracer = Tracer(sink, kinds={"keep"})
    tracer.emit("keep")
    tracer.emit("drop")
    tracer.emit("keep")
    assert len(sink.records()) == 2
    assert tracer.counts == {"keep": 2}


def test_global_tracer_install_and_scoping():
    assert get_tracer() is None
    tracer = Tracer(RingBufferSink())
    with use_tracer(tracer) as t:
        assert get_tracer() is t is tracer
    assert get_tracer() is None
    previous = set_tracer(tracer)
    assert previous is None
    assert set_tracer(None) is tracer
    assert get_tracer() is None


# -- engine integration -----------------------------------------------------


def _two_step_sim(env):
    yield env.timeout(1.0)
    yield env.timeout(2.0)


def test_environment_picks_up_global_tracer_and_binds_clock():
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        env = Environment()
        assert env.tracer is not None
        env.process(_two_step_sim(env))
        env.run()
    kinds = [r["kind"] for r in sink.records()]
    assert "des.schedule" in kinds
    assert "des.fire" in kinds
    assert "des.resume" in kinds
    resumes = [r for r in sink.records() if r["kind"] == "des.resume"]
    assert {r["process"] for r in resumes} == {"_two_step_sim"}
    fires = [r for r in sink.records() if r["kind"] == "des.fire"]
    assert [r["t"] for r in fires] == sorted(r["t"] for r in fires)


def test_untraced_environment_has_no_tracer():
    env = Environment()
    assert env.tracer is None


def test_set_tracer_attach_detach_mid_flight():
    env = Environment()
    sink = RingBufferSink()
    env.set_tracer(Tracer(sink))
    env.process(_two_step_sim(env))
    env.run(until=1.5)
    seen = len(sink.records())
    assert seen > 0
    env.set_tracer(None)
    env.run(until=4.0)
    assert len(sink.records()) == seen  # detached: nothing new recorded
    assert env.tracer is None


def test_step_emits_fire_records_when_traced():
    env = Environment()
    sink = RingBufferSink()
    env.set_tracer(Tracer(sink))
    env.timeout(1.0)
    env.step()
    kinds = [r["kind"] for r in sink.records()]
    assert kinds[-1] == "des.fire"


# -- JSONL validation -------------------------------------------------------


def test_read_jsonl_rejects_bad_lines(tmp_path):
    cases = [
        ("not json", "not valid JSON"),
        ('["a", "b"]', "not an object"),
        ('{"t": 1.0}', "missing string 'kind'"),
        ('{"kind": "k"}', "'t' must be a number or null"),
        ('{"kind": "k", "t": "soon"}', "'t' must be a number or null"),
    ]
    for i, (line, fragment) in enumerate(cases):
        path = tmp_path / f"bad{i}.jsonl"
        path.write_text(line + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match=fragment):
            read_jsonl(str(path))


def test_read_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind": "k", "t": 1}\n\n{"kind": "k", "t": 2}\n')
    assert len(read_jsonl(str(path))) == 2


# -- summarize --------------------------------------------------------------


def test_summarize_counts_kinds_and_time_spans():
    records = [
        {"t": 1.0, "kind": "des.fire"},
        {"t": 3.0, "kind": "des.fire"},
        {"t": None, "kind": "admission.decision", "accepted": True},
        {
            "t": None,
            "kind": "admission.decision",
            "accepted": False,
            "reason": "bandwidth",
        },
        {"t": 2.0, "kind": "handoff.executed", "moved": 2, "dropped": 1},
        {"t": 5.0, "kind": "adaptation.round.commit", "trips": 4},
    ]
    summary = summarize_records(records)
    assert summary["records"] == 6
    assert summary["kinds"]["des.fire"] == {
        "count": 2,
        "t_first": 1.0,
        "t_last": 3.0,
    }
    assert summary["admission"] == {
        "decisions": 2,
        "accepted": 1,
        "rejected_by_reason": {"bandwidth": 1},
    }
    assert summary["handoff"] == {
        "executed": 1,
        "connections_moved": 2,
        "connections_dropped": 1,
    }
    assert summary["adaptation"]["rounds_committed"] == 1
    assert summary["adaptation"]["mean_trips"] == 4.0


def test_summarize_empty_trace():
    assert summarize_records([]) == {"records": 0, "kinds": {}}
