"""Deterministic cProfile aggregation: merge, persistence, hotspots."""

import cProfile
import pstats

import pytest

from repro.obs import (
    hotspots,
    merge_profile_stats,
    profile_to_pstats,
    read_pstats,
    render_hotspots,
    write_pstats,
)
from repro.runtime import ExperimentRunner


def _key(name):
    return ("file.py", 1, name)


def _entry(cc, nc, tt, ct, callers=None):
    return (cc, nc, tt, ct, callers or {})


def test_merge_sums_counts_times_and_callers():
    acc = {
        _key("f"): _entry(1, 2, 0.5, 1.0, {_key("g"): (1, 1, 0.1, 0.2)}),
    }
    merge_profile_stats(
        acc,
        {
            _key("f"): _entry(3, 4, 0.25, 0.5, {
                _key("g"): (2, 2, 0.3, 0.4),
                _key("h"): (1, 1, 0.0, 0.1),
            }),
            _key("new"): _entry(1, 1, 0.1, 0.1),
        },
    )
    cc, nc, tt, ct, callers = acc[_key("f")]
    assert (cc, nc) == (4, 6)
    assert (tt, ct) == (0.75, 1.5)
    assert callers[_key("g")] == (3, 3, pytest.approx(0.4), pytest.approx(0.6))
    assert callers[_key("h")] == (1, 1, 0.0, 0.1)
    assert acc[_key("new")] == _entry(1, 1, 0.1, 0.1)


def test_merge_into_empty_copies():
    acc = {}
    merge_profile_stats(acc, {_key("f"): _entry(1, 1, 0.1, 0.2)})
    assert acc == {_key("f"): _entry(1, 1, 0.1, 0.2)}


def _real_profile():
    profiler = cProfile.Profile()
    profiler.runcall(sorted, range(100))
    profiler.create_stats()
    return profiler.stats


@pytest.mark.parametrize("name", ["prof.pstats", "prof.pstats.gz"])
def test_pstats_round_trip(tmp_path, name):
    raw = _real_profile()
    path = tmp_path / name
    write_pstats(path, raw)
    assert read_pstats(path) == raw
    if name.endswith(".gz"):
        assert path.read_bytes()[:2] == b"\x1f\x8b"
    else:
        # A plain dump is a standard pstats file other tools can open.
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0


def test_read_pstats_rejects_garbage(tmp_path):
    path = tmp_path / "prof.pstats"
    path.write_bytes(b"not marshal data")
    with pytest.raises(ValueError):
        read_pstats(path)


def test_profile_to_pstats_is_printable():
    stats = profile_to_pstats(_real_profile())
    assert isinstance(stats, pstats.Stats)
    assert stats.total_calls > 0


def test_hotspots_sorting_and_tie_break():
    raw = {
        ("b.py", 1, "beta"): _entry(2, 2, 0.5, 1.0),
        ("a.py", 1, "alpha"): _entry(2, 2, 0.5, 1.0),  # ties: label order
        ("c.py", 1, "gamma"): _entry(9, 9, 0.1, 2.0),
    }
    by_cum = hotspots(raw, sort="cumulative")
    assert [r["function"] for r in by_cum] == [
        "c.py:1(gamma)", "a.py:1(alpha)", "b.py:1(beta)",
    ]
    by_tt = hotspots(raw, sort="tottime")
    assert [r["function"] for r in by_tt][:2] == [
        "a.py:1(alpha)", "b.py:1(beta)",
    ]
    by_calls = hotspots(raw, sort="calls")
    assert by_calls[0]["function"] == "c.py:1(gamma)"
    assert hotspots(raw, top=1, sort="cumulative")[0]["cumulative"] == 2.0


def test_render_hotspots_shows_primitive_calls():
    raw = {("a.py", 1, "alpha"): _entry(2, 5, 0.5, 1.0)}
    text = render_hotspots(hotspots(raw), "cumulative")
    assert "5/2" in text
    assert "a.py:1(alpha)" in text


# -- runner integration -----------------------------------------------------


def _square(config):
    return config["x"] * config["x"]


def _collect_keys(runner):
    runner.run_many(_square, [{"x": i} for i in range(4)])
    return {key[2] for key in runner.profile_stats}


def test_runner_profile_collects_worker_functions():
    runner = ExperimentRunner(jobs=1, profile=True)
    names = _collect_keys(runner)
    assert "_square" in names


def test_runner_profile_off_by_default():
    runner = ExperimentRunner(jobs=1)
    runner.run_many(_square, [{"x": i} for i in range(2)])
    assert runner.profile_stats == {}


def test_pool_profile_keys_match_serial():
    serial = ExperimentRunner(jobs=1, profile=True)
    pool = ExperimentRunner(jobs=2, profile=True)
    assert _collect_keys(serial) == _collect_keys(pool)
