"""The observability contract: observing a run never changes its outputs.

A traced (and metered) simulation must be bit-identical to an untraced
one — trace points read state; they draw no random numbers, schedule no
events, and mutate no model objects.  These tests run the same scenarios
with observability off and on and require byte-equal results.
"""

import dataclasses

from repro.obs import (
    MetricsRegistry,
    RingBufferSink,
    Tracer,
    use_registry,
    use_tracer,
)
from repro.sim import TwoCellSimulator, figure6_config


def _run_twocell(seed=5, horizon=120.0, policy="probabilistic"):
    config = figure6_config(policy=policy, horizon=horizon, seed=seed)
    return TwoCellSimulator(config).run()


def _stats_tuple(result):
    return dataclasses.astuple(result.stats)


def test_traced_twocell_run_is_bit_identical():
    baseline = _stats_tuple(_run_twocell())
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        traced = _stats_tuple(_run_twocell())
    assert traced == baseline
    assert len(sink.records()) > 0  # the trace actually recorded something


def test_metered_twocell_run_is_bit_identical():
    baseline = _stats_tuple(_run_twocell())
    registry = MetricsRegistry()
    with use_registry(registry):
        metered = _stats_tuple(_run_twocell())
    assert metered == baseline


def test_traced_and_metered_together_across_policies():
    for policy in ("plain", "probabilistic"):
        baseline = _stats_tuple(_run_twocell(policy=policy, horizon=60.0))
        with use_tracer(Tracer(RingBufferSink())):
            with use_registry(MetricsRegistry()):
                observed = _stats_tuple(
                    _run_twocell(policy=policy, horizon=60.0)
                )
        assert observed == baseline, policy


def test_traced_campus_slice_is_bit_identical():
    # End-to-end over the full resource-management pipeline (admission,
    # adaptation, reservations, handoffs) — the richest trace surface.
    from repro.sim import run_campus_day

    def snapshot():
        result = run_campus_day(day_length=900.0, walkers=2, patrons=5)
        stats = result.stats
        return (
            stats.new_requests,
            stats.admitted,
            stats.handoff_attempts,
            stats.handoff_drops,
            result.static_upgrades,
        )

    baseline = snapshot()
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        traced = snapshot()
    assert traced == baseline
    kinds = {r["kind"] for r in sink.records()}
    assert "des.fire" in kinds


def test_trace_records_do_not_leak_mutable_sim_state():
    # Records must hold scalars/strings, not live simulation objects whose
    # later mutation would retroactively change the trace.
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        _run_twocell(horizon=60.0)
    for record in sink.records():
        for key, value in record.items():
            assert isinstance(
                value, (int, float, str, bool, list, tuple, type(None))
            ), (record["kind"], key, type(value))
