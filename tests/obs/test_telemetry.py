"""RunTelemetry accounting and its ExperimentRunner integration."""

import json

import pytest

from repro.obs import RunTelemetry
from repro.runtime import ExperimentRunner, ResultCache
from repro.runtime.runner import FailedResult


# -- the ledger itself ------------------------------------------------------


def test_record_and_derived_stats():
    t = RunTelemetry()
    t.record_replication(1.0)
    t.record_replication(3.0)
    assert t.replications == 2
    assert t.wall_time_total == 4.0
    assert t.wall_time_mean == 2.0
    assert t.wall_time_max == 3.0


def test_cache_hit_rate_and_speedup():
    t = RunTelemetry()
    assert t.cache_hit_rate == 0.0
    assert t.speedup is None
    t.cache_hits, t.cache_misses = 3, 1
    assert t.cache_hit_rate == 0.75
    t.record_replication(8.0)
    t.elapsed = 2.0
    assert t.speedup == pytest.approx(4.0)


def test_merge_folds_all_fields():
    a, b = RunTelemetry(), RunTelemetry()
    a.record_replication(1.0)
    a.batches, a.retries = 1, 2
    b.record_replication(2.0)
    b.batches, b.timeouts, b.crashes, b.failures = 1, 1, 1, 1
    b.cache_hits = 5
    merged = a.merge(b)
    assert merged is a
    assert a.batches == 2
    assert a.replications == 2
    assert a.retries == 2 and a.timeouts == 1 and a.crashes == 1
    assert a.failures == 1 and a.cache_hits == 5
    assert a.wall_times == [1.0, 2.0]


def test_to_dict_and_json_shape():
    t = RunTelemetry()
    t.record_replication(0.5)
    t.batches = 1
    t.elapsed = 1.0
    data = json.loads(t.to_json())
    assert data["replications"] == 1
    assert data["cache"] == {"hits": 0, "misses": 0, "hit_rate": 0.0}
    assert data["wall_time"]["replication_max"] == 0.5


def test_summary_text_mentions_key_numbers():
    t = RunTelemetry()
    t.record_replication(0.25)
    t.batches = 1
    t.elapsed = 0.5
    t.retries = 2
    t.cache_hits = 1
    text = t.summary()
    assert "replications:  1" in text
    assert "2 retries" in text
    assert "1 hits" in text


def test_des_events_accumulate_and_rate():
    t = RunTelemetry()
    t.record_replication(2.0, events=300)
    t.record_replication(2.0, events=100)
    assert t.des_events == 400
    assert t.events_per_second == pytest.approx(100.0)
    data = t.to_dict()
    assert data["des"] == {
        "events": 400,
        "events_per_second": 100.0,
        "core": None,
        "cores": {},
    }
    assert "des events:" in t.summary()
    assert "400 processed" in t.summary()


def test_des_events_default_zero_and_merge():
    a, b = RunTelemetry(), RunTelemetry()
    a.record_replication(1.0)  # events defaults to 0
    assert a.des_events == 0
    assert a.events_per_second == 0.0
    assert "des events:" not in a.summary()  # suppressed when nothing counted
    b.record_replication(1.0, events=50)
    a.merge(b)
    assert a.des_events == 50


def _run_twocell(seed):
    from repro.sim import TwoCellSimulator, figure6_config

    return TwoCellSimulator(
        figure6_config(policy="plain", horizon=30.0, seed=seed)
    ).run().stats.new_requests


def test_runner_counts_des_events_serial_and_pool():
    """The events/sec metric is measured *in-worker* (DES kernel events per
    replication, shipped back with the wall time), so the totals must agree
    between serial and process-pool execution of the same workload."""
    serial = ExperimentRunner(jobs=1)
    serial.run_many(_run_twocell, [1, 2])
    assert serial.telemetry.des_events > 0
    assert serial.telemetry.events_per_second > 0

    pool = ExperimentRunner(jobs=2, backend="process")
    pool.run_many(_run_twocell, [1, 2])
    assert pool.telemetry.des_events == serial.telemetry.des_events


# -- runner integration -----------------------------------------------------


def _double(x):
    return x * 2


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x


def test_serial_runner_counts_replications_and_elapsed():
    runner = ExperimentRunner(jobs=1)
    assert runner.run_many(_double, [1, 2, 3]) == [2, 4, 6]
    t = runner.telemetry
    assert t.batches == 1
    assert t.replications == 3
    assert len(t.wall_times) == 3
    assert t.elapsed > 0
    assert t.failures == 0


def test_runner_counts_cache_hits_and_misses(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    first = ExperimentRunner(jobs=1, cache=cache)
    first.run_many(_double, [1, 2])
    assert first.telemetry.cache_misses == 2
    assert first.telemetry.cache_hits == 0
    second = ExperimentRunner(jobs=1, cache=cache)
    second.run_many(_double, [1, 2, 3])
    assert second.telemetry.cache_hits == 2
    assert second.telemetry.cache_misses == 1
    assert second.telemetry.replications == 1  # only the miss simulated
    assert second.telemetry.cache_hit_rate == pytest.approx(2 / 3)


def test_serial_ft_counts_retries_and_failures():
    runner = ExperimentRunner(
        jobs=1, max_retries=1, partial=True, sleep=lambda s: None
    )
    results = runner.run_many(_fail_on_odd, [1, 2])
    assert isinstance(results[0], FailedResult)
    assert results[1] == 2
    t = runner.telemetry
    assert t.retries == 1  # one re-attempt for the odd config
    assert t.failures == 1
    assert t.replications == 1  # only the success is a replication


def test_pool_runner_ships_wall_times_back(tmp_path):
    runner = ExperimentRunner(jobs=2, backend="process")
    assert runner.run_many(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
    t = runner.telemetry
    assert t.replications == 4
    assert len(t.wall_times) == 4
    assert all(w >= 0 for w in t.wall_times)


def test_supervised_runner_counts_crashes():
    runner = ExperimentRunner(jobs=2, backend="process", partial=True)
    results = runner.run_many(_crash_if_negative, [1, -1])
    assert results[0] == 1
    assert isinstance(results[1], FailedResult)
    t = runner.telemetry
    assert t.crashes == 1
    assert t.failures == 1
    assert t.replications == 1


def _crash_if_negative(x):
    import os

    if x < 0:
        os._exit(13)
    return x
