"""Observability must be jobs-invariant: merge workers, change nothing.

Workers run with a private registry and ring-buffer tracer; the
coordinator folds their snapshots back in deterministic replication
order.  The contract tested here is strict equality: ``--metrics-json``,
``--trace``, and the trace summary must be *byte-identical* at any
``--jobs N`` — and invariant under ``PYTHONHASHSEED``, because pool
workers are separate interpreters with their own hash seeds.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.obs import MetricsRegistry, RingBufferSink, Tracer, use_registry, use_tracer
from repro.runtime import ExperimentRunner
from repro.sim import figure6_config, simulate_twocell_stats

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")
HASH_SEEDS = ("0", "1", "31337")


def _read(path) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


# -- CLI: jobs-invariance ----------------------------------------------------


def test_metrics_json_identical_across_jobs(tmp_path, capsys):
    serial = tmp_path / "serial.json"
    parallel = tmp_path / "parallel.json"
    assert main(["table2", "--jobs", "1", "--metrics-json", str(serial)]) == 0
    assert main(["table2", "--jobs", "4", "--metrics-json", str(parallel)]) == 0
    capsys.readouterr()
    assert _read(serial) == _read(parallel)


def test_trace_jsonl_identical_across_jobs(tmp_path, capsys):
    serial = tmp_path / "serial.jsonl"
    parallel = tmp_path / "parallel.jsonl"
    assert main(["table2", "--jobs", "1", "--trace", str(serial)]) == 0
    assert main(["table2", "--jobs", "4", "--trace", str(parallel)]) == 0
    capsys.readouterr()
    assert _read(serial) == _read(parallel)
    # Parallel-collected records are stamped with their replication index.
    lines = _read(parallel).decode("utf-8").splitlines()
    assert lines and all("replication" in json.loads(l) for l in lines)


def test_trace_summarize_identical_across_jobs(tmp_path, capsys):
    summaries = []
    for jobs in ("1", "4"):
        path = tmp_path / f"trace-{jobs}.jsonl"
        assert main(["table2", "--jobs", jobs, "--trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        summaries.append(capsys.readouterr().out)
    assert summaries[0] == summaries[1]


def test_stats_reports_worker_trace_merge(tmp_path, capsys):
    assert main([
        "table2", "--jobs", "2", "--trace", str(tmp_path / "t.jsonl"),
        "--stats",
    ]) == 0
    out = capsys.readouterr().out
    assert "worker traces:" in out


# -- hash-seed invariance (subprocess: PYTHONHASHSEED is read at startup) ----


def _metrics_stdout(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "table2", "--jobs", "2",
         "--metrics-json", "-"],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    # stdout carries the table text first, then the indented JSON document.
    start = proc.stdout.index("\n{") + 1
    return proc.stdout[start:]


def test_merged_metrics_json_is_hashseed_invariant():
    outputs = {_metrics_stdout(seed) for seed in HASH_SEEDS}
    assert len(outputs) == 1, (
        "merged --metrics-json depends on PYTHONHASHSEED:\n"
        + "\n---\n".join(sorted(outputs))
    )
    payload = json.loads(next(iter(outputs)))
    assert any(
        m["name"] == "admission_decisions_total" for m in payload["metrics"]
    )


# -- runner-level merge ------------------------------------------------------


def _sweep_configs():
    return [
        figure6_config(policy="probabilistic", seed=seed, horizon=60.0)
        for seed in (1, 2, 3, 4)
    ]


def _observed_sweep(jobs):
    registry = MetricsRegistry()
    sink = RingBufferSink(capacity=1 << 20)
    with use_registry(registry), use_tracer(Tracer(sink)):
        results = ExperimentRunner(jobs=jobs).run_many(
            simulate_twocell_stats, _sweep_configs()
        )
    return results, registry.to_json(indent=2), sink.records()


def test_runner_merge_matches_serial_observation():
    serial_results, serial_metrics, serial_records = _observed_sweep(1)
    pool_results, pool_metrics, pool_records = _observed_sweep(2)
    assert pool_results == serial_results
    assert pool_metrics == serial_metrics
    assert pool_records == serial_records
    assert len(pool_records) > 0
    # Replication stamps are monotonic in submission order.
    stamps = [r["replication"] for r in pool_records]
    assert stamps == sorted(stamps)
    assert set(stamps) == {0, 1, 2, 3}


def test_worker_observability_opt_out():
    registry = MetricsRegistry()
    with use_registry(registry):
        ExperimentRunner(jobs=2, worker_observability=False).run_many(
            simulate_twocell_stats, _sweep_configs()
        )
    assert registry.to_dict()["metrics"] == []


def test_no_observers_means_no_snapshot_overhead():
    runner = ExperimentRunner(jobs=2)
    runner.run_many(simulate_twocell_stats, _sweep_configs())
    assert runner.telemetry.trace_records == 0
