"""Unit tests for the span model: ids, ledger lifecycle, canonical form."""

import json

import pytest

from repro.obs import (
    Span,
    SpanCollector,
    SpanLedger,
    canonical_structure,
    format_span_tree,
    get_span_collector,
    read_spans_jsonl,
    set_span_collector,
    use_span_collector,
    write_spans_jsonl,
)
from repro.obs.spans import (
    attempt_span_id,
    chunk_span_id,
    node_span_id,
    rebase_span_record,
    replication_span_id,
    span_from_record,
    span_to_record,
    sweep_span_id,
)


# -- ids --------------------------------------------------------------------


def test_span_id_formats():
    assert sweep_span_id(0) == "sweep-000"
    assert replication_span_id(7) == "rep-00007"
    assert attempt_span_id(7, 2) == "rep-00007.a2"
    assert chunk_span_id(3) == "chunk-00003"
    assert node_span_id(1, 2) == "node-1.r2"


# -- records ----------------------------------------------------------------


def test_record_round_trip_and_key_order():
    span = Span(
        span_id="rep-00001",
        parent_id="sweep-000",
        name="replication 1",
        kind="replication",
        status="ok",
        start=1.5,
        duration=0.25,
        attrs={"position": 1, "attempts": 1},
    )
    record = span_to_record(span)
    assert list(record) == [
        "span", "parent", "name", "kind", "status", "start", "duration",
        "attrs",
    ]
    assert list(record["attrs"]) == sorted(record["attrs"])
    assert span_from_record(record) == span


def test_record_defaults_are_tolerant():
    span = span_from_record({"span": "x", "kind": "sweep"})
    assert span.span_id == "x"
    assert span.parent_id is None
    assert span.name == "x"
    assert span.status == "ok"
    assert span.attrs == {}


# -- collector globals ------------------------------------------------------


def test_collector_install_and_restore():
    assert get_span_collector() is None
    collector = SpanCollector()
    with use_span_collector(collector):
        assert get_span_collector() is collector
        get_span_collector().emit(
            Span("sweep-000", None, "s", "sweep", "ok", 0.0, 1.0)
        )
    assert get_span_collector() is None
    assert collector.counts == {"sweep": 1}
    previous = set_span_collector(collector)
    assert previous is None
    assert set_span_collector(None) is collector


# -- ledger lifecycle -------------------------------------------------------


def _fixed_clock(values):
    it = iter(values)
    return lambda: next(it)


def test_ledger_single_attempt_success():
    collector = SpanCollector()
    ledger = SpanLedger(collector, "sweep-000", clock=_fixed_clock([10.0, 10.0]))
    ledger.attempt(3, "ok", 2.0)
    ledger.settle(3, "ok")
    spans = {s.span_id: s for s in collector.spans()}
    attempt = spans["rep-00003.a1"]
    assert attempt.parent_id == "rep-00003"
    assert attempt.kind == "attempt"
    assert attempt.duration == 2.0
    assert attempt.start == 8.0  # now - seconds
    rep = spans["rep-00003"]
    assert rep.parent_id == "sweep-000"
    assert rep.status == "ok"
    assert rep.attrs["attempts"] == 1
    assert rep.duration == 2.0


def test_ledger_retries_number_attempts_and_sum_durations():
    collector = SpanCollector()
    ledger = SpanLedger(
        collector, "sweep-000", clock=_fixed_clock([1.0, 2.0, 3.0, 3.0])
    )
    ledger.attempt(0, "error", 0.5)
    ledger.attempt(0, "timeout", 0.25)
    ledger.attempt(0, "ok", 0.125)
    ledger.settle(0, "ok")
    spans = {s.span_id: s for s in collector.spans()}
    assert spans["rep-00000.a1"].status == "error"
    assert spans["rep-00000.a2"].status == "timeout"
    assert spans["rep-00000.a3"].status == "ok"
    rep = spans["rep-00000"]
    assert rep.attrs["attempts"] == 3
    assert rep.duration == pytest.approx(0.875)


def test_ledger_settle_without_attempt_reports_one():
    collector = SpanCollector()
    ledger = SpanLedger(collector, "sweep-000", clock=_fixed_clock([1.0]))
    ledger.settle(2, "failed")
    (rep,) = collector.spans()
    assert rep.span_id == "rep-00002"
    assert rep.status == "failed"
    assert rep.attrs["attempts"] == 1


# -- canonical structure ----------------------------------------------------


def _spans_with_topology(duration=1.0, shuffle=False):
    spans = [
        Span("sweep-000", None, "sweep", "sweep", "ok", 0.0, duration),
        Span("rep-00000", "sweep-000", "replication 0", "replication", "ok",
             0.0, duration, {"position": 0, "attempts": 1}),
        Span("rep-00000.a1", "rep-00000", "attempt 1", "attempt", "ok",
             0.0, duration, {"position": 0, "attempt": 1}),
        Span("node-0.r0", "sweep-000", "node 0 round 0", "node", "ok",
             0.0, duration),
        Span("chunk-00000", "node-0.r0", "chunk 0", "chunk", "ok",
             0.0, duration),
    ]
    if shuffle:
        spans.reverse()
    return spans


def test_canonical_structure_ignores_topology_durations_and_order():
    base = canonical_structure(_spans_with_topology())
    assert canonical_structure(_spans_with_topology(duration=9.0)) == base
    assert canonical_structure(_spans_with_topology(shuffle=True)) == base
    no_topology = [
        s for s in _spans_with_topology() if s.kind not in ("node", "chunk")
    ]
    assert canonical_structure(no_topology) == base


def test_canonical_structure_sees_status_and_count_changes():
    base = canonical_structure(_spans_with_topology())
    failed = _spans_with_topology()
    failed[1].status = "failed"
    assert canonical_structure(failed) != base
    extra = _spans_with_topology() + [
        Span("rep-00001", "sweep-000", "replication 1", "replication", "ok",
             0.0, 1.0)
    ]
    assert canonical_structure(extra) != base


# -- rebase -----------------------------------------------------------------


def test_rebase_remaps_position_and_reparents_to_sweep():
    record = span_to_record(
        Span("rep-00000", "sweep-old", "replication 0", "replication", "ok",
             0.0, 1.0, {"position": 0, "attempts": 2})
    )
    out = rebase_span_record(record, {0: 5}, "sweep-new")
    assert out["span"] == "rep-00005"
    assert out["parent"] == "sweep-new"
    assert out["name"] == "replication 5"
    assert out["attrs"]["position"] == 5
    attempt = span_to_record(
        Span("rep-00000.a2", "rep-00000", "attempt 2", "attempt", "error",
             0.0, 1.0, {"position": 0, "attempt": 2})
    )
    out = rebase_span_record(attempt, {0: 5}, "sweep-new")
    assert out["span"] == "rep-00005.a2"
    assert out["parent"] == "rep-00005"
    assert out["attrs"]["position"] == 5


# -- jsonl I/O --------------------------------------------------------------


@pytest.mark.parametrize("name", ["spans.jsonl", "spans.jsonl.gz"])
def test_write_read_round_trip(tmp_path, name):
    spans = _spans_with_topology(shuffle=True)
    path = tmp_path / name
    write_spans_jsonl(path, spans)
    loaded = read_spans_jsonl(path)
    # Written sorted by span id regardless of emission order.
    assert [s.span_id for s in loaded] == sorted(s.span_id for s in spans)
    assert {s.span_id: s for s in loaded} == {s.span_id: s for s in spans}
    if name.endswith(".gz"):
        assert path.read_bytes()[:2] == b"\x1f\x8b"


def test_read_rejects_non_span_lines(tmp_path):
    path = tmp_path / "spans.jsonl"
    path.write_text(
        json.dumps({"not-a-span": 1}) + "\n"
        + json.dumps(span_to_record(_spans_with_topology()[0])) + "\n"
    )
    with pytest.raises(ValueError, match="not a span record"):
        read_spans_jsonl(path)


# -- rendering --------------------------------------------------------------


def test_format_span_tree_nests_children_and_roots_orphans():
    spans = _spans_with_topology()
    spans.append(
        Span("rep-99999", "sweep-missing", "orphan", "replication", "ok",
             0.0, 0.5)
    )
    text = format_span_tree(spans)
    lines = text.splitlines()
    assert any(line.startswith("sweep-000 [sweep] ok") for line in lines)
    assert any(line.startswith("  rep-00000 ") for line in lines)
    assert any(line.startswith("    rep-00000.a1 ") for line in lines)
    # Orphan parents render at the root level instead of vanishing.
    assert any(line.startswith("rep-99999 ") for line in lines)
