"""Tests for the Connection lifecycle state machine."""

import pytest

from repro.core import audio_request
from repro.traffic import Connection, ConnectionState


def make_conn():
    return Connection(src="a", dst="b", qos=audio_request())


def test_auto_assigned_unique_ids():
    c1, c2 = make_conn(), make_conn()
    assert c1.conn_id != c2.conn_id


def test_activate_sets_route_rate_and_time():
    conn = make_conn()
    conn.activate(["a", "m", "b"], rate=16.0, now=3.0)
    assert conn.state is ConnectionState.ACTIVE
    assert conn.route == ["a", "m", "b"]
    assert conn.rate == 16.0
    assert conn.started_at == 3.0


def test_lifecycle_transitions_guarded():
    conn = make_conn()
    with pytest.raises(RuntimeError):
        conn.drop(0.0)  # cannot drop before activation
    with pytest.raises(RuntimeError):
        conn.terminate(0.0)
    conn.activate(["a", "b"], 16.0, 0.0)
    with pytest.raises(RuntimeError):
        conn.activate(["a", "b"], 16.0, 1.0)  # double activation
    with pytest.raises(RuntimeError):
        conn.block(1.0)  # already active
    conn.terminate(5.0)
    assert conn.state is ConnectionState.TERMINATED
    assert conn.ended_at == 5.0
    with pytest.raises(RuntimeError):
        conn.drop(6.0)  # already finished


def test_block_path():
    conn = make_conn()
    conn.block(2.0)
    assert conn.state is ConnectionState.BLOCKED
    assert conn.ended_at == 2.0


def test_drop_path():
    conn = make_conn()
    conn.activate(["a", "b"], 16.0, 0.0)
    conn.drop(4.0)
    assert conn.state is ConnectionState.DROPPED


def test_is_adaptive_reflects_bounds():
    assert make_conn().is_adaptive  # audio: [16, 64]
    fixed = Connection(src="a", dst="b", qos=audio_request(b_min=16, b_max=16))
    assert not fixed.is_adaptive


def test_bandwidth_accessors():
    conn = make_conn()
    assert conn.b_min == 16.0
    assert conn.b_max == 64.0
