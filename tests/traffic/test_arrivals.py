"""Tests for Poisson arrival processes and TypeSpec."""

import random

import pytest

from repro.des import Environment
from repro.traffic import PoissonArrivals, TypeSpec, sample_exponential


def test_typespec_validation():
    with pytest.raises(ValueError):
        TypeSpec(bandwidth=0, arrival_rate=1, holding_mean=1)
    with pytest.raises(ValueError):
        TypeSpec(bandwidth=1, arrival_rate=-1, holding_mean=1)
    with pytest.raises(ValueError):
        TypeSpec(bandwidth=1, arrival_rate=1, holding_mean=0)
    with pytest.raises(ValueError):
        TypeSpec(bandwidth=1, arrival_rate=1, holding_mean=1, handoff_prob=1.5)


def test_typespec_derived_quantities():
    spec = TypeSpec(bandwidth=4.0, arrival_rate=1.0, holding_mean=0.25)
    assert spec.mu == pytest.approx(4.0)
    assert spec.offered_load == pytest.approx(1.0)


def test_sample_exponential_validation():
    rng = random.Random(1)
    with pytest.raises(ValueError):
        sample_exponential(rng, 0.0)
    assert sample_exponential(rng, 2.0) > 0


def test_exponential_mean_statistics():
    rng = random.Random(42)
    samples = [sample_exponential(rng, 5.0) for _ in range(20000)]
    assert sum(samples) / len(samples) == pytest.approx(5.0, rel=0.05)


def test_poisson_arrival_counts():
    """lambda=2 over 500 time units -> ~1000 arrivals (within 10%)."""
    env = Environment()
    arrivals = []
    PoissonArrivals(
        env,
        [TypeSpec(bandwidth=1.0, arrival_rate=2.0, holding_mean=1.0)],
        on_arrival=lambda ctype, now: arrivals.append((ctype, now)),
        rng=random.Random(7),
    )
    env.run(until=500.0)
    assert 900 <= len(arrivals) <= 1100
    assert all(ctype == 0 for ctype, _ in arrivals)


def test_multiple_types_independent_streams():
    env = Environment()
    counts = {0: 0, 1: 0}

    def on_arrival(ctype, now):
        counts[ctype] += 1

    PoissonArrivals(
        env,
        [
            TypeSpec(bandwidth=1.0, arrival_rate=9.0, holding_mean=1.0),
            TypeSpec(bandwidth=4.0, arrival_rate=1.0, holding_mean=1.0),
        ],
        on_arrival=on_arrival,
        rng=random.Random(3),
    )
    env.run(until=200.0)
    # Rate ratio 9:1 should show in the counts.
    assert counts[0] > 5 * counts[1] > 0


def test_zero_rate_type_spawns_no_stream():
    env = Environment()
    arrivals = []
    PoissonArrivals(
        env,
        [TypeSpec(bandwidth=1.0, arrival_rate=0.0, holding_mean=1.0)],
        on_arrival=lambda ctype, now: arrivals.append(ctype),
        rng=random.Random(1),
    )
    env.run(until=100.0)
    assert arrivals == []
