"""Tests for packet sources and the adaptive video encoder."""

import random

import pytest

from repro.traffic import AdaptiveVideoSource, cbr_packets, onoff_packets


def test_cbr_spacing_and_count():
    packets = list(cbr_packets(rate=10.0, packet_size=2.0, duration=1.0))
    # interval = 0.2 -> packets at 0, .2, .4, .6, .8
    assert len(packets) == 5
    times = [t for t, _ in packets]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(0.2) for g in gaps)


def test_cbr_respects_start_offset():
    packets = list(cbr_packets(rate=10.0, packet_size=1.0, duration=0.5, start=3.0))
    assert packets[0][0] == 3.0
    assert all(3.0 <= t < 3.5 for t, _ in packets)


def test_cbr_validation():
    with pytest.raises(ValueError):
        list(cbr_packets(rate=0, packet_size=1, duration=1))


def test_onoff_bursts_have_gaps():
    rng = random.Random(5)
    packets = list(
        onoff_packets(rng, peak_rate=100.0, packet_size=1.0, mean_on=0.5,
                      mean_off=2.0, duration=60.0)
    )
    assert packets
    times = [t for t, _ in packets]
    gaps = [b - a for a, b in zip(times, times[1:])]
    burst_gap = 1.0 / 100.0
    assert any(g > 5 * burst_gap for g in gaps)  # silence periods exist
    assert any(g == pytest.approx(burst_gap) for g in gaps)  # bursts exist


def test_onoff_validation():
    rng = random.Random(1)
    with pytest.raises(ValueError):
        list(onoff_packets(rng, 0, 1, 1, 1, 1))
    with pytest.raises(ValueError):
        list(onoff_packets(rng, 1, 1, 0, 1, 1))


def test_video_source_snaps_to_ladder():
    source = AdaptiveVideoSource(ladder=[60, 120, 240, 400, 600])
    assert source.rate == 60
    assert source.on_rate_granted(300.0) == 240
    assert source.on_rate_granted(600.0) == 600
    assert source.on_rate_granted(59.0) == 60  # never below the bottom layer
    assert source.b_min == 60 and source.b_max == 600


def test_video_source_records_switches():
    source = AdaptiveVideoSource(ladder=[60, 600])
    source.on_rate_granted(700.0, now=1.0)
    source.on_rate_granted(700.0, now=2.0)  # no change, no record
    source.on_rate_granted(60.0, now=3.0)
    assert source.switches == [(1.0, 600), (3.0, 60)]


def test_video_source_flowspec_reserves_bottom_layer():
    source = AdaptiveVideoSource(ladder=[60, 600], packet_size=8.0)
    spec = source.flowspec()
    assert spec.rho == 60
    assert spec.l_max == 8.0


def test_video_source_validation():
    with pytest.raises(ValueError):
        AdaptiveVideoSource(ladder=[])
    with pytest.raises(ValueError):
        AdaptiveVideoSource(ladder=[0.0, 10.0])


def test_video_source_packets_track_current_layer():
    source = AdaptiveVideoSource(ladder=[100.0], packet_size=10.0)
    packets = list(source.packets(duration=1.0))
    assert len(packets) == 10
