"""Tests for the (sigma, rho) token-bucket envelope."""

import pytest
from hypothesis import given, strategies as st

from repro.traffic import FlowSpec


def test_validation():
    with pytest.raises(ValueError):
        FlowSpec(sigma=-1.0, rho=1.0)
    with pytest.raises(ValueError):
        FlowSpec(sigma=1.0, rho=0.0)
    with pytest.raises(ValueError):
        FlowSpec(sigma=1.0, rho=1.0, l_max=0.0)


def test_max_bits_envelope():
    spec = FlowSpec(sigma=10.0, rho=2.0)
    assert spec.max_bits(0.0) == 10.0
    assert spec.max_bits(5.0) == 20.0
    with pytest.raises(ValueError):
        spec.max_bits(-1.0)


def test_conformance_check():
    spec = FlowSpec(sigma=10.0, rho=2.0)
    assert spec.conforms(bits=20.0, interval=5.0)
    assert not spec.conforms(bits=20.1, interval=5.0)


def test_scaled_to_rate_preserves_burst():
    spec = FlowSpec(sigma=10.0, rho=2.0, l_max=1.5)
    scaled = spec.scaled_to_rate(8.0)
    assert scaled.rho == 8.0
    assert scaled.sigma == spec.sigma
    assert scaled.l_max == spec.l_max


def test_frozen():
    spec = FlowSpec(sigma=1.0, rho=1.0)
    with pytest.raises(Exception):
        spec.rho = 2.0


@given(
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=0.001, max_value=1e6),
    st.floats(min_value=0.0, max_value=1e4),
    st.floats(min_value=0.0, max_value=1e4),
)
def test_envelope_superadditive(sigma, rho, t1, t2):
    """sigma is charged once: A(t1+t2) <= A(t1) + A(t2)."""
    spec = FlowSpec(sigma=sigma, rho=rho)
    assert spec.max_bits(t1 + t2) <= spec.max_bits(t1) + spec.max_bits(t2) + 1e-6
