"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_enumerates_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)


def test_single_experiment_runs(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "=== table2 ===" in out
    assert "admission round-trip outcomes" in out


def test_figure2_runs(capsys):
    assert main(["figure2"]) == 0
    assert "Figure 2" in capsys.readouterr().out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_jobs_flag_runs_through_process_pool(capsys):
    assert main(["--jobs", "2", "table2"]) == 0
    assert "admission round-trip outcomes" in capsys.readouterr().out


def test_bad_jobs_value_rejected():
    with pytest.raises(ValueError):
        main(["--jobs", "bogus", "table2"])


def test_repro_jobs_env_is_honored(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert main(["table2"]) == 0
    assert "admission round-trip outcomes" in capsys.readouterr().out


def test_cache_flag_reuses_results(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["--cache", "table2"]) == 0
    first = capsys.readouterr().out
    assert main(["--cache", "table2"]) == 0
    assert capsys.readouterr().out == first
    assert any(tmp_path.rglob("*.pkl"))


def test_fault_tolerance_flags_accepted(capsys):
    assert main(
        ["--max-retries", "2", "--timeout", "60", "--partial", "table2"]
    ) == 0
    assert "admission round-trip outcomes" in capsys.readouterr().out


def test_negative_max_retries_rejected():
    with pytest.raises(ValueError):
        main(["--max-retries", "-1", "table2"])


# -- cache subcommand -------------------------------------------------------


def _seed_cache(root, configs=(1, 2, 3)):
    import os

    from repro.runtime import ResultCache

    cache = ResultCache(root=root)
    paths = []
    for rank, config in enumerate(configs):
        path = cache.put("cli.worker", config, config * 10)
        stamp = 1_000_000_000 + rank * 60  # distinct mtimes: LRU order known
        os.utime(path, (stamp, stamp))
        paths.append(path)
    return cache, paths


def test_cache_stats_subcommand(tmp_path, capsys):
    _seed_cache(tmp_path)
    assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert str(tmp_path) in out
    assert "entries:    3" in out
    assert "cli.worker" in out


def test_cache_clear_subcommand(tmp_path, capsys):
    _seed_cache(tmp_path)
    assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
    assert "cleared 3 entries" in capsys.readouterr().out
    assert not any(tmp_path.rglob("*.pkl"))


def test_cache_prune_max_size_evicts_lru_order(tmp_path, capsys):
    cache, paths = _seed_cache(tmp_path)
    entry_size = cache.entries()[0].size
    cap = 2 * entry_size
    assert main(
        ["cache", "prune", "--max-size", str(cap), "--dir", str(tmp_path)]
    ) == 0
    assert "evicted 1 entries" in capsys.readouterr().out
    # The least recently used entry went first; the newer two survive.
    assert not paths[0].exists()
    assert paths[1].exists() and paths[2].exists()
    assert cache.total_bytes() <= cap


def test_cache_prune_max_entries_subcommand(tmp_path, capsys):
    _, paths = _seed_cache(tmp_path)
    assert main(
        ["cache", "prune", "--max-entries", "1", "--dir", str(tmp_path)]
    ) == 0
    assert "evicted 2 entries" in capsys.readouterr().out
    assert not paths[0].exists() and not paths[1].exists()
    assert paths[2].exists()


def test_cache_prune_requires_a_cap(tmp_path):
    with pytest.raises(SystemExit):
        main(["cache", "prune", "--dir", str(tmp_path)])


def test_cache_subcommand_honors_env_dir(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    _seed_cache(tmp_path)
    assert main(["cache", "stats"]) == 0
    assert "entries:    3" in capsys.readouterr().out


# -- observability flags ------------------------------------------------------


def test_trace_flag_jsonl_and_summarize(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.jsonl")
    assert main(["table2", "--trace", trace_path]) == 0
    out = capsys.readouterr().out
    assert f"trace written to {trace_path}" in out

    from repro.obs import get_tracer, read_jsonl

    assert get_tracer() is None  # uninstalled after the run
    records = read_jsonl(trace_path)
    assert any(r["kind"] == "admission.decision" for r in records)

    assert main(["trace", "summarize", trace_path]) == 0
    import json

    summary = json.loads(capsys.readouterr().out)
    assert summary["records"] == len(records)
    assert "admission" in summary


def test_trace_flag_in_memory_prints_summary(capsys):
    assert main(["table2", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "trace summary:" in out
    assert "admission.decision" in out


def test_metrics_json_flag_exports_registry(tmp_path, capsys):
    import json

    metrics_path = str(tmp_path / "metrics.json")
    assert main(["table2", "--metrics-json", metrics_path]) == 0
    assert f"metrics written to {metrics_path}" in capsys.readouterr().out

    from repro.obs import NullRegistry, get_registry

    assert isinstance(get_registry(), NullRegistry)  # restored after the run
    with open(metrics_path, encoding="utf-8") as fh:
        data = json.load(fh)
    names = {m["name"] for m in data["metrics"]}
    assert "admission_decisions_total" in names


def test_stats_json_and_stats_flags(tmp_path, capsys):
    import json

    stats_path = str(tmp_path / "stats.json")
    assert main(["table2", "--stats-json", stats_path]) == 0
    out = capsys.readouterr().out
    assert "run telemetry:" in out
    with open(stats_path, encoding="utf-8") as fh:
        stats = json.load(fh)
    assert stats["batches"] == 1
    assert stats["replications"] > 0
    assert stats["wall_time"]["elapsed"] > 0


def test_trace_summarize_rejects_malformed_file(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"no-kind": 1}\n', encoding="utf-8")
    with pytest.raises(ValueError, match="missing string 'kind'"):
        main(["trace", "summarize", str(bad)])
