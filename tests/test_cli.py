"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_enumerates_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)


def test_single_experiment_runs(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "=== table2 ===" in out
    assert "admission round-trip outcomes" in out


def test_figure2_runs(capsys):
    assert main(["figure2"]) == 0
    assert "Figure 2" in capsys.readouterr().out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_jobs_flag_runs_through_process_pool(capsys):
    assert main(["--jobs", "2", "table2"]) == 0
    assert "admission round-trip outcomes" in capsys.readouterr().out


def test_bad_jobs_value_rejected():
    with pytest.raises(ValueError):
        main(["--jobs", "bogus", "table2"])


def test_repro_jobs_env_is_honored(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert main(["table2"]) == 0
    assert "admission round-trip outcomes" in capsys.readouterr().out


def test_cache_flag_reuses_results(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["--cache", "table2"]) == 0
    first = capsys.readouterr().out
    assert main(["--cache", "table2"]) == 0
    assert capsys.readouterr().out == first
    assert any(tmp_path.rglob("*.pkl"))
