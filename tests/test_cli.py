"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_enumerates_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)


def test_single_experiment_runs(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "=== table2 ===" in out
    assert "admission round-trip outcomes" in out


def test_figure2_runs(capsys):
    assert main(["figure2"]) == 0
    assert "Figure 2" in capsys.readouterr().out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure99"])
