"""Whole-program engine tests: REP4xx rules, golden summaries, cache, jobs.

Every REP4xx fixture here encodes a violation that only exists *across* a
function or module boundary — each test therefore asserts two things: the
project pass reports it, and the per-file rule families (REP0xx–REP3xx) stay
silent on the same tree.  That pairing is the contract that separates the
whole-program rules from the single-module ones.
"""

import json
import pathlib

import pytest

from repro.lint.baseline import Baseline
from repro.lint.cache import LintCache
from repro.lint.config import LintConfig
from repro.lint.context import ProjectContext
from repro.lint.registry import all_rules
from repro.lint.runner import lint_paths, lint_source, resolve_jobs

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: No baseline: fixtures must stand on their own findings.
CONFIG = LintConfig(baseline=None)

ALL_RULES = tuple(CONFIG.enabled_rules([r.id for r in all_rules()]))
PER_FILE_RULES = tuple(r for r in ALL_RULES if not r.startswith("REP4"))


def write_tree(tmp_path, files):
    """Materialize ``{relpath: source}`` under ``tmp_path`` and return it."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def lint_tree(tmp_path, monkeypatch, enabled=ALL_RULES, **kwargs):
    monkeypatch.chdir(tmp_path)
    return lint_paths(["src"], config=CONFIG, enabled=enabled, **kwargs)


def assert_per_file_silent(tmp_path, monkeypatch, files):
    """The same tree produces zero findings from the per-file families —
    both in a project run restricted to them and module-by-module."""
    result = lint_tree(tmp_path, monkeypatch, enabled=PER_FILE_RULES)
    assert result.findings == [], [f.render() for f in result.findings]
    for relpath, source in files.items():
        found = lint_source(source, relpath, config=CONFIG,
                            enabled=PER_FILE_RULES)
        assert found == [], [f.render() for f in found]


# -- REP401: rng escape ------------------------------------------------------

RNG_FACTORY = """\
import random


def make_rng(seed):
    return random.Random(seed)
"""

RNG_MODULE_GLOBAL = {
    "src/repro/core/rngsrc.py": RNG_FACTORY,
    "src/repro/sim/setup.py": (
        "from ..core.rngsrc import make_rng\n"
        "\n"
        "SHARED = make_rng(7)\n"
    ),
}


def test_rep401_rng_reaching_module_global(tmp_path, monkeypatch):
    write_tree(tmp_path, RNG_MODULE_GLOBAL)
    result = lint_tree(tmp_path, monkeypatch)
    rules = [f.rule for f in result.findings]
    assert rules == ["REP401"]
    finding = result.findings[0]
    assert finding.path == "src/repro/sim/setup.py"
    assert "SHARED" in finding.message
    # Provenance crosses the module boundary back to the factory.
    assert "repro.core.rngsrc.make_rng" in finding.message


def test_rep401_needs_the_project_view(tmp_path, monkeypatch):
    write_tree(tmp_path, RNG_MODULE_GLOBAL)
    assert_per_file_silent(tmp_path, monkeypatch, RNG_MODULE_GLOBAL)


RNG_DISPATCH = {
    "src/repro/core/rngsrc.py": RNG_FACTORY,
    "src/repro/sim/fanout.py": (
        "from ..core.rngsrc import make_rng\n"
        "\n"
        "\n"
        "def step(rng):\n"
        "    return rng.random()\n"
        "\n"
        "\n"
        "def fan_out(pool, seeds):\n"
        "    rng = make_rng(3)\n"
        "    return pool.map(step, rng)\n"
        "\n"
        "\n"
        "def fan_out_lambda(pool, seeds):\n"
        "    rng = make_rng(5)\n"
        "    return pool.map(lambda s: rng.random() + s, seeds)\n"
    ),
}


def test_rep401_rng_crossing_the_pool_boundary(tmp_path, monkeypatch):
    write_tree(tmp_path, RNG_DISPATCH)
    result = lint_tree(tmp_path, monkeypatch)
    messages = [f.message for f in result.findings]
    assert [f.rule for f in result.findings] == ["REP401", "REP401"]
    assert any("passed to .map()" in m for m in messages)
    assert any("captures 'rng'" in m for m in messages)
    assert_per_file_silent(tmp_path, monkeypatch, RNG_DISPATCH)


def test_rep401_default_argument(tmp_path, monkeypatch):
    files = {
        "src/repro/core/rngsrc.py": RNG_FACTORY,
        "src/repro/sim/draw.py": (
            "from ..core.rngsrc import make_rng\n"
            "\n"
            "\n"
            "def draw(rng=make_rng(11)):\n"
            "    return rng.random()\n"
        ),
    }
    write_tree(tmp_path, files)
    result = lint_tree(tmp_path, monkeypatch)
    assert [f.rule for f in result.findings] == ["REP401"]
    assert "defaults evaluate once at import" in result.findings[0].message
    assert_per_file_silent(tmp_path, monkeypatch, files)


def test_rep401_unseeded_factory_is_clean(tmp_path, monkeypatch):
    # random.Random() without arguments is not a *seeded* stream; parking
    # it in a global is a style question, not a replication bug.
    files = {
        "src/repro/core/rngsrc.py": (
            "import random\n"
            "\n"
            "\n"
            "def fresh_rng():\n"
            "    return random.Random()\n"
        ),
        "src/repro/sim/setup.py": (
            "from ..core.rngsrc import fresh_rng\n"
            "\n"
            "SHARED = fresh_rng()\n"
        ),
    }
    write_tree(tmp_path, files)
    result = lint_tree(tmp_path, monkeypatch)
    # The per-file REP001 still dislikes the entropy-seeded constructor,
    # but no cross-module *escape* is reported.
    assert [f.rule for f in result.findings] == ["REP001"]


# -- REP402: hash-order taint ------------------------------------------------

SET_PRODUCER = """\
def active_ids(rows):
    ids = set()
    for row in rows:
        ids.add(row)
    return ids
"""

SET_CONSUMER = {
    "src/repro/core/groups.py": SET_PRODUCER,
    "src/repro/sim/decide.py": (
        "from ..core.groups import active_ids\n"
        "\n"
        "\n"
        "def admit(rows):\n"
        "    total = 0\n"
        "    for ident in active_ids(rows):\n"
        "        total += ident\n"
        "    return total\n"
    ),
}


def test_rep402_set_crossing_module_boundary(tmp_path, monkeypatch):
    write_tree(tmp_path, SET_CONSUMER)
    result = lint_tree(tmp_path, monkeypatch)
    assert [f.rule for f in result.findings] == ["REP402"]
    finding = result.findings[0]
    assert finding.path == "src/repro/sim/decide.py"
    assert "repro.core.groups.active_ids" in finding.message
    assert_per_file_silent(tmp_path, monkeypatch, SET_CONSUMER)


def test_rep402_sorted_sanitizer_kills_the_taint(tmp_path, monkeypatch):
    files = dict(SET_CONSUMER)
    files["src/repro/sim/decide.py"] = files["src/repro/sim/decide.py"].replace(
        "for ident in active_ids(rows):",
        "for ident in sorted(active_ids(rows)):",
    )
    write_tree(tmp_path, files)
    result = lint_tree(tmp_path, monkeypatch)
    assert result.findings == [], [f.render() for f in result.findings]


def test_rep402_outside_decision_packages_is_clean(tmp_path, monkeypatch):
    # The same flow in a reporting package is allowed: output formatting
    # may iterate sets, only simulation decisions must not.
    files = {
        "src/repro/core/groups.py": SET_PRODUCER,
        "src/repro/report/table.py": (
            "from ..core.groups import active_ids\n"
            "\n"
            "\n"
            "def render(rows):\n"
            "    return [str(i) for i in active_ids(rows)]\n"
        ),
    }
    write_tree(tmp_path, files)
    result = lint_tree(tmp_path, monkeypatch)
    assert result.findings == [], [f.render() for f in result.findings]


# -- REP403: shm lifecycle ---------------------------------------------------

SHM_TREE = {
    # Lives at the path REP204 trusts wholesale: only the project-level
    # lifecycle audit can see these.
    "src/repro/runtime/shm.py": (
        "from multiprocessing import shared_memory\n"
        "\n"
        "\n"
        "def leak_segment(name, size):\n"
        "    seg = shared_memory.SharedMemory(name=name, create=True, "
        "size=size)\n"
        "    return seg\n"
        "\n"
        "\n"
        "def finish(seg):\n"
        "    seg.close()\n"
        "    seg.unlink()\n"
        "\n"
        "\n"
        "def delegated(name, size):\n"
        "    seg = shared_memory.SharedMemory(name=name, create=True, "
        "size=size)\n"
        "    finish(seg)\n"
        "\n"
        "\n"
        "def documented(name, size):\n"
        "    '''Create a segment; the caller takes ownership of unlinking.'''\n"
        "    seg = shared_memory.SharedMemory(name=name, create=True, "
        "size=size)\n"
        "    return seg\n"
    ),
}


def test_rep403_flags_only_the_undocumented_leak(tmp_path, monkeypatch):
    write_tree(tmp_path, SHM_TREE)
    result = lint_tree(tmp_path, monkeypatch)
    assert [f.rule for f in result.findings] == ["REP403"]
    finding = result.findings[0]
    # Only ``leak_segment`` trips: ``delegated`` hands the segment to a
    # callee whose summary closes *and* unlinks it, and ``documented``
    # declares the ownership transfer in its docstring.
    assert "leak_segment" in finding.message
    assert "close() and unlink()" in finding.message
    assert_per_file_silent(tmp_path, monkeypatch, SHM_TREE)


# -- REP404: plugin state ----------------------------------------------------

PLUGIN_TREE = {
    "src/repro/sim/plugreg.py": (
        "_PLUGINS = []\n"
        "\n"
        "\n"
        "def register_policy(plugin):\n"
        "    _PLUGINS.append(plugin)\n"
        "    return plugin\n"
    ),
    "src/repro/sim/policy.py": (
        "from .plugreg import register_policy\n"
        "\n"
        "_CACHE = {}\n"
        "\n"
        "\n"
        "@register_policy\n"
        "class StickyPolicy:\n"
        "    def apply(self, key, value):\n"
        "        _CACHE[key] = value\n"
        "        return value\n"
        "\n"
        "\n"
        "class InstancePolicy:\n"
        "    def __init__(self):\n"
        "        self.cache = {}\n"
        "\n"
        "    def apply(self, key, value):\n"
        "        self.cache[key] = value\n"
        "        return value\n"
        "\n"
        "\n"
        "register_policy(InstancePolicy)\n"
    ),
}


def test_rep404_registered_plugin_mutating_module_state(tmp_path, monkeypatch):
    write_tree(tmp_path, PLUGIN_TREE)
    result = lint_tree(tmp_path, monkeypatch)
    assert [f.rule for f in result.findings] == ["REP404"]
    finding = result.findings[0]
    # The decorator-registered plugin writing a module dict is flagged;
    # the call-registered plugin keeping state on the instance is not.
    assert "'StickyPolicy'" in finding.message
    assert "_CACHE" in finding.message
    assert_per_file_silent(tmp_path, monkeypatch, PLUGIN_TREE)


def test_rep404_unregistered_class_is_clean(tmp_path, monkeypatch):
    files = {
        path: source.replace("@register_policy\n", "")
        for path, source in PLUGIN_TREE.items()
    }
    write_tree(tmp_path, files)
    result = lint_tree(tmp_path, monkeypatch)
    assert result.findings == [], [f.render() for f in result.findings]


# -- REP101 across modules (project facts in a per-file rule) ----------------

DES_TREE = {
    "src/repro/sim/work.py": (
        "def step(env):\n"
        "    return env\n"
    ),
    "src/repro/sim/driver.py": (
        "from .work import step\n"
        "\n"
        "\n"
        "def drive(env):\n"
        "    env.process(step(env))\n"
    ),
}


def test_rep101_sees_yield_free_imports_with_facts(tmp_path, monkeypatch):
    write_tree(tmp_path, DES_TREE)
    result = lint_tree(tmp_path, monkeypatch)
    assert [f.rule for f in result.findings] == ["REP101"]
    assert "repro.sim.work.step" in result.findings[0].message
    assert "project index" in result.findings[0].message
    # Without the project pass (single-module lint) the import stays
    # trusted, exactly as before the whole-program engine existed.
    found = lint_source(DES_TREE["src/repro/sim/driver.py"],
                        "src/repro/sim/driver.py", config=CONFIG)
    assert found == []


# -- golden files: call graph and dataflow summaries -------------------------

GOLDEN_FIXTURE = [
    ("src/repro/core/rngsrc.py", RNG_FACTORY),
    ("src/repro/core/groups.py", SET_PRODUCER),
    (
        "src/repro/sim/decide.py",
        SET_CONSUMER["src/repro/sim/decide.py"],
    ),
    (
        "src/repro/sim/seeded.py",
        "from ..core.rngsrc import make_rng\n"
        "\n"
        "\n"
        "def draw(seed):\n"
        "    rng = make_rng(seed)\n"
        "    return rng.random()\n",
    ),
]


@pytest.fixture(scope="module")
def golden_project():
    return ProjectContext.build(GOLDEN_FIXTURE, CONFIG)


def _load_golden(name):
    return json.loads((GOLDEN_DIR / name).read_text())


def test_call_graph_matches_golden(golden_project):
    assert golden_project.graph.to_dict() == _load_golden("callgraph.json")


def test_dataflow_summaries_match_golden(golden_project):
    assert (
        golden_project.dataflow.summaries_dict()
        == _load_golden("summaries.json")
    )


# -- execution modes: jobs, cache, determinism -------------------------------

MIXED_TREE = {**RNG_MODULE_GLOBAL, **SET_CONSUMER, **PLUGIN_TREE, **SHM_TREE}


def _rendered(result):
    return [f.render() for f in result.sorted_findings()]


def test_parallel_run_matches_serial(tmp_path, monkeypatch):
    write_tree(tmp_path, MIXED_TREE)
    serial = lint_tree(tmp_path, monkeypatch, jobs=1)
    parallel = lint_tree(tmp_path, monkeypatch, jobs=2)
    assert _rendered(serial) == _rendered(parallel)
    assert serial.files_checked == parallel.files_checked
    assert serial.suppressed == parallel.suppressed


def test_warm_cache_matches_cold(tmp_path, monkeypatch):
    write_tree(tmp_path, MIXED_TREE)
    cache = LintCache(tmp_path / ".lint-cache")
    cold = lint_tree(tmp_path, monkeypatch, cache=cache)
    assert cold.cache_hits == 0
    assert cold.cache_misses == len(MIXED_TREE) + 1  # files + project pass

    warm_cache = LintCache(tmp_path / ".lint-cache")
    warm = lint_tree(tmp_path, monkeypatch, cache=warm_cache)
    assert warm.cache_misses == 0
    assert warm.cache_hits == len(MIXED_TREE) + 1
    assert _rendered(cold) == _rendered(warm)
    assert warm.suppressed == cold.suppressed


def test_editing_one_file_invalidates_only_it(tmp_path, monkeypatch):
    write_tree(tmp_path, MIXED_TREE)
    cache = LintCache(tmp_path / ".lint-cache")
    lint_tree(tmp_path, monkeypatch, cache=cache)

    target = tmp_path / "src/repro/sim/decide.py"
    target.write_text(target.read_text() + "\n# trailing comment\n")
    second = lint_tree(
        tmp_path, monkeypatch, cache=LintCache(tmp_path / ".lint-cache")
    )
    # Every unchanged file hits; the edited file and the (whole-program)
    # project pass miss.
    assert second.cache_misses == 2
    assert second.cache_hits == len(MIXED_TREE) - 1


def test_corrupt_cache_entry_heals(tmp_path, monkeypatch):
    write_tree(tmp_path, MIXED_TREE)
    cache_dir = tmp_path / ".lint-cache"
    cold = lint_tree(tmp_path, monkeypatch, cache=LintCache(cache_dir))
    for entry in cache_dir.rglob("*.json"):
        entry.write_text("{corrupt")
    healed = lint_tree(tmp_path, monkeypatch, cache=LintCache(cache_dir))
    assert healed.cache_hits == 0
    assert _rendered(healed) == _rendered(cold)


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs("3") == 3
    assert resolve_jobs("auto") >= 1
    with pytest.raises(ValueError):
        resolve_jobs("0")
    with pytest.raises(ValueError):
        resolve_jobs("many")


# -- baseline occurrence counting --------------------------------------------


def _baseline_from_rows(tmp_path, rows):
    payload = {"version": 1, "entries": rows}
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(payload))
    return Baseline.load(path)


ROW = {
    "rule": "REP401",
    "path": "src/repro/sim/setup.py",
    "code": "SHARED = make_rng(7)",
}


class _Fake:
    rule = "REP401"
    path = "src/repro/sim/setup.py"


def test_baseline_budget_is_occurrence_counted(tmp_path):
    # Two identical rows grandfather exactly two identical findings —
    # the third occurrence of the very same (rule, path, code) still fails.
    baseline = _baseline_from_rows(tmp_path, [ROW, ROW])
    assert len(baseline) == 2
    assert baseline.matches(_Fake, ROW["code"])
    assert baseline.matches(_Fake, ROW["code"])
    assert not baseline.matches(_Fake, ROW["code"])
    assert baseline.stale_entries() == []


def test_baseline_single_row_matches_once(tmp_path):
    baseline = _baseline_from_rows(tmp_path, [ROW])
    assert baseline.matches(_Fake, ROW["code"])
    assert not baseline.matches(_Fake, ROW["code"])


def test_baseline_unused_budget_reported_stale(tmp_path):
    baseline = _baseline_from_rows(tmp_path, [ROW, ROW])
    assert baseline.matches(_Fake, ROW["code"])
    stale = baseline.stale_entries()
    assert len(stale) == 1
    assert stale[0].count == 1  # one of the two occurrences was fixed


def test_baseline_explicit_count_field(tmp_path):
    baseline = _baseline_from_rows(tmp_path, [{**ROW, "count": 3}])
    assert len(baseline) == 3
    for _ in range(3):
        assert baseline.matches(_Fake, ROW["code"])
    assert not baseline.matches(_Fake, ROW["code"])
