"""Positive and negative fixtures for every lint rule.

Each rule gets at least one snippet that must trigger it (at a known line)
and one semantically-adjacent snippet that must stay clean — the negative
fixtures are the real spec, pinning where each rule's reach ends.
"""

import textwrap

import pytest

from repro.lint import LintConfig, all_rules, lint_source

SIM_PATH = "src/repro/sim/fixture_module.py"
ENGINE_PATH = "src/repro/des/fixture_module.py"
PLAIN_PATH = "src/repro/experiments/fixture_module.py"
TOOL_PATH = "tools/fixture_module.py"


def findings_for(source, path=SIM_PATH, rule=None, config=None):
    found = lint_source(
        textwrap.dedent(source), path, config=config or LintConfig()
    )
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def assert_triggers(rule, source, path=SIM_PATH, line=None, count=1):
    found = findings_for(source, path=path, rule=rule)
    assert len(found) == count, (
        f"expected {count} {rule} finding(s), got "
        f"{[f.render() for f in found]}"
    )
    if line is not None:
        assert found[0].line == line, found[0].render()


def assert_clean(rule, source, path=SIM_PATH):
    found = findings_for(source, path=path, rule=rule)
    assert not found, [f.render() for f in found]


# -- REP001: no global RNG --------------------------------------------------


def test_rep001_positive_module_random():
    assert_triggers("REP001", """
        import random

        def jitter():
            return random.random() * 2.0
    """, line=5)


def test_rep001_positive_alias_and_from_import():
    assert_triggers("REP001", """
        from random import choice

        def pick(xs):
            return choice(xs)
    """, line=5)
    assert_triggers("REP001", """
        import numpy as np

        def noise(n):
            return np.random.normal(size=n)
    """, line=5)


def test_rep001_positive_unseeded_instances():
    assert_triggers("REP001", """
        import random
        rng = random.Random()
    """, line=3)
    assert_triggers("REP001", """
        import numpy as np
        rng = np.random.default_rng()
    """, line=3)


def test_rep001_negative_seeded_instance():
    assert_clean("REP001", """
        import random

        def make_rng(seed):
            return random.Random(seed)

        def draw(rng):
            return rng.random() + rng.expovariate(2.0)
    """)
    assert_clean("REP001", """
        import numpy as np

        def make_rng(seed):
            return np.random.default_rng(seed)
    """)


# -- REP002: seed only in entry points --------------------------------------


def test_rep002_positive_seed_in_library_code():
    assert_triggers("REP002", """
        import random

        def setup():
            random.seed(42)
    """, line=5)


def test_rep002_negative_seed_in_entry_point():
    assert_clean("REP002", """
        import random

        def main():
            random.seed(42)
    """)
    assert_clean("REP002", """
        import random

        if __name__ == "__main__":
            random.seed(42)
    """)


# -- REP003: no wall clock in sim packages ----------------------------------


def test_rep003_positive_wall_clock_reads():
    assert_triggers("REP003", """
        import time

        def stamp():
            return time.time()
    """, line=5)
    assert_triggers("REP003", """
        from datetime import datetime

        def stamp():
            return datetime.now()
    """, line=5)
    assert_triggers("REP003", """
        import os

        def token():
            return os.urandom(8)
    """, line=5)


def test_rep003_negative_outside_sim_packages():
    # Wall-clock reads are fine in tooling (benchmark timers, report
    # generators) — the rule is scoped to simulation packages.
    assert_clean("REP003", """
        import time

        def stamp():
            return time.time()
    """, path=TOOL_PATH)


def test_rep003_negative_sim_clock():
    assert_clean("REP003", """
        def stamp(env):
            return env.now
    """)


# -- REP004: no set iteration in sim packages -------------------------------


def test_rep004_positive_evident_set():
    assert_triggers("REP004", """
        def spread(cells):
            for cell in set(cells):
                cell.allocate(1.0)
    """, line=3)


def test_rep004_positive_local_inference():
    assert_triggers("REP004", """
        def spread(cells):
            pending = {c for c in cells if c.active}
            for cell in pending:
                cell.allocate(1.0)
    """, line=4)


def test_rep004_positive_configured_attribute():
    assert_triggers("REP004", """
        def spread(cell):
            return [n for n in cell.neighbors]
    """, line=3)


def test_rep004_negative_sorted_wrapper():
    assert_clean("REP004", """
        def spread(cell, cells):
            for n in sorted(cell.neighbors, key=repr):
                n.allocate(1.0)
            for c in sorted(set(cells), key=repr):
                c.allocate(1.0)
    """)


def test_rep004_negative_outside_sim_packages():
    assert_clean("REP004", """
        def dedupe(xs):
            return [x for x in set(xs)]
    """, path=TOOL_PATH)


def test_rep004_negative_membership_and_mutation():
    # Membership tests and set algebra are order-free; only iteration is
    # flagged.
    assert_clean("REP004", """
        def touch(cell, x):
            if x in cell.neighbors:
                cell.occupants |= {x}
            return len(cell.neighbors)
    """)


# -- REP005: no population scans in library code -----------------------------


def test_rep005_positive_manager_portables_loop():
    assert_triggers("REP005", """
        def audit(manager):
            for pid, portable in manager.portables.items():
                portable.refresh()
    """, line=3)


def test_rep005_positive_private_table_and_views():
    assert_triggers("REP005", """
        class Manager:
            def sweep(self):
                for portable in self._portables.values():
                    portable.refresh()
    """, line=4)
    assert_triggers("REP005", """
        def rates(mgr):
            return [p.rate for p in mgr.portables]
    """, line=3)


def test_rep005_positive_manager_cells():
    assert_triggers("REP005", """
        def repool(sim):
            for cell_id in sim.manager.cells:
                sim.manager.update_pools([cell_id])
    """, line=3)


def test_rep005_positive_sorted_wrapper_still_scans():
    # sorted() fixes iteration *order*, not iteration *cost*; the scan is
    # the problem, so the wrapper earns no exemption.
    assert_triggers("REP005", """
        def audit(manager):
            for pid in sorted(manager.portables, key=repr):
                manager.touch(pid)
    """, line=3)
    assert_triggers("REP005", """
        def audit(manager):
            return list(manager.portables.values())[:5]
    """, count=0)  # materialization without iteration syntax is out of reach


def test_rep005_negative_floorplan_cells():
    # Floorplans legitimately enumerate their cells (construction is a
    # one-time cost); only manager-owned tables are population-sized.
    assert_clean("REP005", """
        def build(plan):
            return [plan.cells[0] for _ in plan.cells]
    """)


def test_rep005_negative_subscript_and_membership():
    assert_clean("REP005", """
        def lookup(manager, pid):
            if pid in manager.portables:
                return manager.portables[pid]
            return None
    """)


def test_rep005_negative_outside_library():
    assert_clean("REP005", """
        def audit(manager):
            for pid in manager.portables:
                manager.touch(pid)
    """, path=TOOL_PATH)
    assert_clean("REP005", """
        def audit(manager):
            for pid in manager.portables:
                manager.touch(pid)
    """, path="tests/sim/fixture_module.py")


def test_rep005_negative_suppressed_cold_path():
    assert_clean("REP005", """
        def full_scan(manager):
            for pid in manager.portables:  # repro-lint: ignore[REP005]
                manager.touch(pid)
    """)


# -- REP101: env.process() takes a generator --------------------------------


def test_rep101_positive_lambda():
    assert_triggers("REP101", """
        def start(env):
            env.process(lambda: None)
    """, line=3)


def test_rep101_positive_uncalled_function():
    assert_triggers("REP101", """
        def ticker(env):
            yield env.timeout(1.0)

        def start(env):
            env.process(ticker)
    """, line=6)


def test_rep101_positive_non_generator_call():
    assert_triggers("REP101", """
        def not_a_process(env):
            return None

        def start(env):
            env.process(not_a_process(env))
    """, line=6)


def test_rep101_negative_generator_call():
    assert_clean("REP101", """
        def ticker(env):
            yield env.timeout(1.0)

        class Sim:
            def run(self):
                yield self.env.timeout(1.0)

            def start(self):
                self.env.process(self.run())

        def start(env):
            env.process(ticker(env))
    """)


def test_rep101_negative_unresolvable_call_is_trusted():
    # A call into another module may well return a generator; only
    # same-module resolution is judged.
    assert_clean("REP101", """
        def start(env, machinery):
            env.process(machinery.run())
    """)


# -- REP102: processes yield events only ------------------------------------


def test_rep102_positive_constant_yield():
    assert_triggers("REP102", """
        def proc(env):
            yield env.timeout(1.0)
            yield 5
    """, line=4)


def test_rep102_positive_bare_yield():
    assert_triggers("REP102", """
        def proc(env):
            yield env.timeout(1.0)
            yield
    """, line=4)


def test_rep102_negative_event_yields():
    assert_clean("REP102", """
        def proc(env, other):
            yield env.timeout(1.0)
            yield env.event()
            yield env.all_of([other])
            result = yield env.any_of([other])
            return result
    """)


def test_rep102_negative_data_generator_left_alone():
    # A trace-replay generator yields data, not events; it is not a DES
    # process (never passed to env.process, no event-factory yields).
    assert_clean("REP102", """
        def arrival_times(rng, n):
            for _ in range(n):
                yield rng.expovariate(1.0)
    """)


# -- REP103: no blocking sleep ----------------------------------------------


def test_rep103_positive_sleep_in_sim():
    assert_triggers("REP103", """
        import time

        def proc(env):
            yield env.timeout(1.0)
            time.sleep(0.5)
    """, line=6)


def test_rep103_negative_outside_sim_packages():
    assert_clean("REP103", """
        import time

        def backoff():
            time.sleep(0.5)
    """, path=TOOL_PATH)


# -- REP201: pool callables must be picklable -------------------------------


def test_rep201_positive_lambda_dispatch():
    assert_triggers("REP201", """
        def sweep(runner, configs):
            return runner.run_many(lambda c: c * 2, configs)
    """, path=PLAIN_PATH, line=3)


def test_rep201_positive_nested_function_dispatch():
    assert_triggers("REP201", """
        def sweep(runner, configs):
            def worker(config):
                return config * 2
            return runner.run_many(worker, configs)
    """, path=PLAIN_PATH, line=5)


def test_rep201_negative_module_level_worker():
    assert_clean("REP201", """
        def worker(config):
            return config * 2

        def sweep(runner, configs):
            return runner.run_many(worker, configs)
    """, path=PLAIN_PATH)


# -- REP202: no module-global rebinding -------------------------------------


def test_rep202_positive_global_rebinding():
    assert_triggers("REP202", """
        _CACHE = {}
        _COUNT = 0

        def record(x):
            global _COUNT
            _COUNT += 1
    """, line=6)


def test_rep202_negative_read_only_global():
    assert_clean("REP202", """
        _LIMIT = 10

        def check(x):
            return x < _LIMIT
    """)


def test_rep202_negative_outside_sim_and_engine():
    assert_clean("REP202", """
        _COUNT = 0

        def record():
            global _COUNT
            _COUNT += 1
    """, path=TOOL_PATH)


# -- REP204: SharedMemory lifecycle confinement ------------------------------


def test_rep204_positive_bare_construction():
    assert_triggers("REP204", """
        from multiprocessing.shared_memory import SharedMemory

        def stash(buf):
            seg = SharedMemory(create=True, size=len(buf))
            seg.buf[:len(buf)] = buf
            return seg.name
    """, path=PLAIN_PATH, line=5)


def test_rep204_positive_dotted_construction():
    assert_triggers("REP204", """
        import multiprocessing.shared_memory

        def stash(buf):
            seg = multiprocessing.shared_memory.SharedMemory(
                create=True, size=len(buf)
            )
            return seg.name
    """, path=PLAIN_PATH, line=5)


def test_rep204_positive_close_without_unlink():
    # close() alone leaks the segment in /dev/shm; both calls are required.
    assert_triggers("REP204", """
        from multiprocessing.shared_memory import SharedMemory

        def peek(name):
            seg = None
            try:
                seg = SharedMemory(name=name)
                return bytes(seg.buf[:8])
            finally:
                if seg is not None:
                    seg.close()
    """, path=PLAIN_PATH, line=7)


def test_rep204_negative_guarded_construction():
    assert_clean("REP204", """
        from multiprocessing.shared_memory import SharedMemory

        def roundtrip(buf):
            seg = SharedMemory(create=True, size=len(buf))
            try:
                seg.buf[:len(buf)] = buf
                return bytes(seg.buf[:len(buf)])
            finally:
                seg.close()
                seg.unlink()
    """, path=PLAIN_PATH)


def test_rep204_negative_transport_module_exempt():
    assert_clean("REP204", """
        from multiprocessing.shared_memory import SharedMemory

        def _create_segment(name, size):
            return SharedMemory(name=name, create=True, size=size)
    """, path="src/repro/runtime/shm.py")


def test_rep204_negative_unrelated_call():
    assert_clean("REP204", """
        class SharedState:
            pass

        def build():
            return SharedState()
    """, path=PLAIN_PATH)


# -- REP301: no float clock equality ----------------------------------------


def test_rep301_positive_env_now_equality():
    assert_triggers("REP301", """
        def fired(env, deadline):
            return env.now == deadline
    """, line=3)


def test_rep301_positive_time_named_operand():
    assert_triggers("REP301", """
        def same_slot(start_time, end_time):
            if start_time != end_time:
                return False
            return True
    """, line=3)


def test_rep301_negative_ordering_comparisons():
    assert_clean("REP301", """
        def overdue(env, deadline):
            return env.now >= deadline
    """)


def test_rep301_negative_assert_exemption():
    # Tests pinning an exact engine timestamp state intent; asserts are
    # exempt.
    assert_clean("REP301", """
        def check(env):
            assert env.now == 100.0
    """)


# -- REP302: no bare except in engine code ----------------------------------


def test_rep302_positive_bare_except():
    assert_triggers("REP302", """
        def step(queue):
            try:
                return queue.pop()
            except:
                return None
    """, path=ENGINE_PATH, line=5)


def test_rep302_negative_typed_except():
    assert_clean("REP302", """
        def step(queue):
            try:
                return queue.pop()
            except IndexError:
                return None
    """, path=ENGINE_PATH)


def test_rep302_negative_outside_engine_packages():
    assert_clean("REP302", """
        def step(queue):
            try:
                return queue.pop()
            except:
                return None
    """, path=TOOL_PATH)


# -- REP303: no print() in library code --------------------------------------


def test_rep303_positive_print_in_library_module():
    assert_triggers("REP303", """
        def report(stats):
            print(f"admitted {stats.admitted}")
    """, path=PLAIN_PATH, line=3)


def test_rep303_positive_print_in_sim_package():
    assert_triggers("REP303", """
        def on_handoff(outcome, now):
            print("handoff", outcome.portable_id, now)
    """, path=SIM_PATH, line=3)


def test_rep303_negative_cli_module_exempt():
    assert_clean("REP303", """
        def report(stats):
            print(f"admitted {stats.admitted}")
    """, path="src/repro/lint/cli.py")


def test_rep303_negative_main_module_exempt():
    assert_clean("REP303", """
        def report(stats):
            print(f"admitted {stats.admitted}")
    """, path="src/repro/__main__.py")


def test_rep303_negative_entry_point_function_exempt():
    assert_clean("REP303", """
        def main():
            print("hello from the CLI")
    """, path=PLAIN_PATH)


def test_rep303_negative_name_main_block_exempt():
    assert_clean("REP303", """
        if __name__ == "__main__":
            print("ad-hoc driver output")
    """, path=PLAIN_PATH)


def test_rep303_negative_outside_repro_package():
    assert_clean("REP303", """
        def report():
            print("tool output")
    """, path=TOOL_PATH)


def test_rep303_negative_shadowed_print_is_still_flagged_only_for_builtin():
    # A local helper named differently does not trip the rule.
    assert_clean("REP303", """
        def report(emit):
            emit("admitted")
    """, path=PLAIN_PATH)


# -- REP305: no direct import of the compiled DES core ----------------------


def test_rep305_positive_absolute_import():
    assert_triggers("REP305", """
        import repro.des._speedups
    """, path=PLAIN_PATH, line=2)


def test_rep305_positive_from_module_import():
    assert_triggers("REP305", """
        from repro.des._speedups import bind

        def fast(env):
            return bind(env)
    """, path=PLAIN_PATH, line=2)


def test_rep305_positive_relative_from_import():
    assert_triggers("REP305", """
        from ..des import _speedups
    """, path=PLAIN_PATH, line=2)


def test_rep305_negative_selection_seam_is_exempt():
    # repro/des/ owns the seam: native.py and engine.py may touch it.
    assert_clean("REP305", """
        from . import _speedups
    """, path=ENGINE_PATH)


def test_rep305_negative_tests_and_tools_are_exempt():
    source = """
        from repro.des import _speedups
    """
    assert_clean("REP305", source, path="tests/des/test_native_core.py")
    assert_clean("REP305", source, path=TOOL_PATH)


def test_rep305_negative_make_environment_is_the_blessed_path():
    assert_clean("REP305", """
        from repro.des import make_environment

        def build():
            return make_environment()
    """, path=PLAIN_PATH)


# -- REP304: no wall-clock durations in engine/obs code ---------------------


RUNTIME_PATH = "src/repro/runtime/fixture_module.py"
OBS_PATH = "src/repro/obs/fixture_module.py"


def test_rep304_positive_direct_subtraction():
    assert_triggers("REP304", """
        import time

        def elapsed(start):
            return time.time() - start
    """, path=RUNTIME_PATH, line=5)


def test_rep304_positive_tracked_stamp_name():
    assert_triggers("REP304", """
        import time

        def age(doc):
            now = time.time()
            return now - doc["updated_at"]
    """, path=OBS_PATH, line=6)


def test_rep304_positive_comparison_with_deadline():
    assert_triggers("REP304", """
        import time

        def expired(deadline):
            return time.time() > deadline
    """, path=RUNTIME_PATH, line=5)


def test_rep304_positive_datetime_now():
    assert_triggers("REP304", """
        import datetime

        def spent(started):
            return datetime.datetime.now() - started
    """, path=RUNTIME_PATH, line=5)


def test_rep304_negative_monotonic_duration():
    assert_clean("REP304", """
        import time

        def elapsed(start):
            return time.monotonic() - start
    """, path=RUNTIME_PATH)
    assert_clean("REP304", """
        import time

        def elapsed(start):
            return time.perf_counter() - start
    """, path=RUNTIME_PATH)


def test_rep304_negative_stamping_without_arithmetic():
    assert_clean("REP304", """
        import time

        def heartbeat(doc):
            doc["updated_at"] = time.time()
            return doc
    """, path=RUNTIME_PATH)


def test_rep304_negative_reassigned_name_not_tracked():
    assert_clean("REP304", """
        import time

        def elapsed(flag):
            now = time.time()
            if flag:
                now = 0.0
            return now - 1.0
    """, path=RUNTIME_PATH)


def test_rep304_negative_sim_package_is_rep003_territory():
    source = """
        import time

        def elapsed(start):
            return time.time() - start
    """
    assert_clean("REP304", source, path=SIM_PATH)
    assert_triggers("REP003", source, path=SIM_PATH)


def test_rep304_negative_outside_engine_and_obs():
    assert_clean("REP304", """
        import time

        def elapsed(start):
            return time.time() - start
    """, path=PLAIN_PATH)


# -- cross-cutting ----------------------------------------------------------


ALL_RULE_IDS = [
    "REP001", "REP002", "REP003", "REP004", "REP005",
    "REP101", "REP102", "REP103",
    "REP201", "REP202", "REP204",
    "REP301", "REP302", "REP303", "REP304", "REP305",
    "REP401", "REP402", "REP403", "REP404",
]


def test_rule_catalogue_is_complete():
    assert [r.id for r in all_rules()] == ALL_RULE_IDS


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_every_rule_has_name_and_summary(rule_id):
    from repro.lint import get_rule

    rule = get_rule(rule_id)
    assert rule.name
    assert len(rule.summary) > 20


def test_suppression_comment_silences_one_rule():
    source = """
        import random

        def jitter():
            return random.random()  # repro-lint: ignore[REP001]
    """
    assert_clean("REP001", source)


def test_suppression_comment_is_rule_specific():
    source = """
        import time

        def stamp():
            return time.time()  # repro-lint: ignore[REP001]
    """
    assert_triggers("REP003", source)


def test_bare_suppression_silences_everything():
    source = """
        import time

        def stamp():
            return time.time()  # repro-lint: ignore
    """
    assert_clean("REP003", source)
