"""CLI contract tests: exit codes, JSON schema stability, baseline flow.

The exit codes (0 clean / 1 findings / 2 usage error) and the
``--format=json`` shape are consumed by CI; these tests are the contract.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

CLEAN_MODULE = """\
def double(x):
    return 2 * x
"""

# Inside src/repro/sim/ this module violates REP001 (global RNG) and
# REP003 (wall clock).
DIRTY_MODULE = """\
import random
import time


def jitter():
    return random.random() + time.time()
"""


def run_lint(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


@pytest.fixture
def tree(tmp_path):
    """A minimal fake checkout: src/repro/sim/ with one module."""
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "module.py").write_text(CLEAN_MODULE)
    return tmp_path


def dirty(tree):
    (tree / "src" / "repro" / "sim" / "module.py").write_text(DIRTY_MODULE)
    return tree


# -- exit codes -------------------------------------------------------------


def test_exit_0_on_clean_tree(tree):
    proc = run_lint(["src"], cwd=tree)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_exit_1_on_findings(tree):
    proc = run_lint(["src"], cwd=dirty(tree))
    assert proc.returncode == 1
    assert "REP001" in proc.stdout
    assert "REP003" in proc.stdout


def test_exit_1_on_syntax_error(tree):
    (tree / "src" / "repro" / "sim" / "broken.py").write_text("def oops(:\n")
    proc = run_lint(["src"], cwd=tree)
    assert proc.returncode == 1
    assert "syntax error" in proc.stdout


def test_exit_2_on_unknown_rule(tree):
    proc = run_lint(["--select", "REP999", "src"], cwd=tree)
    assert proc.returncode == 2
    assert "unknown rule id" in proc.stderr


def test_exit_2_on_missing_path(tree):
    proc = run_lint(["no/such/dir"], cwd=tree)
    assert proc.returncode == 2
    assert "no such file or directory" in proc.stderr


def test_exit_2_on_bad_flag(tree):
    # argparse handles unknown flags/choices with its own exit code 2.
    proc = run_lint(["--format", "xml", "src"], cwd=tree)
    assert proc.returncode == 2


def test_exit_2_on_missing_explicit_baseline(tree):
    proc = run_lint(["--baseline", "nope.json", "src"], cwd=tree)
    assert proc.returncode == 2
    assert "baseline file not found" in proc.stderr


# -- select / ignore --------------------------------------------------------


def test_select_narrows_to_one_rule(tree):
    proc = run_lint(["--select", "REP003", "src"], cwd=dirty(tree))
    assert proc.returncode == 1
    assert "REP003" in proc.stdout
    assert "REP001" not in proc.stdout


def test_ignore_drops_rules(tree):
    proc = run_lint(
        ["--ignore", "REP001,REP003", "src"], cwd=dirty(tree)
    )
    assert proc.returncode == 0, proc.stdout


# -- JSON format ------------------------------------------------------------


def test_json_schema_is_stable(tree):
    proc = run_lint(["--format", "json", "src"], cwd=dirty(tree))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert sorted(payload) == [
        "baselined", "counts", "errors", "files_checked", "findings",
        "suppressed", "version",
    ]
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["counts"] == {"REP001": 1, "REP003": 1}
    for finding in payload["findings"]:
        assert sorted(finding) == ["col", "line", "message", "path", "rule"]
        assert isinstance(finding["line"], int)
        assert isinstance(finding["col"], int)
    # Paths are repo-relative with forward slashes on every platform.
    assert payload["findings"][0]["path"] == "src/repro/sim/module.py"


def test_json_clean_tree(tree):
    proc = run_lint(["--format", "json", "src"], cwd=tree)
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    assert payload["findings"] == []
    assert payload["counts"] == {}


# -- SARIF format -----------------------------------------------------------


def test_sarif_output_shape(tree):
    proc = run_lint(["--format", "sarif", "src"], cwd=dirty(tree))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    catalogue = [rule["id"] for rule in driver["rules"]]
    assert "REP001" in catalogue and "REP401" in catalogue

    assert {r["ruleId"] for r in run["results"]} == {"REP001", "REP003"}
    for result in run["results"]:
        # ruleIndex must point back at the catalogue entry for ruleId.
        assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == (
            "src/repro/sim/module.py"
        )
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert location["region"]["startLine"] >= 1


def test_sarif_clean_tree_has_no_results(tree):
    proc = run_lint(["--format", "sarif", "src"], cwd=tree)
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    assert payload["runs"][0]["results"] == []


# -- jobs / cache flags ------------------------------------------------------


def test_jobs_flag_output_matches_serial(tree):
    dirty(tree)
    serial = run_lint(["--format", "json", "src"], cwd=tree)
    for flag in ("2", "auto"):
        parallel = run_lint(
            ["--jobs", flag, "--format", "json", "src"], cwd=tree
        )
        assert parallel.stdout == serial.stdout
        assert parallel.returncode == serial.returncode


def test_jobs_zero_is_usage_error(tree):
    proc = run_lint(["--jobs", "0", "src"], cwd=tree)
    assert proc.returncode == 2
    assert "--jobs" in proc.stderr


def test_cache_flag_creates_dir_and_reuses_it(tree):
    dirty(tree)
    cold = run_lint(["--cache", "--format", "json", "src"], cwd=tree)
    assert (tree / ".lint-cache" / "v1").is_dir()
    warm = run_lint(["--cache", "--format", "json", "src"], cwd=tree)
    assert warm.stdout == cold.stdout
    assert warm.returncode == cold.returncode == 1


def test_cache_dir_flag_implies_cache(tree):
    run_lint(["--cache-dir", "elsewhere", "src"], cwd=tree)
    assert (tree / "elsewhere" / "v1").is_dir()


# -- baseline workflow ------------------------------------------------------


def test_write_baseline_then_clean_run(tree):
    dirty(tree)
    wrote = run_lint(["--write-baseline", "src"], cwd=tree)
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr

    baseline = json.loads((tree / "lint-baseline.json").read_text())
    assert baseline["version"] == 1
    assert len(baseline["entries"]) == 2
    assert {e["rule"] for e in baseline["entries"]} == {"REP001", "REP003"}

    # With the baseline in place the same tree is clean...
    proc = run_lint(["src"], cwd=tree)
    assert proc.returncode == 0, proc.stdout
    assert "2 baselined" in proc.stdout

    # ...but a new violation still fails.
    (tree / "src" / "repro" / "sim" / "fresh.py").write_text(
        "import random\n\n\ndef f():\n    return random.random()\n"
    )
    proc = run_lint(["src"], cwd=tree)
    assert proc.returncode == 1
    assert "fresh.py" in proc.stdout


def test_baseline_entry_retired_by_fixing_the_line(tree):
    dirty(tree)
    run_lint(["--write-baseline", "src"], cwd=tree)
    # Fix the file: baseline entries no longer match and are reported stale.
    (tree / "src" / "repro" / "sim" / "module.py").write_text(CLEAN_MODULE)
    proc = run_lint(["src"], cwd=tree)
    assert proc.returncode == 0
    assert "stale baseline entry" in proc.stdout


def test_no_baseline_flag_bypasses_it(tree):
    dirty(tree)
    run_lint(["--write-baseline", "src"], cwd=tree)
    proc = run_lint(["--no-baseline", "src"], cwd=tree)
    assert proc.returncode == 1


def test_baseline_counts_identical_lines(tree):
    # Two byte-identical violating lines collide on (rule, path, code);
    # the baseline must track the multiplicity, not just the key.
    (tree / "src" / "repro" / "sim" / "module.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def first():\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def second():\n"
        "    return time.time()\n"
    )
    wrote = run_lint(["--write-baseline", "src"], cwd=tree)
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr
    baseline = json.loads((tree / "lint-baseline.json").read_text())
    assert len(baseline["entries"]) == 2

    # Both occurrences are grandfathered...
    proc = run_lint(["src"], cwd=tree)
    assert proc.returncode == 0, proc.stdout
    assert "2 baselined" in proc.stdout

    # ...fixing one consumes one unit of budget and reports the freed
    # unit as stale, instead of silently keeping a spare match around.
    (tree / "src" / "repro" / "sim" / "module.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def first():\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def second():\n"
        "    return 0.0\n"
    )
    proc = run_lint(["src"], cwd=tree)
    assert proc.returncode == 0, proc.stdout
    assert "1 baselined" in proc.stdout
    assert "stale baseline entry" in proc.stdout


def test_corrupt_baseline_is_usage_error(tree):
    (tree / "lint-baseline.json").write_text("{not json")
    proc = run_lint(["--baseline", "lint-baseline.json", "src"], cwd=tree)
    assert proc.returncode == 2
    assert "invalid JSON" in proc.stderr


# -- misc -------------------------------------------------------------------


def test_list_rules(tree):
    proc = run_lint(["--list-rules"], cwd=tree)
    assert proc.returncode == 0
    for rule_id in ("REP001", "REP004", "REP101", "REP201", "REP302"):
        assert rule_id in proc.stdout


def test_pyproject_config_is_honoured(tree):
    # Narrow sim-packages so the dirty module falls outside them: REP003
    # (sim-scoped) disappears, REP001 (global) stays.
    (tree / "pyproject.toml").write_text(
        '[tool.repro-lint]\nsim-packages = ["repro/other"]\n'
    )
    proc = run_lint(["src"], cwd=dirty(tree))
    assert proc.returncode == 1
    assert "REP001" in proc.stdout
    assert "REP003" not in proc.stdout


def test_unknown_pyproject_key_is_usage_error(tree):
    (tree / "pyproject.toml").write_text(
        "[tool.repro-lint]\ntypo-key = true\n"
    )
    proc = run_lint(["src"], cwd=tree)
    assert proc.returncode == 2
    assert "unknown keys" in proc.stderr
