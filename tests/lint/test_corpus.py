"""Repo-corpus and regression tests for the whole-program engine.

Three contracts live here:

* the repository's own sources lint clean under the full rule set (with
  the checked-in baseline), and the output is byte-identical across
  serial, ``--jobs auto``, warm-cache, and different ``PYTHONHASHSEED``
  values — the determinism promise CI relies on;
* the REP403/REP404 findings this engine surfaced in ``src/`` stay fixed:
  undoing either fix (stripping the ownership docstrings in ``shm.py``,
  dropping the justified suppression in ``connection.py``) brings the
  finding back;
* the incremental cache and SARIF output work end-to-end through the CLI.
"""

import json
import os
import pathlib
import re
import subprocess
import sys

import pytest

from repro.lint.config import LintConfig
from repro.lint.runner import lint_paths

REPO = pathlib.Path(__file__).resolve().parents[2]
_SRC = str(REPO / "src")

CONFIG = LintConfig(baseline=None)


def run_lint(args, cwd, hashseed="1"):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


# -- the repository is its own corpus ----------------------------------------


def test_repo_corpus_is_clean_and_mode_independent(tmp_path):
    """One full-repo lint per execution mode; all byte-identical, all clean.

    The four runs cover the whole determinism matrix: cold cache, warm
    cache, ``--jobs auto``, and a different hash seed.  ``findings`` must
    be empty — anything new in ``src/`` either gets fixed or explicitly
    baselined, never silently accumulated.
    """
    cache_dir = str(tmp_path / "cache")
    base = ["--format", "json", "src", "tests"]

    cold = run_lint(["--cache-dir", cache_dir, *base], cwd=REPO)
    assert cold.returncode == 0, cold.stdout + cold.stderr
    payload = json.loads(cold.stdout)
    assert payload["findings"] == []
    assert payload["baselined"] == 1  # the floorplan.py REP004 exception

    warm = run_lint(["--cache-dir", cache_dir, *base], cwd=REPO)
    jobs = run_lint(["--jobs", "auto", *base], cwd=REPO)
    reseeded = run_lint(base, cwd=REPO, hashseed="7")

    assert warm.stdout == cold.stdout
    assert jobs.stdout == cold.stdout
    assert reseeded.stdout == cold.stdout
    for proc in (warm, jobs, reseeded):
        assert proc.returncode == 0


# -- the real findings stay fixed --------------------------------------------

_OWNER_WORDS = re.compile(r"own(?:er|ership)?|lifecycle|transfer",
                          re.IGNORECASE)


def _lint_tree(root):
    cwd = os.getcwd()
    os.chdir(root)
    try:
        return lint_paths(["src"], config=CONFIG)
    finally:
        os.chdir(cwd)


def test_shm_ownership_docstrings_keep_rep403_quiet(tmp_path):
    """shm.py's segment helpers document the lifecycle hand-off; REP403
    found them before the docstrings said so.  Strip the ownership words
    and the findings come back — the docstrings are load-bearing."""
    real = (REPO / "src/repro/runtime/shm.py").read_text()
    target = tmp_path / "src" / "repro" / "runtime" / "shm.py"
    target.parent.mkdir(parents=True)

    target.write_text(real)
    intact = _lint_tree(tmp_path)
    assert [f for f in intact.findings if f.rule == "REP403"] == []

    mutated = _OWNER_WORDS.sub("handled", real)
    assert mutated != real  # the words must exist to be load-bearing
    target.write_text(mutated)
    regressed = _lint_tree(tmp_path)
    assert [f for f in regressed.findings if f.rule == "REP403"]


def test_shm_regression_is_hashseed_independent(tmp_path):
    """The REP403 regression reproduces identically under different
    PYTHONHASHSEED values — subprocess-level, like CI runs it."""
    real = (REPO / "src/repro/runtime/shm.py").read_text()
    target = tmp_path / "src" / "repro" / "runtime" / "shm.py"
    target.parent.mkdir(parents=True)
    target.write_text(_OWNER_WORDS.sub("handled", real))

    first = run_lint(["--no-baseline", "src"], cwd=tmp_path, hashseed="1")
    second = run_lint(["--no-baseline", "src"], cwd=tmp_path, hashseed="2")
    assert first.returncode == 1
    assert "REP403" in first.stdout
    assert second.stdout == first.stdout
    assert second.returncode == first.returncode


def test_connection_reset_suppression_is_load_bearing(tmp_path):
    """reset_conn_ids mutates module state by design (documented, and
    suppressed with a justification); removing the suppression brings the
    REP404 finding back."""
    for rel in ("src/repro/runtime/runner.py", "src/repro/traffic/connection.py"):
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text((REPO / rel).read_text())

    intact = _lint_tree(tmp_path)
    assert [f for f in intact.findings if f.rule == "REP404"] == []

    conn = tmp_path / "src/repro/traffic/connection.py"
    stripped = conn.read_text().replace("  # repro-lint: ignore[REP404]", "")
    assert "ignore[REP404]" not in stripped
    conn.write_text(stripped)
    regressed = _lint_tree(tmp_path)
    rep404 = [f for f in regressed.findings if f.rule == "REP404"]
    assert len(rep404) == 1
    assert "reset_conn_ids" in rep404[0].message


# -- fixture-tree CLI matrix (fast: ~10 files) -------------------------------

FIXTURE = {
    "src/repro/core/rngsrc.py": (
        "import random\n\n\ndef make_rng(seed):\n"
        "    return random.Random(seed)\n"
    ),
    "src/repro/core/groups.py": (
        "def active_ids(rows):\n    return set(rows)\n"
    ),
    "src/repro/sim/setup.py": (
        "from ..core.rngsrc import make_rng\n\nSHARED = make_rng(7)\n"
    ),
    "src/repro/sim/decide.py": (
        "from ..core.groups import active_ids\n\n\ndef admit(rows):\n"
        "    return [r for r in active_ids(rows)]\n"
    ),
}


@pytest.fixture
def fixture_tree(tmp_path):
    for rel, source in FIXTURE.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def test_cli_mode_matrix_on_fixture(fixture_tree):
    base = ["--format", "json", "src"]
    cache_dir = str(fixture_tree / ".lint-cache")

    serial = run_lint(base, cwd=fixture_tree)
    assert serial.returncode == 1
    payload = json.loads(serial.stdout)
    assert payload["counts"] == {"REP401": 1, "REP402": 1}

    variants = [
        run_lint(["--jobs", "2", *base], cwd=fixture_tree),
        run_lint(["--cache-dir", cache_dir, *base], cwd=fixture_tree),
        run_lint(["--cache-dir", cache_dir, *base], cwd=fixture_tree),
        run_lint(base, cwd=fixture_tree, hashseed="42"),
    ]
    for proc in variants:
        assert proc.returncode == 1
        assert proc.stdout == serial.stdout


def test_cache_dir_is_never_linted(fixture_tree):
    cache_dir = str(fixture_tree / ".lint-cache")
    run_lint(["--cache-dir", cache_dir, "--format", "json", "src"],
             cwd=fixture_tree)
    # The cache lives under the linted root in real checkouts; discovery
    # must skip it or warm runs would lint their own cache entries.
    proc = run_lint(["--format", "json", "."], cwd=fixture_tree)
    payload = json.loads(proc.stdout)
    assert payload["files_checked"] == len(FIXTURE)
