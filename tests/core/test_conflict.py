"""Tests for the centralized conflict resolver."""

import pytest

from repro.core import ConflictResolver, QoSBounds, QoSRequest
from repro.network import line_topology
from repro.network.routing import shortest_path
from repro.traffic import Connection, FlowSpec


def admit(topo, src, dst, b_min, b_max, cid):
    qos = QoSRequest(
        flowspec=FlowSpec(sigma=1.0, rho=b_min),
        bounds=QoSBounds(b_min, b_max),
    )
    conn = Connection(src=src, dst=dst, qos=qos, conn_id=cid)
    route = shortest_path(topo, src, dst)
    conn.activate(route, b_min, 0.0)
    for link in topo.path_links(route):
        link.admit(cid, b_min)
    return conn


def test_static_connections_share_excess():
    topo = line_topology(2, capacity=100.0)
    resolver = ConflictResolver(topo)
    c1 = admit(topo, "s0", "s1", 10.0, 1000.0, "c1")
    c2 = admit(topo, "s0", "s1", 10.0, 1000.0, "c2")
    resolver.track(c1, static_portable=True)
    resolver.track(c2, static_portable=True)
    shares = resolver.resolve()
    assert shares["c1"] == pytest.approx(40.0)
    assert shares["c2"] == pytest.approx(40.0)
    assert c1.rate == pytest.approx(50.0)


def test_mobile_connections_get_no_excess():
    topo = line_topology(2, capacity=100.0)
    resolver = ConflictResolver(topo)
    static = admit(topo, "s0", "s1", 10.0, 1000.0, "static")
    mobile = admit(topo, "s0", "s1", 10.0, 1000.0, "mobile")
    resolver.track(static, static_portable=True)
    resolver.track(mobile, static_portable=False)
    shares = resolver.resolve()
    assert shares["mobile"] == 0.0
    assert static.rate == pytest.approx(90.0)
    assert mobile.rate == pytest.approx(10.0)


def test_rate_clamped_at_b_max():
    topo = line_topology(2, capacity=1000.0)
    resolver = ConflictResolver(topo)
    conn = admit(topo, "s0", "s1", 10.0, 60.0, "c")
    resolver.track(conn, static_portable=True)
    resolver.resolve()
    assert conn.rate == 60.0


def test_set_static_flips_demand():
    topo = line_topology(2, capacity=100.0)
    resolver = ConflictResolver(topo)
    conn = admit(topo, "s0", "s1", 10.0, 1000.0, "c")
    resolver.track(conn, static_portable=False)
    resolver.resolve()
    assert conn.rate == 10.0
    resolver.set_static("c", True)
    resolver.resolve()
    assert conn.rate == pytest.approx(100.0)


def test_newcomer_squeezes_excess_but_not_floors():
    """Conflict case (b): the new floor fits because excess is reclaimable."""
    topo = line_topology(2, capacity=100.0)
    resolver = ConflictResolver(topo)
    resident = admit(topo, "s0", "s1", 10.0, 1000.0, "resident")
    resolver.track(resident, static_portable=True)
    resolver.resolve()
    assert resident.rate == pytest.approx(100.0)  # using everything

    link = topo.link("s0", "s1")
    route_keys = [link.key]
    assert resolver.squeeze_for(route_keys, b_min=50.0)
    newcomer = admit(topo, "s0", "s1", 50.0, 50.0, "newcomer")
    resolver.track(newcomer, static_portable=False)
    resolver.resolve()
    assert resident.rate == pytest.approx(50.0)  # squeezed, floor intact
    assert resident.rate >= resident.b_min
    # But a floor beyond the remaining headroom does not fit.
    assert not resolver.squeeze_for(route_keys, b_min=45.0)


def test_untrack_returns_capacity():
    topo = line_topology(2, capacity=100.0)
    resolver = ConflictResolver(topo)
    c1 = admit(topo, "s0", "s1", 10.0, 1000.0, "c1")
    c2 = admit(topo, "s0", "s1", 10.0, 1000.0, "c2")
    resolver.track(c1, True)
    resolver.track(c2, True)
    resolver.resolve()
    topo.link("s0", "s1").release("c2")
    resolver.untrack("c2")
    resolver.resolve()
    assert c1.rate == pytest.approx(100.0)


def test_track_requires_route():
    topo = line_topology(2)
    resolver = ConflictResolver(topo)
    conn = Connection(
        src="s0",
        dst="s1",
        qos=QoSRequest(
            flowspec=FlowSpec(sigma=1.0, rho=10.0), bounds=QoSBounds(10.0, 20.0)
        ),
    )
    with pytest.raises(ValueError):
        resolver.track(conn, True)


def test_best_effort_connections_ignored():
    topo = line_topology(2, capacity=100.0)
    resolver = ConflictResolver(topo)
    conn = Connection(
        src="s0",
        dst="s1",
        qos=QoSRequest(flowspec=FlowSpec(sigma=1.0, rho=5.0), bounds=None),
    )
    conn.activate(["s0", "s1"], 0.0, 0.0)
    resolver.track(conn, True)
    shares = resolver.resolve()
    assert conn.conn_id not in shares
