"""Tests for static/mobile classification (T_th)."""

import pytest

from repro.core import PortableState, StaticMobileClassifier


def test_threshold_validation():
    with pytest.raises(ValueError):
        StaticMobileClassifier(threshold=0.0)


def test_new_portable_is_mobile():
    clf = StaticMobileClassifier(threshold=100.0)
    assert clf.observe("p", "A", now=0.0) is PortableState.MOBILE
    assert clf.classify("p", 50.0) is PortableState.MOBILE


def test_becomes_static_after_threshold():
    clf = StaticMobileClassifier(threshold=100.0)
    clf.observe("p", "A", now=0.0)
    assert clf.classify("p", 99.9) is PortableState.MOBILE
    assert clf.classify("p", 100.0) is PortableState.STATIC
    assert clf.is_static("p", 200.0)


def test_cell_change_resets_clock():
    clf = StaticMobileClassifier(threshold=100.0)
    clf.observe("p", "A", now=0.0)
    assert clf.classify("p", 150.0) is PortableState.STATIC
    clf.observe("p", "B", now=150.0)
    assert clf.classify("p", 200.0) is PortableState.MOBILE
    assert clf.classify("p", 250.0) is PortableState.STATIC


def test_unknown_portable_is_mobile():
    clf = StaticMobileClassifier(threshold=10.0)
    assert clf.classify("ghost", 1000.0) is PortableState.MOBILE


def test_on_static_fires_once_per_residence():
    events = []
    clf = StaticMobileClassifier(
        threshold=10.0, on_static=lambda pid, now: events.append((pid, now))
    )
    clf.observe("p", "A", 0.0)
    clf.classify("p", 15.0)
    clf.classify("p", 20.0)
    assert events == [("p", 15.0)]
    clf.observe("p", "B", 25.0)
    clf.classify("p", 40.0)
    assert events == [("p", 15.0), ("p", 40.0)]


def test_on_mobile_fires_on_cell_change_only():
    events = []
    clf = StaticMobileClassifier(
        threshold=10.0, on_mobile=lambda pid, now: events.append((pid, now))
    )
    clf.observe("p", "A", 0.0)  # first sighting: no move event
    clf.observe("p", "A", 5.0)  # same cell: no event
    clf.observe("p", "B", 8.0)
    assert events == [("p", 8.0)]


def test_residence_and_forget():
    clf = StaticMobileClassifier(threshold=10.0)
    clf.observe("p", "A", 3.0)
    assert clf.residence("p") == ("A", 3.0)
    clf.forget("p")
    assert clf.residence("p") is None


def test_static_portables_listing():
    clf = StaticMobileClassifier(threshold=10.0)
    clf.observe("a", "A", 0.0)
    clf.observe("b", "B", 5.0)
    assert clf.static_portables(12.0) == ["a"]
    assert set(clf.static_portables(20.0)) == {"a", "b"}
