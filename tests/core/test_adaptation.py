"""Tests for the distributed ADVERTISE/UPDATE adaptation protocol.

The central claims verified here are Theorem 1's: the event-driven protocol
converges to the max-min optimal allocation for arbitrary topologies,
demands, and event orderings, and the refinement does not change the fixed
point while sending fewer messages.
"""

import random

import pytest

from repro.core import AdaptationProtocol, QoSBounds, QoSRequest
from repro.core.adaptation import compute_advertised_rate
from repro.network import line_topology, star_topology
from repro.network.routing import shortest_path
from repro.traffic import Connection, FlowSpec


def make_conn(topo, src, dst, b_min, b_max, cid):
    qos = QoSRequest(
        flowspec=FlowSpec(sigma=1.0, rho=b_min),
        bounds=QoSBounds(b_min, b_max),
    )
    conn = Connection(src=src, dst=dst, qos=qos, conn_id=cid)
    conn.activate(shortest_path(topo, src, dst), b_min, 0.0)
    return conn


def converged_rates(protocol):
    return {c: protocol.rate_of(c) for c in protocol.connections}


def assert_matches_reference(protocol, tol=1e-6):
    reference = protocol.reference_allocation()
    for conn_id, excess in reference.items():
        conn = protocol.connections[conn_id]
        assert protocol.rate_of(conn_id) == pytest.approx(
            conn.b_min + excess, abs=tol
        ), f"{conn_id} diverged from max-min"


# -- advertised-rate computation ---------------------------------------------------


def test_advertised_rate_empty_link():
    assert compute_advertised_rate(100.0, {}, 0.0) == 100.0


def test_advertised_rate_equal_split():
    mu = compute_advertised_rate(90.0, {"a": 100.0, "b": 100.0, "c": 100.0}, 0.0)
    assert mu == pytest.approx(30.0)


def test_advertised_rate_restricted_connections_excluded():
    # 'small' is restricted at 5 (bottlenecked elsewhere); the two big
    # connections split the remaining 85.
    mu = compute_advertised_rate(
        90.0, {"small": 5.0, "b1": 80.0, "b2": 80.0}, mu_prev=40.0
    )
    assert mu == pytest.approx((90.0 - 5.0) / 2)


def test_advertised_rate_all_restricted_branch():
    # N == N_R: mu = B - sum(R) + max(R)
    mu = compute_advertised_rate(90.0, {"a": 10.0, "b": 20.0}, mu_prev=50.0)
    assert mu == pytest.approx(90.0 - 30.0 + 20.0)


def test_advertised_rate_second_pass_unmarks():
    # With mu_prev high everything looks restricted; the second pass must
    # unmark the big one and recompute.
    mu = compute_advertised_rate(
        100.0, {"small": 5.0, "big": 95.0}, mu_prev=1000.0
    )
    assert mu == pytest.approx(95.0)


def test_advertised_rate_never_negative():
    assert compute_advertised_rate(-50.0, {"a": 10.0}, 0.0) == 0.0


# -- convergence ------------------------------------------------------------------


def test_single_link_equal_split():
    from repro.des import Environment

    topo = line_topology(2, capacity=100.0)
    env = Environment()
    protocol = AdaptationProtocol(env, topo)
    for i in range(3):
        protocol.register_connection(
            make_conn(topo, "s0", "s1", 10.0, 200.0, f"c{i}")
        )
    env.run()
    assert_matches_reference(protocol, tol=1e-3)
    # 100 - 3*10 floors = 70 excess -> 23.33 each.
    assert protocol.rate_of("c0") == pytest.approx(10.0 + 70.0 / 3, abs=1e-3)


def test_line_network_long_and_short_flows():
    from repro.des import Environment

    topo = line_topology(4, capacity=100.0, prop_delay=0.001)
    env = Environment()
    protocol = AdaptationProtocol(env, topo)
    protocol.register_connection(make_conn(topo, "s0", "s3", 10.0, 1000.0, "long"))
    protocol.register_connection(make_conn(topo, "s0", "s1", 10.0, 1000.0, "h0"))
    protocol.register_connection(make_conn(topo, "s1", "s3", 10.0, 1000.0, "h1"))
    env.run()
    assert_matches_reference(protocol, tol=1e-3)


def test_finite_demands_respected():
    from repro.des import Environment

    topo = line_topology(3, capacity=100.0)
    env = Environment()
    protocol = AdaptationProtocol(env, topo)
    protocol.register_connection(make_conn(topo, "s0", "s2", 10.0, 15.0, "capped"))
    protocol.register_connection(make_conn(topo, "s0", "s2", 10.0, 1000.0, "greedy"))
    env.run()
    assert protocol.rate_of("capped") == pytest.approx(15.0, abs=1e-3)
    assert protocol.rate_of("greedy") == pytest.approx(
        10.0 + (80.0 - 5.0), abs=1e-3
    )
    assert_matches_reference(protocol, tol=1e-3)


def test_capacity_decrease_squeezes_shares():
    from repro.des import Environment

    topo = line_topology(3, capacity=100.0)
    env = Environment()
    protocol = AdaptationProtocol(env, topo)
    protocol.register_connection(make_conn(topo, "s0", "s2", 10.0, 1000.0, "c0"))
    protocol.register_connection(make_conn(topo, "s0", "s2", 10.0, 1000.0, "c1"))
    env.run()
    link = topo.link("s1", "s2")
    link.reserve(60.0)
    protocol.notify_capacity_change(link.key)
    env.run()
    assert_matches_reference(protocol, tol=1e-3)
    assert protocol.rate_of("c0") == pytest.approx(20.0, abs=1e-3)


def test_departure_triggers_upgrade():
    from repro.des import Environment

    topo = line_topology(2, capacity=100.0)
    env = Environment()
    protocol = AdaptationProtocol(env, topo)
    stayer = make_conn(topo, "s0", "s1", 10.0, 1000.0, "stay")
    leaver = make_conn(topo, "s0", "s1", 10.0, 1000.0, "leave")
    protocol.register_connection(stayer)
    protocol.register_connection(leaver)
    env.run()
    assert protocol.rate_of("stay") == pytest.approx(50.0, abs=1e-3)
    protocol.unregister_connection(leaver)
    env.run()
    assert protocol.rate_of("stay") == pytest.approx(100.0, abs=1e-3)


def test_star_cross_traffic():
    from repro.des import Environment

    topo = star_topology(4, capacity=60.0, prop_delay=0.002)
    env = Environment()
    protocol = AdaptationProtocol(env, topo)
    pairs = [("leaf0", "leaf1"), ("leaf0", "leaf2"), ("leaf3", "leaf1")]
    for i, (a, b) in enumerate(pairs):
        protocol.register_connection(make_conn(topo, a, b, 5.0, 1000.0, f"c{i}"))
    env.run()
    assert_matches_reference(protocol, tol=1e-3)


def test_randomized_scenarios_converge():
    from repro.des import Environment

    for seed in range(5):
        rng = random.Random(seed)
        n = rng.randint(3, 6)
        topo = line_topology(n, capacity=rng.choice([100.0, 500.0]))
        env = Environment()
        protocol = AdaptationProtocol(env, topo)
        for i in range(rng.randint(2, 6)):
            a = rng.randrange(n - 1)
            b = rng.randrange(a + 1, n)
            b_max = rng.choice([20.0, 60.0, 1000.0])
            protocol.register_connection(
                make_conn(topo, f"s{a}", f"s{b}", 10.0, b_max, f"c{seed}-{i}")
            )
        env.run()
        assert_matches_reference(protocol, tol=1e-3)


def test_refinement_reduces_messages_same_fixed_point():
    from repro.des import Environment

    def run(use_sets):
        topo = line_topology(5, capacity=200.0, prop_delay=0.001)
        env = Environment()
        protocol = AdaptationProtocol(env, topo, use_bottleneck_sets=use_sets)
        for i in range(4):
            protocol.register_connection(
                make_conn(topo, "s0", "s4", 10.0, 1000.0, f"c{i}")
            )
        env.run()
        link = topo.link("s2", "s3")
        link.reserve(100.0)
        protocol.notify_capacity_change(link.key)
        env.run()
        return protocol

    refined = run(True)
    flooding = run(False)
    for cid in refined.connections:
        assert refined.rate_of(cid) == pytest.approx(
            flooding.rate_of(cid), abs=1e-3
        )
    assert refined.signaling.messages_sent < flooding.signaling.messages_sent


def test_mobile_connections_with_zero_demand_stay_at_floor():
    from repro.des import Environment

    topo = line_topology(2, capacity=100.0)
    env = Environment()
    protocol = AdaptationProtocol(env, topo)
    mobile = make_conn(topo, "s0", "s1", 10.0, 1000.0, "mobile")
    static = make_conn(topo, "s0", "s1", 10.0, 1000.0, "static")
    protocol.register_connection(mobile, demand=0.0)
    protocol.register_connection(static)
    env.run()
    assert protocol.rate_of("mobile") == pytest.approx(10.0, abs=1e-6)
    assert protocol.rate_of("static") == pytest.approx(90.0, abs=1e-3)


def test_register_requires_route():
    from repro.des import Environment

    topo = line_topology(2)
    protocol = AdaptationProtocol(Environment(), topo)
    conn = Connection(
        src="s0",
        dst="s1",
        qos=QoSRequest(
            flowspec=FlowSpec(sigma=1.0, rho=10.0), bounds=QoSBounds(10.0, 20.0)
        ),
    )
    with pytest.raises(ValueError):
        protocol.register_connection(conn)


def test_steady_state_rate_delta_bounded_by_delta_threshold():
    """Theorem 1's second claim: replaying a capacity wiggle smaller than
    delta leaves rates unchanged."""
    from repro.des import Environment

    topo = line_topology(2, capacity=100.0)
    env = Environment()
    protocol = AdaptationProtocol(env, topo, delta=5.0)
    protocol.register_connection(make_conn(topo, "s0", "s1", 10.0, 1000.0, "c"))
    env.run()
    before = protocol.rate_of("c")
    link = topo.link("s0", "s1")
    link.reserve(2.0)  # change smaller than delta
    protocol.notify_capacity_change(link.key)
    env.run()
    assert abs(protocol.rate_of("c") - before) <= 5.0 + 1e-9
