"""Tests for the online cell-type learner (Section 6.4)."""

import random

import pytest

from repro.core import CellTypeLearner
from repro.profiles import CellClass


def test_window_validation():
    with pytest.raises(ValueError):
        CellTypeLearner("c", slot_window=2)


def test_unknown_until_enough_observations():
    learner = CellTypeLearner("c")
    for i in range(5):
        learner.observe_entry(f"u{i}", "hall", now=i * 10.0)
    learner.close_slot()
    assert learner.classify() is CellClass.UNKNOWN


def test_dwell_times_from_entry_exit_pairs():
    learner = CellTypeLearner("c", slot_duration=60.0)
    learner.observe_entry("u", "west", now=0.0)
    learner.observe_exit("u", "east", now=120.0)
    features = learner.features()
    assert features.mean_dwell_slots == pytest.approx(2.0)


def test_transitions_recorded_with_previous_cell():
    learner = CellTypeLearner("c")
    for i in range(10):
        learner.observe_entry(f"u{i}", "west", now=float(i))
        learner.observe_exit(f"u{i}", "east", now=float(i) + 0.5)
        learner.close_slot()
    features = learner.features()
    assert features.directionality == pytest.approx(1.0)


def test_learns_office_from_behavior():
    learner = CellTypeLearner("office?", slot_duration=60.0)
    now = 0.0
    for day in range(20):
        learner.observe_entry("owner", "hall", now)
        learner.observe_exit("owner", "hall", now + 3000.0)
        now += 3600.0
        learner.close_slot()
        for _ in range(10):
            learner.close_slot()  # long quiet stretches between visits
    assert learner.classify() is CellClass.OFFICE


def test_learns_corridor_from_behavior():
    rng = random.Random(2)
    learner = CellTypeLearner("corridor?", slot_duration=60.0)
    now = 0.0
    for i in range(120):
        pid = f"walker-{i}"
        learner.observe_entry(pid, "west", now)
        learner.observe_exit(pid, "east", now + 10.0)
        now += 30.0
        if i % 2 == 0:
            learner.close_slot()
    assert learner.classify() is CellClass.CORRIDOR


def test_learns_meeting_room_from_behavior():
    learner = CellTypeLearner("room?", slot_duration=600.0)
    now = 0.0
    # Two bursts separated by silence.
    for burst_start in (3600.0, 4 * 3600.0):
        for i in range(25):
            learner.observe_entry(f"a{burst_start}-{i}", "hall", burst_start)
        learner.close_slot()
        for _ in range(5):
            learner.close_slot()
    assert learner.classify() is CellClass.MEETING_ROOM


def test_exit_without_entry_is_tolerated():
    learner = CellTypeLearner("c")
    learner.observe_exit("stranger", "east", now=5.0)
    features = learner.features()
    assert features.mean_dwell_slots == 0.0
