"""Tests for the cell-type learning process."""

import random

import pytest

from repro.core import CellBehaviorClassifier, CellFeatures, extract_features
from repro.profiles import CellClass


def features(**overrides):
    base = dict(
        top_user_share=0.2,
        distinct_users=40,
        directionality=0.4,
        mean_dwell_slots=5.0,
        peak_to_mean=1.5,
        quiet_fraction=0.1,
        roughness=0.6,
        linear_advantage=0.0,
    )
    base.update(overrides)
    return CellFeatures(**base)


def test_office_rule():
    clf = CellBehaviorClassifier()
    office = features(top_user_share=0.95, distinct_users=4)
    assert clf.classify(office) is CellClass.OFFICE


def test_corridor_rule():
    clf = CellBehaviorClassifier()
    corridor = features(directionality=0.9, mean_dwell_slots=0.3)
    assert clf.classify(corridor) is CellClass.CORRIDOR


def test_meeting_room_rule():
    clf = CellBehaviorClassifier()
    meeting = features(peak_to_mean=6.0, quiet_fraction=0.8)
    assert clf.classify(meeting) is CellClass.MEETING_ROOM


def test_cafeteria_rule():
    clf = CellBehaviorClassifier()
    cafeteria = features(roughness=0.1)
    assert clf.classify(cafeteria) is CellClass.CAFETERIA


def test_default_fallback():
    clf = CellBehaviorClassifier()
    assert clf.classify(features()) is CellClass.DEFAULT


def test_unknown_with_too_few_observations():
    clf = CellBehaviorClassifier(min_observations=20)
    assert clf.classify(features(top_user_share=0.99), observations=5) is (
        CellClass.UNKNOWN
    )


def test_extract_features_user_concentration():
    f = extract_features(
        slot_counts=[1, 1, 1],
        user_visits={"a": 90, "b": 5, "c": 5},
        transitions={},
        mean_dwell_slots=3.0,
        top_k=1,
    )
    assert f.top_user_share == pytest.approx(0.90)
    assert f.distinct_users == 3
    spread = extract_features(
        slot_counts=[1],
        user_visits={f"u{i}": 1 for i in range(20)},
        transitions={},
        mean_dwell_slots=1.0,
    )
    assert spread.top_user_share == pytest.approx(0.25)  # 5 of 20


def test_extract_features_directionality_needs_samples():
    f = extract_features(
        slot_counts=[1],
        user_visits={},
        transitions={"C": {"E": 2}},  # only 2 samples: below threshold
        mean_dwell_slots=1.0,
    )
    assert f.directionality == 0.0
    f2 = extract_features(
        slot_counts=[1],
        user_visits={},
        transitions={"C": {"E": 9, "A": 1}},
        mean_dwell_slots=1.0,
    )
    assert f2.directionality == pytest.approx(0.9)


def test_extract_features_burstiness():
    spiky = [0, 0, 0, 20, 1, 0, 0, 0, 18, 0]
    f = extract_features(spiky, {}, {}, mean_dwell_slots=3.0)
    assert f.peak_to_mean > 1.4
    assert f.quiet_fraction == pytest.approx(0.7)


def test_extract_features_empty_inputs():
    f = extract_features([], {}, {}, mean_dwell_slots=0.0)
    assert f.quiet_fraction == 1.0
    assert f.peak_to_mean == 0.0
    assert f.top_user_share == 0.0


def test_end_to_end_synthetic_behaviors():
    """Feature extraction + rules separate synthetic per-class workloads."""
    rng = random.Random(4)
    clf = CellBehaviorClassifier()

    # Office: few users, most visits by one person, steady low counts.
    office = clf.classify(
        extract_features(
            slot_counts=[rng.randint(0, 2) for _ in range(48)],
            user_visits={"owner": 60, "guest": 4},
            transitions={"hall": {"hall": 30}},
            mean_dwell_slots=20.0,
        )
    )
    assert office is CellClass.OFFICE

    # Corridor: many users, strong directionality, sub-slot dwells.
    corridor = clf.classify(
        extract_features(
            slot_counts=[rng.randint(2, 6) for _ in range(48)],
            user_visits={f"u{i}": 2 for i in range(80)},
            transitions={"west": {"east": 47, "west": 3}},
            mean_dwell_slots=0.2,
        )
    )
    assert corridor is CellClass.CORRIDOR

    # Meeting room: silent except two spikes.
    counts = [0] * 48
    counts[10] = 30
    counts[25] = 28
    meeting = clf.classify(
        extract_features(
            counts,
            user_visits={f"u{i}": 1 for i in range(58)},
            transitions={},
            mean_dwell_slots=14.0,
        )
    )
    assert meeting is CellClass.MEETING_ROOM

    # Cafeteria: smooth hump.
    hump = [round(10 * min(i, 48 - i) / 24) for i in range(48)]
    cafeteria = clf.classify(
        extract_features(
            hump,
            user_visits={f"u{i}": 1 for i in range(200)},
            transitions={},
            mean_dwell_slots=25.0,
        )
    )
    assert cafeteria is CellClass.CAFETERIA

    # Default: rough random counts.
    default = clf.classify(
        extract_features(
            [rng.choice([0, 1, 5, 9]) for _ in range(48)],
            user_visits={f"u{i}": 1 for i in range(100)},
            transitions={"a": {"b": 5, "c": 5, "d": 4}},
            mean_dwell_slots=5.0,
        )
    )
    assert default is CellClass.DEFAULT
