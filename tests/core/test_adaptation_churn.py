"""Convergence of the adaptation protocol under capacity churn.

These scenarios codify the failure modes found while hardening the
protocol (stale-commit races, mis-marked restricted sets, suppressed
re-probes): sequences of capacity shrinks and restores must always land
back on the exact max-min allocation, in both the refined and the flooding
variant.
"""

import random

import pytest

from repro.core import AdaptationProtocol, QoSBounds, QoSRequest
from repro.des import Environment
from repro.network import line_topology
from repro.network.routing import shortest_path
from repro.traffic import Connection, FlowSpec


def build(switches, conn_specs, use_bottleneck_sets=True, capacity=1000.0):
    topo = line_topology(switches, capacity=capacity, prop_delay=0.001)
    env = Environment()
    protocol = AdaptationProtocol(
        env, topo, use_bottleneck_sets=use_bottleneck_sets
    )
    for i, (a, b, b_max) in enumerate(conn_specs):
        qos = QoSRequest(
            flowspec=FlowSpec(sigma=1.0, rho=10.0),
            bounds=QoSBounds(10.0, max(10.0, b_max)),
        )
        conn = Connection(src=f"s{a}", dst=f"s{b}", qos=qos, conn_id=f"c{i}")
        conn.activate(shortest_path(topo, conn.src, conn.dst), 10.0, 0.0)
        protocol.register_connection(conn)
    env.run()
    return topo, env, protocol


def assert_converged(protocol, tol=1e-3):
    reference = protocol.reference_allocation()
    for conn_id, excess in reference.items():
        conn = protocol.connections[conn_id]
        assert protocol.rate_of(conn_id) == pytest.approx(
            conn.b_min + excess, abs=tol
        ), f"{conn_id} off max-min after churn"


def churn(topo, env, protocol, rng, events=6, switches=6):
    for _ in range(events):
        index = rng.randrange(switches - 1)
        link = topo.link(f"s{index}", f"s{index + 1}")
        headroom = max(0.0, link.excess_available - 50.0)
        shrink = min(rng.choice([300.0, 450.0, 600.0]), headroom)
        if shrink <= 0:
            continue
        link.reserve(shrink)
        protocol.notify_capacity_change(link.key)
        env.run()
        assert_converged(protocol)
        link.unreserve(shrink)
        protocol.notify_capacity_change(link.key)
        env.run()
        assert_converged(protocol)


def test_single_link_mixed_demands_stale_commit_case():
    """The first hypothesis-found case: four single-hop connections with
    mixed demands must equalize the two unbounded ones exactly."""
    _, _, protocol = build(
        3, [(0, 1, 1000.0), (0, 1, 15.0), (0, 1, 60.0), (0, 1, 1000.0)],
        capacity=200.0,
    )
    assert_converged(protocol)
    assert protocol.rate_of("c0") == pytest.approx(62.5, abs=1e-3)
    assert protocol.rate_of("c3") == pytest.approx(62.5, abs=1e-3)


def test_multihop_remote_bottleneck_release():
    """The second case: a remotely-bottlenecked connection must claim
    capacity freed at the remote link (the mis-marking repair)."""
    topo, env, protocol = build(
        4,
        [(0, 2, 1000.0), (0, 3, 1000.0), (2, 3, 15.0), (2, 3, 1000.0)],
        capacity=200.0,
    )
    assert_converged(protocol)
    # Squeeze then release a mid-path link; everything must re-settle.
    link = topo.link("s1", "s2")
    link.reserve(120.0)
    protocol.notify_capacity_change(link.key)
    env.run()
    assert_converged(protocol)
    link.unreserve(120.0)
    protocol.notify_capacity_change(link.key)
    env.run()
    assert_converged(protocol)


@pytest.mark.parametrize("use_sets", [True, False])
@pytest.mark.parametrize("seed", [3, 4, 5, 11])
def test_capacity_churn_always_resettles(use_sets, seed):
    """Randomized shrink/restore schedules: exact convergence after every
    event, refined and flooding alike."""
    rng = random.Random(seed)
    specs = []
    for _ in range(6):
        a = rng.randrange(5)
        b = rng.randrange(a + 1, 6)
        specs.append((a, b, rng.choice([90.0, 490.0, 5000.0])))
    topo, env, protocol = build(6, specs, use_bottleneck_sets=use_sets)
    assert_converged(protocol)
    churn(topo, env, protocol, rng, events=3, switches=6)


def test_churn_with_arrivals_and_departures():
    """Connections come and go *between* capacity events."""
    rng = random.Random(7)
    topo, env, protocol = build(5, [(0, 4, 5000.0), (1, 3, 5000.0)])
    extras = []
    for step in range(6):
        if step % 2 == 0:
            a = rng.randrange(4)
            b = rng.randrange(a + 1, 5)
            qos = QoSRequest(
                flowspec=FlowSpec(sigma=1.0, rho=10.0),
                bounds=QoSBounds(10.0, 10.0 + rng.choice([90.0, 5000.0])),
            )
            conn = Connection(
                src=f"s{a}", dst=f"s{b}", qos=qos, conn_id=f"x{step}"
            )
            conn.activate(shortest_path(topo, conn.src, conn.dst), 10.0, 0.0)
            protocol.register_connection(conn)
            extras.append(conn)
        elif extras:
            protocol.unregister_connection(extras.pop(rng.randrange(len(extras))))
        env.run()
        assert_converged(protocol)

        link = topo.link("s2", "s3")
        link.reserve(250.0)
        protocol.notify_capacity_change(link.key)
        env.run()
        assert_converged(protocol)
        link.unreserve(250.0)
        protocol.notify_capacity_change(link.key)
        env.run()
        assert_converged(protocol)


def test_message_overhead_stays_bounded_under_churn():
    """No safety-cap churn: messages grow linearly with events, not to the
    runaway backstop."""
    rng = random.Random(9)
    specs = [(0, 5, 5000.0), (1, 4, 5000.0), (2, 3, 5000.0), (0, 2, 90.0)]
    topo, env, protocol = build(6, specs)
    churn(topo, env, protocol, rng, events=4, switches=6)
    assert all(
        count < protocol.safety_cap
        for count in protocol._round_counts.values()
    )
    assert protocol.signaling.messages_sent < 5000
