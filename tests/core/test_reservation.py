"""Tests for the cell reservation ledger and B_dyn pool."""

import pytest

from repro.core import CellReservations
from repro.network import Link


def make():
    link = Link("bs", "air", capacity=100.0)
    return link, CellReservations(link, min_pool_fraction=0.05, max_pool_fraction=0.20)


def test_initial_pool_at_minimum_fraction():
    link, ledger = make()
    assert ledger.pool == pytest.approx(5.0)
    assert link.reserved == pytest.approx(5.0)


def test_fraction_band_validation():
    link = Link("a", "b", capacity=10.0)
    with pytest.raises(ValueError):
        CellReservations(link, min_pool_fraction=0.3, max_pool_fraction=0.2)
    with pytest.raises(ValueError):
        CellReservations(link, min_pool_fraction=-0.1)


def test_targeted_reservation_syncs_link():
    link, ledger = make()
    ledger.reserve_for_portable("p", 16.0)
    assert ledger.targeted_for("p") == 16.0
    assert link.reserved == pytest.approx(21.0)
    ledger.reserve_for_portable("p", 32.0)  # replacement
    assert link.reserved == pytest.approx(37.0)
    assert ledger.release_portable("p") == 32.0
    assert link.reserved == pytest.approx(5.0)


def test_claim_consumes_reservation():
    link, ledger = make()
    ledger.reserve_for_portable("p", 16.0)
    assert ledger.claim_portable("p") == 16.0
    assert ledger.targeted_for("p") == 0.0
    assert ledger.claim_portable("p") == 0.0  # idempotent


def test_aggregate_pools():
    link, ledger = make()
    ledger.reserve_aggregate(("meeting", "x"), 48.0)
    assert ledger.aggregate_for(("meeting", "x")) == 48.0
    assert link.reserved == pytest.approx(53.0)
    ledger.reserve_aggregate(("meeting", "x"), 0.0)  # zero removes
    assert ledger.aggregate_for(("meeting", "x")) == 0.0


def test_draw_aggregate_partial_and_exhausting():
    _, ledger = make()
    ledger.reserve_aggregate("tag", 30.0)
    assert ledger.draw_aggregate("tag", 12.0) == 12.0
    assert ledger.aggregate_for("tag") == pytest.approx(18.0)
    assert ledger.draw_aggregate("tag", 100.0) == pytest.approx(18.0)
    assert ledger.aggregate_for("tag") == 0.0


def test_pool_clamped_to_band():
    link, ledger = make()
    assert ledger.set_pool(50.0) == pytest.approx(20.0)  # max 20%
    assert ledger.set_pool(0.0) == pytest.approx(5.0)    # min 5%
    assert ledger.adapt_pool_for_static_neighbors(12.0) == pytest.approx(12.0)


def test_draw_pool():
    link, ledger = make()
    ledger.set_pool(20.0)
    assert ledger.draw_pool(8.0) == 8.0
    assert ledger.pool == pytest.approx(12.0)
    assert ledger.draw_pool(100.0) == pytest.approx(12.0)
    assert ledger.pool == 0.0
    assert link.reserved == 0.0


def test_total_combines_all_categories():
    link, ledger = make()
    ledger.reserve_for_portable("p", 10.0)
    ledger.reserve_aggregate("tag", 20.0)
    ledger.set_pool(15.0)
    assert ledger.total == pytest.approx(45.0)
    assert link.reserved == pytest.approx(45.0)


def test_negative_amounts_rejected():
    _, ledger = make()
    with pytest.raises(ValueError):
        ledger.reserve_for_portable("p", -1.0)
    with pytest.raises(ValueError):
        ledger.reserve_aggregate("t", -1.0)
    with pytest.raises(ValueError):
        ledger.draw_aggregate("t", -1.0)
    with pytest.raises(ValueError):
        ledger.draw_pool(-1.0)
    with pytest.raises(ValueError):
        ledger.adapt_pool_for_static_neighbors(-1.0)
