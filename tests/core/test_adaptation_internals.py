"""Unit tests for AdaptationProtocol internals."""

import pytest

from repro.core import AdaptationProtocol, QoSBounds, QoSRequest
from repro.des import Environment
from repro.network import ControlPacket, PacketKind, line_topology
from repro.network.routing import shortest_path
from repro.traffic import Connection, FlowSpec


def setup(switches=4, capacity=100.0):
    topo = line_topology(switches, capacity=capacity, prop_delay=0.001)
    env = Environment()
    protocol = AdaptationProtocol(env, topo)
    return topo, env, protocol


def register(topo, protocol, src, dst, cid, b_min=10.0, b_max=100.0):
    qos = QoSRequest(
        flowspec=FlowSpec(sigma=1.0, rho=b_min),
        bounds=QoSBounds(b_min, b_max),
    )
    conn = Connection(src=src, dst=dst, qos=qos, conn_id=cid)
    conn.activate(shortest_path(topo, src, dst), b_min, 0.0)
    protocol.register_connection(conn)
    return conn


def make_packet(conn_id, direction, originator, returning=False):
    meta = {"returning": True} if returning else {}
    return ControlPacket(
        kind=PacketKind.ADVERTISE,
        conn_id=conn_id,
        stamped_rate=1.0,
        direction=direction,
        originator=originator,
        global_id=(originator, 999),
        meta=meta,
    )


def test_route_next_hop_orientations():
    topo, env, protocol = setup()
    register(topo, protocol, "s0", "s3", "c")
    env.run()
    # Outbound downstream from s1 -> s2.
    assert protocol._route_next_hop("s1", make_packet("c", 1, "s1")) == "s2"
    # Outbound upstream from s1 -> s0.
    assert protocol._route_next_hop("s1", make_packet("c", -1, "s1")) == "s0"
    # Returning downstream packet heads back upstream.
    assert protocol._route_next_hop(
        "s2", make_packet("c", 1, "s1", returning=True)
    ) == "s1"
    # Ends of the route.
    assert protocol._route_next_hop("s3", make_packet("c", 1, "s1")) is None
    assert protocol._route_next_hop("s0", make_packet("c", -1, "s1")) is None
    # Node not on the route.
    assert protocol._route_next_hop("ghost", make_packet("c", 1, "s1")) is None


def test_owned_link_key():
    topo, env, protocol = setup()
    register(topo, protocol, "s0", "s2", "c")
    env.run()
    assert protocol._owned_link_key("s0", "c") == ("s0", "s1")
    assert protocol._owned_link_key("s1", "c") == ("s1", "s2")
    assert protocol._owned_link_key("s2", "c") is None  # destination


def test_rate_of_unknown_connection_raises():
    topo, env, protocol = setup()
    with pytest.raises(KeyError):
        protocol.rate_of("ghost")


def test_reference_allocation_contents():
    topo, env, protocol = setup(capacity=100.0)
    register(topo, protocol, "s0", "s1", "a", b_min=10.0, b_max=40.0)
    register(topo, protocol, "s0", "s1", "b", b_min=10.0, b_max=1000.0)
    env.run()
    reference = protocol.reference_allocation()
    assert set(reference) == {"a", "b"}
    assert reference["a"] == pytest.approx(30.0)   # capped at demand
    assert reference["b"] == pytest.approx(50.0)   # the rest


def test_stale_packets_for_gone_connection_ignored():
    topo, env, protocol = setup()
    conn = register(topo, protocol, "s0", "s3", "c")
    env.run()
    protocol.unregister_connection(conn)
    # A straggler packet must be dropped without error.
    protocol._handle("s1", make_packet("c", 1, "s0"), "s0")
    env.run()


def test_unregister_unroutes_cleanly_twice():
    topo, env, protocol = setup()
    conn = register(topo, protocol, "s0", "s2", "c")
    env.run()
    protocol.unregister_connection(conn)
    protocol.unregister_connection(conn)  # idempotent
    assert "c" not in protocol.connections
    for link in topo.path_links(["s0", "s1", "s2"]):
        assert "c" not in link.allocations


def test_sweep_terminates_quiescent():
    """After convergence, no sweeps remain scheduled and no rounds pend."""
    topo, env, protocol = setup()
    register(topo, protocol, "s0", "s3", "c1")
    register(topo, protocol, "s1", "s2", "c2")
    env.run()
    assert not protocol._rounds
    assert not protocol._probe_queue
    assert not protocol._sweep_scheduled
