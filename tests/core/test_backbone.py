"""Tests for wired-side setup with neighbor multicast (Section 4)."""

import pytest

from repro.core import BackboneManager, audio_request
from repro.network import campus_backbone
from repro.traffic import Connection, ConnectionState


def build(cells=("A", "B", "C"), **kw):
    topo = campus_backbone(cells, servers=["server"], **kw)
    neighbor_bs = {
        "A": ["bs:B"],
        "B": ["bs:A", "bs:C"],
        "C": ["bs:B"],
    }
    return topo, BackboneManager(topo, neighbor_bs)


def make_conn(cell="A"):
    return Connection(src=f"air:{cell}", dst="server", qos=audio_request())


def test_setup_admits_and_provisions_branches():
    topo, manager = build()
    conn = make_conn("B")
    setup = manager.setup_connection(conn, "B")
    assert setup.result.accepted
    assert conn.state is ConnectionState.ACTIVE
    # Branches to both neighbors of B were provisioned.
    assert setup.covered_neighbors == {"bs:A", "bs:C"}
    assert setup.branch_buffers
    # Branch buffers actually booked on backbone links.
    reserved = [
        link for link in topo.links
        if any(str(k).startswith("('mc:") or isinstance(k, tuple)
               for k in link.buffers)
    ]
    assert reserved


def test_branch_failure_does_not_reject_primary():
    topo, manager = build()
    # Choke the access link toward bs:C so that branch becomes infeasible.
    topo.link("router", "bs:C").reserve(9_999.0)
    conn = make_conn("B")
    setup = manager.setup_connection(conn, "B")
    assert setup.result.accepted          # primary unaffected
    assert "bs:C" in setup.tree.failed_leaves
    assert setup.covered_neighbors == {"bs:A"}


def test_primary_rejection_blocks_connection():
    topo, manager = build()
    topo.link("air:A", "bs:A").reserve(1_599.0)
    conn = make_conn("A")
    setup = manager.setup_connection(conn, "A")
    assert not setup.result.accepted
    assert conn.state is ConnectionState.BLOCKED
    assert conn.conn_id not in manager.setups


def test_teardown_releases_route_and_branch_buffers():
    topo, manager = build()
    conn = make_conn("B")
    manager.setup_connection(conn, "B")
    manager.teardown_connection(conn)
    for link in topo.links:
        assert conn.conn_id not in link.allocations
        assert not any(
            isinstance(k, tuple) and k[0] == f"mc:{conn.conn_id}"
            for k in link.buffers
        )


def test_handoff_rebuilds_route_and_tree():
    topo, manager = build()
    conn = make_conn("A")
    manager.setup_connection(conn, "A")
    setup = manager.handoff(conn, "B", new_src="air:B")
    assert setup.result.accepted
    assert conn.state is ConnectionState.ACTIVE
    assert conn.route[0] == "air:B"
    assert conn.handoffs == 1
    assert setup.covered_neighbors == {"bs:A", "bs:C"}
    # The old wireless link no longer carries the connection.
    assert conn.conn_id not in topo.link("air:A", "bs:A").allocations


def test_handoff_failure_drops_connection():
    topo, manager = build()
    conn = make_conn("A")
    manager.setup_connection(conn, "A")
    # Saturate the target cell's wireless link at the floor level so even a
    # handoff cannot fit (no advance reservations exist on the backbone).
    topo.link("air:B", "bs:B").admit("bg", 1_600.0)
    with pytest.raises(Exception):
        # No QoS-feasible route exists: qos_route raises.
        manager.handoff(conn, "B", new_src="air:B")
    assert conn.state is ConnectionState.DROPPED


def test_handoff_of_unknown_connection_raises():
    topo, manager = build()
    conn = make_conn("A")
    with pytest.raises(KeyError):
        manager.handoff(conn, "B", new_src="air:B")
