"""Tests for the Section 6.3 probabilistic reservation algorithm."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ProbabilisticAdmission,
    handoff_in_probability,
    nonblocking_probability,
    reserved_bandwidth,
    stay_probability,
    weighted_binomial_sum_pmf,
)

#: Figure 6's two connection types: (bandwidth, mu, handoff probability).
FIG6_TYPES = [(1.0, 5.0, 0.7), (4.0, 4.0, 0.7)]


def test_stay_probability_formula():
    assert stay_probability(mu=5.0, window=0.1) == pytest.approx(math.exp(-0.5))
    assert stay_probability(mu=5.0, window=0.0) == 1.0
    with pytest.raises(ValueError):
        stay_probability(0.0, 1.0)
    with pytest.raises(ValueError):
        stay_probability(1.0, -1.0)


def test_handoff_in_probability_formula():
    p = handoff_in_probability(mu=5.0, window=0.1, handoff_prob=0.7)
    assert p == pytest.approx((1 - math.exp(-0.5)) * 0.7)
    with pytest.raises(ValueError):
        handoff_in_probability(5.0, 0.1, 1.5)


def test_probabilities_complementary():
    """p_s + p_m/h + termination share = 1 structure."""
    mu, window, h = 4.0, 0.05, 0.7
    p_s = stay_probability(mu, window)
    p_m = handoff_in_probability(mu, window, h)
    leave = 1 - p_s
    assert p_m == pytest.approx(leave * h)


def test_pmf_single_binomial():
    pmf, unit = weighted_binomial_sum_pmf([(1.0, 2, 0.5)])
    assert unit == 1.0
    assert list(pmf) == pytest.approx([0.25, 0.5, 0.25])


def test_pmf_bandwidth_expansion():
    pmf, unit = weighted_binomial_sum_pmf([(4.0, 1, 0.5)])
    # Load is 0 or 4 units.
    assert pmf[0] == pytest.approx(0.5)
    assert pmf[4] == pytest.approx(0.5)
    assert pmf[1] == pmf[2] == pmf[3] == 0.0


def test_pmf_convolution_of_types():
    pmf, _ = weighted_binomial_sum_pmf([(1.0, 1, 0.5), (2.0, 1, 0.5)])
    # Loads: 0, 1, 2, 3 each with prob 0.25.
    assert list(pmf) == pytest.approx([0.25, 0.25, 0.25, 0.25])


def test_pmf_fractional_bandwidths_scaled():
    pmf, unit = weighted_binomial_sum_pmf([(0.5, 1, 1.0)])
    assert unit == pytest.approx(0.5)
    assert pmf[1] == pytest.approx(1.0)


def test_pmf_empty_groups():
    pmf, unit = weighted_binomial_sum_pmf([])
    assert list(pmf) == [1.0]


def test_nonblocking_probability_extremes():
    groups = [(1.0, 10, 0.5)]
    assert nonblocking_probability(10.0, groups) == pytest.approx(1.0)
    assert nonblocking_probability(0.0, groups) == pytest.approx(0.5**10)


def test_nonblocking_matches_monte_carlo():
    rng = np.random.default_rng(5)
    groups = [(1.0, 12, 0.6), (4.0, 3, 0.3)]
    capacity = 14.0
    exact = nonblocking_probability(capacity, groups)
    samples = rng.binomial(12, 0.6, 40000) + 4 * rng.binomial(3, 0.3, 40000)
    mc = float(np.mean(samples <= capacity))
    assert exact == pytest.approx(mc, abs=0.01)


def test_reserved_bandwidth_eqn7():
    assert reserved_bandwidth(40.0, [1.0, 4.0], [20, 3]) == pytest.approx(8.0)
    assert reserved_bandwidth(40.0, [1.0, 4.0], [40, 10]) == 0.0  # clamped
    with pytest.raises(ValueError):
        reserved_bandwidth(40.0, [1.0], [1, 2])


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from([1.0, 2.0, 4.0]),
            st.integers(min_value=0, max_value=25),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        max_size=4,
    )
)
def test_property_pmf_is_distribution(groups):
    pmf, unit = weighted_binomial_sum_pmf(groups)
    assert pmf.sum() == pytest.approx(1.0)
    assert (pmf >= -1e-12).all()
    assert unit > 0


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.0, max_value=60.0))
def test_property_nonblocking_monotone_in_capacity(capacity):
    groups = [(1.0, 20, 0.5), (4.0, 5, 0.5)]
    assert nonblocking_probability(capacity, groups) <= nonblocking_probability(
        capacity + 1.0, groups
    ) + 1e-12


class TestProbabilisticAdmission:
    def make(self, window=0.05, p_qos=0.01):
        return ProbabilisticAdmission(
            capacity=40.0, window=window, p_qos=p_qos, types=FIG6_TYPES
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticAdmission(0, 0.1, 0.01, FIG6_TYPES)
        with pytest.raises(ValueError):
            ProbabilisticAdmission(40, 0, 0.01, FIG6_TYPES)
        with pytest.raises(ValueError):
            ProbabilisticAdmission(40, 0.1, 0.0, FIG6_TYPES)

    def test_empty_cell_admits(self):
        admission = self.make()
        assert admission.admit_new(0, [0, 0], [0, 0])
        assert admission.admit_new(1, [0, 0], [0, 0])

    def test_full_cell_refuses(self):
        admission = self.make(p_qos=0.001)
        assert not admission.admit_new(0, [38, 0], [38, 0])

    def test_stricter_pqos_refuses_earlier(self):
        """Find the admission boundary: strict P_QOS stops at lower counts."""

        def max_admitted(p_qos):
            admission = self.make(p_qos=p_qos)
            counts = [0, 0]
            while admission.admit_new(0, counts, counts) and counts[0] < 60:
                counts[0] += 1
            return counts[0]

        assert max_admitted(0.001) < max_admitted(0.2)

    def test_vanishing_window_reduces_to_bandwidth_fit(self):
        """As T -> 0 nothing moves (p_s -> 1, p_m -> 0): the test admits up
        to raw capacity regardless of the neighbor's load."""
        admission = self.make(window=1e-6, p_qos=0.01)
        counts = [0, 0]
        neighbor = [38, 0]
        while admission.admit_new(0, counts, neighbor) and counts[0] < 60:
            counts[0] += 1
        assert counts[0] == 40

    def test_moderate_window_protects_against_loaded_neighbor(self):
        """With a real look-ahead, a loaded neighbor curbs admissions."""

        def max_admitted(neighbor):
            admission = self.make(window=0.05, p_qos=0.01)
            counts = [0, 0]
            while admission.admit_new(0, counts, neighbor) and counts[0] < 60:
                counts[0] += 1
            return counts[0]

        # (The probabilistic test alone may exceed raw capacity slightly —
        # departures within T free space; the simulator combines it with a
        # plain bandwidth-fit check.)
        assert max_admitted([38, 0]) < max_admitted([0, 0])

    def test_counts_validation(self):
        admission = self.make()
        with pytest.raises(ValueError):
            admission.admit_new(0, [1], [0, 0])

    def test_max_admissible_counts_boundary(self):
        admission = self.make(p_qos=0.05)
        counts = admission.max_admissible_counts([0, 0], [0, 0])
        # The boundary is tight: one more of the cheap type would break (6).
        assert not admission.admit_new(0, counts, [0, 0])
        assert admission.nonblocking(counts, [0, 0]) >= 1 - 0.05

    def test_reservation_for_uses_eqn7(self):
        admission = self.make()
        assert admission.reservation_for([20, 3]) == pytest.approx(8.0)

    def test_nonblocking_memoized(self):
        admission = self.make()
        first = admission.nonblocking([5, 1], [3, 0])
        second = admission.nonblocking([5, 1], [3, 0])
        assert first == second
        assert len(admission._cache) == 1
