"""Tests for the CellularResourceManager orchestration (Figure 1)."""

import pytest

from repro.core import CellularResourceManager, audio_request, video_request
from repro.core.qos import QoSRequest
from repro.des import Environment
from repro.profiles import CellClass
from repro.traffic import ConnectionState, FlowSpec
from repro.wireless import Cell, Portable


def build(capacity=160.0, threshold=100.0):
    env = Environment()
    cells = {
        "A": Cell("A", capacity=capacity, cell_class=CellClass.OFFICE),
        "B": Cell("B", capacity=capacity, cell_class=CellClass.CORRIDOR),
        "C": Cell("C", capacity=capacity, cell_class=CellClass.DEFAULT),
    }
    cells["A"].add_neighbor("B")
    cells["B"].add_neighbor("A")
    cells["B"].add_neighbor("C")
    cells["C"].add_neighbor("B")
    cells["A"].occupants.add("p")
    manager = CellularResourceManager(env, cells, static_threshold=threshold)
    return env, cells, manager


def test_admission_and_blocking():
    env, cells, manager = build(capacity=40.0)
    p = Portable("p")
    manager.attach_portable(p, "A")
    # Pool takes 5% = 2.0, floors: 16 fits, next 16 fits, third does not.
    c1 = manager.request_connection(p, audio_request())
    c2 = manager.request_connection(p, audio_request())
    c3 = manager.request_connection(p, audio_request())
    assert c1 is not None and c2 is not None
    assert c3 is None
    assert manager.admitted == 2
    assert manager.blocked == 1


def test_best_effort_always_admitted():
    env, cells, manager = build(capacity=40.0)
    p = Portable("p")
    manager.attach_portable(p, "A")
    be = manager.request_connection(
        p, QoSRequest(flowspec=FlowSpec(sigma=1.0, rho=5.0), bounds=None)
    )
    assert be is not None
    assert cells["A"].link.allocations == {}


def test_static_upgrade_after_threshold():
    env, cells, manager = build()
    p = Portable("p")
    manager.attach_portable(p, "A")
    conn = manager.request_connection(p, audio_request())
    assert conn.rate == 16.0
    env.run(until=150.0)
    manager.refresh_static_states()
    assert conn.rate == 64.0  # b_max, capacity permitting


def test_handoff_resets_to_floor_and_plans_reservation():
    env, cells, manager = build()
    p = Portable("p")
    manager.attach_portable(p, "A")
    conn = manager.request_connection(p, audio_request())
    env.run(until=150.0)
    manager.refresh_static_states()
    assert conn.rate == 64.0

    outcome = manager.move_portable(p, "B")
    assert outcome.clean
    assert conn.rate == 16.0  # back to b_min as a mobile
    # The corridor's base station predicts the home office (occupant rule).
    assert manager.base_station("B").reservation_target("p") == "A"
    assert cells["A"].reservations.targeted_for("p") == pytest.approx(16.0)


def test_handoff_to_non_neighbor_rejected():
    env, cells, manager = build()
    p = Portable("p")
    manager.attach_portable(p, "A")
    with pytest.raises(ValueError):
        manager.move_portable(p, "C")


def test_handoff_claims_its_reservation_under_pressure():
    env, cells, manager = build(capacity=40.0)
    p = Portable("p")
    manager.attach_portable(p, "B")
    conn = manager.request_connection(p, audio_request())
    # Occupant rule reserves 16 in office A for p.
    manager.base_station("B").plan_advance_reservation(p, env.now)
    assert cells["A"].reservations.targeted_for("p") == 16.0
    # Fill office A's remaining floor headroom (40 - 2 pool - 16 resv = 22).
    cells["A"].link.admit("bg", 22.0)
    outcome = manager.move_portable(p, "A")
    assert outcome.clean  # the claim made room
    assert conn.state is ConnectionState.ACTIVE


def test_handoff_drop_when_target_full():
    env, cells, manager = build(capacity=40.0)
    p = Portable("p")
    manager.attach_portable(p, "C")
    conn = manager.request_connection(p, audio_request())
    # Saturate B completely (no reservation for p there: C's base station
    # has no prediction to act on and B isn't p's office).
    cells["B"].link.admit("bg", 38.0)
    cells["B"].reservations.set_pool(0.0)  # pool floor is 5%: clamp to 2
    outcome = manager.move_portable(p, "B")
    assert not outcome.clean
    assert conn.state is ConnectionState.DROPPED
    assert manager.dropped == 1


def test_terminate_frees_and_rebalances():
    env, cells, manager = build()
    p = Portable("p")
    manager.attach_portable(p, "A")
    c1 = manager.request_connection(p, video_request())
    c2 = manager.request_connection(p, video_request())
    env.run(until=150.0)
    manager.refresh_static_states()
    rate_before = c1.rate
    manager.terminate_connection(c2)
    assert c2.state is ConnectionState.TERMINATED
    assert c1.rate >= rate_before


def test_pool_adapts_to_static_neighbor_rates():
    env, cells, manager = build(capacity=1600.0)
    p = Portable("p")
    manager.attach_portable(p, "A")
    manager.request_connection(p, video_request())
    env.run(until=150.0)
    manager.refresh_static_states()
    # p is static in A at 600 kbps; neighbor B's pool must cover one such
    # connection (clamped to the 20% maximum = 320).
    assert cells["B"].reservations.pool == pytest.approx(
        min(600.0, 0.20 * 1600.0)
    )


def test_profile_server_learns_from_handoffs():
    env, cells, manager = build()
    p = Portable("p")
    manager.attach_portable(p, "A")
    manager.move_portable(p, "B")
    manager.move_portable(p, "C")
    server = manager.server
    assert server.handoffs_recorded == 2
    assert server.cell_profile("B").predict_next("A") == "C"


def test_renegotiate_upgrades_bounds_in_place():
    env, cells, manager = build(capacity=160.0)
    p = Portable("p")
    manager.attach_portable(p, "A")
    conn = manager.request_connection(p, audio_request())   # [16, 64]
    accepted = manager.renegotiate(conn, audio_request(b_min=32.0, b_max=128.0))
    assert accepted
    assert conn.b_min == 32.0
    assert conn.rate == 32.0
    assert cells["A"].link.allocations[conn.conn_id].minimum == 32.0


def test_renegotiate_refused_keeps_old_contract():
    env, cells, manager = build(capacity=40.0)
    p = Portable("p")
    manager.attach_portable(p, "A")
    conn = manager.request_connection(p, audio_request())
    # 40 - 2 pool - 16 floor = 22 headroom; a 100-unit floor cannot fit.
    refused = manager.renegotiate(conn, audio_request(b_min=100.0, b_max=100.0))
    assert not refused
    assert conn.b_min == 16.0
    assert cells["A"].link.allocations[conn.conn_id].minimum == 16.0


def test_renegotiate_downgrade_frees_capacity():
    env, cells, manager = build(capacity=40.0)
    p = Portable("p")
    manager.attach_portable(p, "A")
    conn = manager.request_connection(p, audio_request(b_min=32.0, b_max=32.0))
    assert manager.renegotiate(conn, audio_request(b_min=16.0, b_max=16.0))
    assert cells["A"].link.min_committed == 16.0


def test_renegotiate_requires_active_attached_connection():
    env, cells, manager = build()
    p = Portable("p")
    manager.attach_portable(p, "A")
    conn = manager.request_connection(p, audio_request())
    manager.terminate_connection(conn)
    with pytest.raises(RuntimeError):
        manager.renegotiate(conn, audio_request())


def test_renegotiate_rejects_best_effort_target():
    from repro.core.qos import QoSRequest
    from repro.traffic import FlowSpec

    env, cells, manager = build()
    p = Portable("p")
    manager.attach_portable(p, "A")
    conn = manager.request_connection(p, audio_request())
    with pytest.raises(ValueError):
        manager.renegotiate(
            conn, QoSRequest(flowspec=FlowSpec(sigma=1.0, rho=5.0), bounds=None)
        )
