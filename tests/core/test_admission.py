"""Tests for the Table 2 round-trip admission controller."""

import pytest

from repro.core import AdmissionController, RejectReason, audio_request
from repro.core.qos import QoSRequest
from repro.network import Discipline, Topology
from repro.traffic import Connection, FlowSpec


ROUTE = ["air", "bs", "router", "server"]


def make_topo(wireless_capacity=1600.0, error_prob=0.0):
    topo = Topology()
    topo.add_link("air", "bs", capacity=wireless_capacity, error_prob=error_prob)
    topo.add_link("bs", "router", capacity=10_000.0)
    topo.add_link("router", "server", capacity=100_000.0)
    return topo


def make_conn(**qos_overrides):
    return Connection(src="air", dst="server", qos=audio_request(**qos_overrides))


def test_accept_commits_allocations_on_every_link():
    topo = make_topo()
    controller = AdmissionController(topo)
    conn = make_conn()
    result = controller.admit(conn, ROUTE, static_portable=False)
    assert result.accepted
    for link in topo.path_links(ROUTE):
        assert link.rate_of(conn.conn_id) == 16.0
        assert link.buffers[conn.conn_id] > 0


def test_mobile_pinned_at_floor_static_gets_stamp():
    topo = make_topo()
    controller = AdmissionController(topo)
    mobile = controller.admit(make_conn(), ROUTE, static_portable=False)
    assert mobile.granted_rate == 16.0
    assert mobile.b_stamp == 0.0

    topo2 = make_topo()
    controller2 = AdmissionController(topo2)
    static = controller2.admit(make_conn(), ROUTE, static_portable=True)
    assert static.granted_rate == 64.0  # clamped at b_max
    assert static.b_stamp == 48.0


def test_bandwidth_rejection_identifies_link():
    topo = make_topo(wireless_capacity=1600.0)
    topo.link("air", "bs").reserve(1590.0)
    controller = AdmissionController(topo)
    result = controller.admit(make_conn(), ROUTE)
    assert not result.accepted
    assert result.reason == RejectReason.BANDWIDTH
    assert result.failed_link == ("air", "bs")
    # Nothing committed anywhere.
    for link in topo.path_links(ROUTE):
        assert not link.allocations


def test_delay_rejection():
    controller = AdmissionController(make_topo())
    result = controller.admit(make_conn(delay_bound=0.01), ROUTE)
    assert not result.accepted
    assert result.reason == RejectReason.DELAY
    assert result.d_min > 0.01


def test_jitter_rejection():
    controller = AdmissionController(make_topo())
    result = controller.admit(make_conn(jitter_bound=0.05), ROUTE)
    assert not result.accepted
    assert result.reason == RejectReason.JITTER


def test_loss_rejection_on_lossy_wireless():
    controller = AdmissionController(make_topo(error_prob=0.05))
    result = controller.admit(make_conn(loss_bound=0.01), ROUTE)
    assert not result.accepted
    assert result.reason == RejectReason.LOSS


def test_buffer_rejection():
    topo = make_topo()
    topo.link("air", "bs").buffer_capacity = 1.0
    controller = AdmissionController(topo)
    result = controller.admit(make_conn(), ROUTE)
    assert not result.accepted
    assert result.reason == RejectReason.BUFFER


def test_probe_mode_does_not_mutate():
    topo = make_topo()
    controller = AdmissionController(topo)
    conn = make_conn()
    result = controller.admit(conn, ROUTE, commit=False)
    assert result.accepted
    for link in topo.path_links(ROUTE):
        assert not link.allocations
        assert not link.buffers


def test_handoff_can_claim_reserved_bandwidth():
    topo = make_topo(wireless_capacity=100.0)
    wireless = topo.link("air", "bs")
    wireless.reserve(95.0)  # advance reservation holds nearly everything
    controller = AdmissionController(topo)
    conn = make_conn()

    refused = controller.admit(conn, ROUTE, is_handoff=False, commit=False)
    assert not refused.accepted

    granted = controller.admit(
        conn,
        ROUTE,
        is_handoff=True,
        claimable={("air", "bs"): 16.0},
    )
    assert granted.accepted
    assert wireless.reserved == pytest.approx(95.0 - 16.0)


def test_handoff_claim_capped_at_actual_reservation():
    topo = make_topo(wireless_capacity=100.0)
    topo.link("air", "bs").reserve(10.0)
    controller = AdmissionController(topo)
    conn = make_conn()
    result = controller.admit(
        conn, ROUTE, is_handoff=True, claimable={("air", "bs"): 999.0}
    )
    assert result.accepted
    assert topo.link("air", "bs").reserved == pytest.approx(0.0)


def test_best_effort_skips_reservation():
    topo = make_topo()
    controller = AdmissionController(topo)
    conn = Connection(
        src="air",
        dst="server",
        qos=QoSRequest(flowspec=FlowSpec(sigma=1.0, rho=5.0), bounds=None),
    )
    result = controller.admit(conn, ROUTE)
    assert result.accepted
    assert result.granted_rate == 0.0
    for link in topo.path_links(ROUTE):
        assert not link.allocations


def test_reverse_pass_relaxation_consumes_exact_budget():
    """Relaxed per-hop delays sum to d_budget plus the burst drain."""
    topo = make_topo()
    controller = AdmissionController(topo)
    conn = make_conn(delay_bound=1.0)
    result = controller.admit(conn, ROUTE)
    sigma = conn.qos.flowspec.sigma
    total_relaxed = sum(result.hop_delays)
    n = len(result.hop_delays)
    # sum(d_l) + (d - d_min) + sigma/b_min == (sum d_l fwd) + slack + drain
    forward_sum = total_relaxed - (1.0 - result.d_min) - sigma / conn.b_min
    assert forward_sum > 0
    assert total_relaxed == pytest.approx(
        forward_sum + (1.0 - result.d_min) + sigma / 16.0
    )


def test_rcsp_buffers_differ_from_wfq():
    wfq = AdmissionController(make_topo(), Discipline.WFQ).admit(
        make_conn(), ROUTE
    )
    rcsp = AdmissionController(make_topo(), Discipline.RCSP).admit(
        make_conn(), ROUTE
    )
    assert wfq.accepted and rcsp.accepted
    assert wfq.hop_buffers != rcsp.hop_buffers
    # WFQ buffers accumulate linearly: sigma + l * L_max.
    assert wfq.hop_buffers == [5.0, 6.0, 7.0]


def test_release_frees_all_links():
    topo = make_topo()
    controller = AdmissionController(topo)
    conn = make_conn()
    controller.admit(conn, ROUTE)
    conn.route = list(ROUTE)
    controller.release(conn)
    for link in topo.path_links(ROUTE):
        assert not link.allocations
        assert not link.buffers


def test_empty_route_rejected():
    controller = AdmissionController(make_topo())
    with pytest.raises(ValueError):
        controller.admit(make_conn(), ["air"])


def test_second_connection_sees_first_ones_floor():
    topo = make_topo(wireless_capacity=40.0)
    controller = AdmissionController(topo)
    first = controller.admit(make_conn(), ROUTE, static_portable=True)
    assert first.accepted
    # 40 - 16 = 24 floor headroom left; a second 16k floor still fits even
    # though the first connection currently *uses* 40 (16 + 24 excess).
    second = controller.admit(make_conn(), ROUTE, static_portable=False)
    assert second.accepted
