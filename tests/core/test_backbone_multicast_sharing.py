"""Multicast buffer sharing and re-rooting details (Section 4)."""

import pytest

from repro.core import BackboneManager, audio_request, video_request
from repro.network import campus_backbone
from repro.traffic import Connection


def build():
    topo = campus_backbone(["A", "B", "C"], servers=["server"])
    neighbor_bs = {
        "A": ["bs:B"],
        "B": ["bs:A", "bs:C"],
        "C": ["bs:B"],
    }
    return topo, BackboneManager(topo, neighbor_bs)


def test_shared_tree_hop_holds_one_buffer_copy():
    """Branches to bs:A and bs:C share the bs:B -> router hop: the stream
    flows once on the shared hop, so exactly one buffer is booked there."""
    topo, manager = build()
    conn = Connection(src="air:B", dst="server", qos=video_request())
    setup = manager.setup_connection(conn, "B")
    assert setup.result.accepted
    shared = topo.link("bs:B", "router")
    per_link = conn.qos.flowspec.sigma + conn.qos.flowspec.l_max
    key = (f"mc:{conn.conn_id}", shared.key)
    assert shared.buffers[key] == pytest.approx(per_link)
    # The two fan-out hops each hold one copy as well.
    for leaf_hop in (("router", "bs:A"), ("router", "bs:C")):
        link = topo.link(*leaf_hop)
        assert link.buffers[(f"mc:{conn.conn_id}", link.key)] == pytest.approx(
            per_link
        )


def test_multicast_disabled_option():
    topo, manager = build()
    conn = Connection(src="air:B", dst="server", qos=audio_request())
    setup = manager.setup_connection(conn, "B", multicast=False)
    assert setup.result.accepted
    assert setup.tree is None
    assert setup.branch_buffers == []


def test_two_connections_hold_independent_branch_buffers():
    topo, manager = build()
    conn1 = Connection(src="air:B", dst="server", qos=audio_request())
    conn2 = Connection(src="air:B", dst="server", qos=audio_request())
    manager.setup_connection(conn1, "B")
    manager.setup_connection(conn2, "B")
    shared = topo.link("bs:B", "router")
    keys = {k for k in shared.buffers if isinstance(k, tuple)}
    assert (f"mc:{conn1.conn_id}", shared.key) in keys
    assert (f"mc:{conn2.conn_id}", shared.key) in keys
    # Tearing down one leaves the other intact.
    manager.teardown_connection(conn1)
    assert (f"mc:{conn1.conn_id}", shared.key) not in shared.buffers
    assert (f"mc:{conn2.conn_id}", shared.key) in shared.buffers


def test_rapid_handoff_chain_keeps_state_consistent():
    """A -> B -> C -> B chain: after each handoff exactly one primary route
    and one branch set exist."""
    topo, manager = build()
    conn = Connection(src="air:A", dst="server", qos=audio_request())
    manager.setup_connection(conn, "A")
    for cell, src in (("B", "air:B"), ("C", "air:C"), ("B", "air:B")):
        setup = manager.handoff(conn, cell, new_src=src)
        assert setup.result.accepted
        # Exactly one wireless link carries the connection.
        carrying = [
            link.key for link in topo.links
            if conn.conn_id in link.allocations and str(link.src).startswith("air:")
        ]
        assert carrying == [(src, f"bs:{cell}")]
    assert conn.handoffs == 3
    manager.teardown_connection(conn)
    for link in topo.links:
        assert conn.conn_id not in link.allocations
        assert not any(
            isinstance(k, tuple) and k[0] == f"mc:{conn.conn_id}"
            for k in link.buffers
        )
