"""Tests for next-cell prediction and the lounge count predictors."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    PredictionLevel,
    ProfileAwarePredictor,
    linear_ls_fit,
    linear_ls_predict,
    one_step_memory_predict,
    paper_printed_predict,
)
from repro.profiles import CellClass, ProfileServer


# -- the level cascade ---------------------------------------------------------------


def build_server():
    server = ProfileServer()
    server.register_cell("D", CellClass.CORRIDOR, neighbors=["A", "C", "E"])
    server.register_cell("A", CellClass.OFFICE)
    server.cell_profile("A").occupants.add("faculty")
    return server


def test_level1_portable_triplet_wins():
    server = build_server()
    predictor = ProfileAwarePredictor(server)
    server.seed_presence("p", "C")
    server.report_handoff("p", "C", "D")
    server.report_handoff("p", "D", "E")
    server.report_handoff("p", "E", "D")  # context now (E, D)... rebuild:
    server.report_handoff("p", "D", "E")
    # (C, D) -> E learned for this portable.
    prediction = predictor.predict_for("p", "D", previous_cell="C")
    assert prediction.level is PredictionLevel.PORTABLE_PROFILE
    assert prediction.cell == "E"


def test_level2_occupant_rule():
    server = build_server()
    predictor = ProfileAwarePredictor(server)
    # Faculty has no history, but office A is a neighbor and faculty is a
    # regular occupant of A.
    prediction = predictor.predict_for("faculty", "D", previous_cell="C")
    assert prediction.level is PredictionLevel.CELL_PROFILE
    assert prediction.cell == "A"


def test_level2_aggregate_history():
    server = build_server()
    predictor = ProfileAwarePredictor(server)
    for i in range(5):
        server.report_handoff(f"u{i}", "D", "E")
    prediction = predictor.predict_for("stranger", "D", previous_cell=None)
    assert prediction.level is PredictionLevel.CELL_PROFILE
    assert prediction.cell == "E"


def test_level3_default_when_nothing_known():
    server = ProfileServer()
    server.register_cell("X", CellClass.DEFAULT)
    predictor = ProfileAwarePredictor(server)
    prediction = predictor.predict_for("stranger", "X")
    assert prediction.level is PredictionLevel.DEFAULT
    assert prediction.cell is None


def test_levels_parameter_disables_stages():
    server = build_server()
    predictor = ProfileAwarePredictor(server)
    server.seed_presence("p", "C")
    server.report_handoff("p", "C", "D")
    server.report_handoff("p", "D", "E")
    with_l1 = predictor.predict_for("p", "D", "C")
    without_l1 = predictor.predict_for("p", "D", "C", levels=(2,))
    assert with_l1.level is PredictionLevel.PORTABLE_PROFILE
    assert without_l1.level is not PredictionLevel.PORTABLE_PROFILE


def test_context_pulled_from_server_when_missing():
    server = build_server()
    predictor = ProfileAwarePredictor(server)
    server.seed_presence("p", "C")
    server.report_handoff("p", "C", "D")
    server.report_handoff("p", "D", "E")
    server.report_handoff("p", "E", "D")
    # previous_cell omitted: the server knows the context is (E, D).
    prediction = predictor.predict_for("p", "D")
    assert prediction.cell is not None


# -- the least-squares predictor (cafeteria) ----------------------------------------------


def test_ls_fit_slope_matches_paper():
    a, _ = linear_ls_fit([2.0, 5.0, 8.0], t=0.0)
    assert a == pytest.approx((8.0 - 2.0) / 2)


def test_ls_predict_extends_a_perfect_line():
    # Points on n = 3x + 1 at x = -2, -1, 0 -> predict 4 at x = 1.
    assert linear_ls_predict([-5.0, -2.0, 1.0], t=0.0) == pytest.approx(4.0)


def test_ls_predict_constant_series():
    assert linear_ls_predict([7.0, 7.0, 7.0]) == pytest.approx(7.0)


def test_ls_predict_clamps_negative():
    assert linear_ls_predict([9.0, 5.0, 1.0]) == 0.0  # trend hits -3


def test_ls_predict_requires_three_samples():
    with pytest.raises(ValueError):
        linear_ls_predict([1.0, 2.0])


def test_printed_formula_collapses_to_mean():
    """The paper's printed intercept makes the 'prediction' the 3-point
    mean — the erratum documented in DESIGN.md."""
    samples = [2.0, 11.0, 14.0]
    assert paper_printed_predict(samples, t=5.0) == pytest.approx(
        sum(samples) / 3
    )
    # Our corrected fit genuinely extrapolates.
    assert linear_ls_predict(samples, t=5.0) > max(samples) - 6.0


@given(
    st.floats(min_value=0.0, max_value=1e4),
    st.floats(min_value=-100.0, max_value=100.0),
    st.floats(min_value=-1e3, max_value=1e3),
)
def test_property_ls_exact_on_lines(intercept, slope, t):
    """An exact linear series is predicted exactly (up to clamping)."""
    samples = [intercept + slope * (t - k) for k in (2, 1, 0)]
    expected = intercept + slope * (t + 1)
    predicted = linear_ls_predict(samples, t=t)
    assert predicted == pytest.approx(max(0.0, expected), abs=1e-6 * (1 + abs(expected)))


def test_one_step_memory():
    assert one_step_memory_predict(13.0) == 13.0
    with pytest.raises(ValueError):
        one_step_memory_predict(-1.0)
