"""Tests for cafeteria and default-lounge slot-based reservation."""

import pytest

from repro.core import (
    CafeteriaReservation,
    CellReservations,
    DefaultLoungeReservation,
    ProbabilisticAdmission,
    SlotCounter,
)
from repro.des import Environment
from repro.network import Link


def build(cls, distribution=None, default_neighbors=(), **kwargs):
    env = Environment()
    own = CellReservations(Link("a", "b", capacity=1600.0))
    n1 = CellReservations(Link("c", "d", capacity=1600.0))
    n2 = CellReservations(Link("e", "f", capacity=1600.0))
    process = cls(
        env,
        "cafe",
        own,
        {"n1": n1, "n2": n2},
        handoff_distribution=lambda: distribution or {},
        per_user_bandwidth=16.0,
        slot_duration=kwargs.pop("slot_duration", 60.0),
        default_neighbors=default_neighbors,
        **kwargs,
    )
    env.process(process.run())
    return env, process, own, n1, n2


# -- SlotCounter ------------------------------------------------------------------


def test_slot_counter_roll_cycle():
    counter = SlotCounter()
    counter.count()
    counter.count(2)
    assert counter.current == 3
    assert counter.roll() == 3
    assert counter.current == 0
    assert counter.history == [3]


def test_slot_counter_last_needs_enough_history():
    counter = SlotCounter()
    counter.roll()
    counter.roll()
    assert counter.last(3) is None
    counter.roll()
    assert counter.last(3) == [0, 0, 0]


def test_slot_counter_bounded_history():
    counter = SlotCounter(history=3)
    for i in range(6):
        counter.count(i)
        counter.roll()
    assert counter.history == [3, 4, 5]
    with pytest.raises(ValueError):
        SlotCounter(history=2)


# -- CafeteriaReservation --------------------------------------------------------------


def test_cafeteria_warms_up_with_one_step_memory():
    env, process, own, n1, n2 = build(
        CafeteriaReservation, distribution={"n1": 1.0}
    )
    for _ in range(4):
        process.handoff_out()
    env.run(until=61.0)  # one closed slot: count 4, <3 slots of history
    assert process.predicted_out == pytest.approx(4.0)
    assert n1.aggregate_for(process.tag) == pytest.approx(4 * 16.0)


def test_cafeteria_linear_extrapolation_after_three_slots():
    env, process, own, n1, n2 = build(
        CafeteriaReservation, distribution={"n1": 1.0}
    )

    def feed():
        # Slot counts 2, 4, 6 -> LS predicts 8.
        for count in (2, 4, 6):
            for _ in range(count):
                process.handoff_out()
            yield env.timeout(60.0)

    env.process(feed())
    env.run(until=185.0)
    assert process.predicted_out == pytest.approx(8.0)
    assert n1.aggregate_for(process.tag) == pytest.approx(8 * 16.0)


def test_cafeteria_distribution_split():
    env, process, own, n1, n2 = build(
        CafeteriaReservation, distribution={"n1": 0.25, "n2": 0.75}
    )
    for _ in range(4):
        process.handoff_out()
    env.run(until=61.0)
    assert n1.aggregate_for(process.tag) == pytest.approx(4 * 0.25 * 16.0)
    assert n2.aggregate_for(process.tag) == pytest.approx(4 * 0.75 * 16.0)


def test_cafeteria_reserves_locally_against_default_neighbor():
    env, process, own, n1, n2 = build(
        CafeteriaReservation,
        distribution={"n1": 1.0},
        default_neighbors=["n2"],
    )
    for _ in range(5):
        process.handoff_in()
    env.run(until=61.0)
    assert process.predicted_in == pytest.approx(5.0)
    assert own.aggregate_for(("cafeteria-in", "cafe")) == pytest.approx(5 * 16.0)


def test_cafeteria_no_local_reservation_without_default_neighbor():
    env, process, own, n1, n2 = build(CafeteriaReservation, distribution={"n1": 1.0})
    for _ in range(5):
        process.handoff_in()
    env.run(until=61.0)
    assert own.aggregate_for(("cafeteria-in", "cafe")) == 0.0


def test_slot_duration_validation():
    with pytest.raises(ValueError):
        build(CafeteriaReservation, slot_duration=0.0)


# -- DefaultLoungeReservation ---------------------------------------------------------------


def test_default_lounge_one_step_memory():
    env, process, own, n1, n2 = build(
        DefaultLoungeReservation, distribution={"n1": 1.0}
    )

    def feed():
        for count in (3, 7):
            for _ in range(count):
                process.handoff_out()
            yield env.timeout(60.0)

    env.process(feed())
    env.run(until=125.0)
    # One-step memory: prediction equals the last closed slot (7).
    assert process.predicted_out == pytest.approx(7.0)
    assert n1.aggregate_for(process.tag) == pytest.approx(7 * 16.0)


def test_default_lounge_uniform_fallback_without_distribution():
    env, process, own, n1, n2 = build(DefaultLoungeReservation)
    for _ in range(4):
        process.handoff_out()
    env.run(until=61.0)
    assert n1.aggregate_for(process.tag) == pytest.approx(2 * 16.0)
    assert n2.aggregate_for(process.tag) == pytest.approx(2 * 16.0)


def test_default_lounge_probabilistic_local_reservation():
    admission = ProbabilisticAdmission(
        capacity=40.0, window=0.05, p_qos=0.02,
        types=[(1.0, 5.0, 0.7), (4.0, 4.0, 0.7)],
    )
    def occupancy():
        return ([5, 1], [3, 0])

    env, process, own, n1, n2 = build(
        DefaultLoungeReservation,
        default_neighbors=["n1"],
        admission=admission,
        occupancy=occupancy,
    )
    env.run(until=61.0)
    reserved = own.aggregate_for(("default-in", "cafe"))
    max_counts = admission.max_admissible_counts([5, 1], [3, 0])
    assert reserved == pytest.approx(admission.reservation_for(max_counts))


def test_default_lounge_without_admission_skips_local():
    env, process, own, n1, n2 = build(
        DefaultLoungeReservation, default_neighbors=["n1"]
    )
    env.run(until=61.0)
    assert own.aggregate_for(("default-in", "cafe")) == 0.0
