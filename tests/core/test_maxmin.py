"""Tests for the centralized max-min reference allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    MaxMinProblem,
    connection_bottlenecks,
    is_maxmin_fair,
    maxmin_allocation,
    network_bottleneck_links,
)


def single_link_problem(capacity, demands):
    problem = MaxMinProblem()
    problem.add_link("l", capacity)
    for i, demand in enumerate(demands):
        problem.add_connection(f"c{i}", ["l"], demand)
    return problem


def test_equal_split_without_demands():
    problem = single_link_problem(90.0, [float("inf")] * 3)
    allocation = maxmin_allocation(problem)
    assert all(v == pytest.approx(30.0) for v in allocation.values())


def test_small_demand_frees_capacity_for_others():
    problem = single_link_problem(90.0, [10.0, float("inf"), float("inf")])
    allocation = maxmin_allocation(problem)
    assert allocation["c0"] == pytest.approx(10.0)
    assert allocation["c1"] == pytest.approx(40.0)
    assert allocation["c2"] == pytest.approx(40.0)


def test_all_satisfied_leaves_slack():
    problem = single_link_problem(100.0, [10.0, 20.0])
    allocation = maxmin_allocation(problem)
    assert allocation == {"c0": pytest.approx(10.0), "c1": pytest.approx(20.0)}


def test_zero_capacity_gives_zero():
    problem = single_link_problem(0.0, [float("inf")] * 2)
    allocation = maxmin_allocation(problem)
    assert all(v == 0.0 for v in allocation.values())


def test_classic_line_network():
    """Three-link line: a long flow + three one-hop flows (textbook case)."""
    problem = MaxMinProblem()
    for link_id in ("l0", "l1", "l2"):
        problem.add_link(link_id, 30.0)
    problem.add_connection("long", ["l0", "l1", "l2"])
    problem.add_connection("h0", ["l0"])
    problem.add_connection("h1", ["l1"])
    problem.add_connection("h2", ["l2"])
    allocation = maxmin_allocation(problem)
    assert allocation["long"] == pytest.approx(15.0)
    for h in ("h0", "h1", "h2"):
        assert allocation[h] == pytest.approx(15.0)


def test_heterogeneous_bottlenecks():
    problem = MaxMinProblem()
    problem.add_link("thin", 10.0)
    problem.add_link("fat", 100.0)
    problem.add_connection("both", ["thin", "fat"])
    problem.add_connection("fat_only", ["fat"])
    allocation = maxmin_allocation(problem)
    assert allocation["both"] == pytest.approx(10.0)
    assert allocation["fat_only"] == pytest.approx(90.0)


def test_problem_validation():
    problem = MaxMinProblem()
    with pytest.raises(ValueError):
        problem.add_link("l", -1.0)
    problem.add_link("l", 10.0)
    with pytest.raises(ValueError):
        problem.add_connection("c", ["l"], demand=-1.0)
    with pytest.raises(KeyError):
        problem.add_connection("c", ["ghost"])


def test_certificate_accepts_optimal_rejects_suboptimal():
    problem = single_link_problem(90.0, [float("inf")] * 3)
    optimal = maxmin_allocation(problem)
    assert is_maxmin_fair(problem, optimal)
    assert not is_maxmin_fair(problem, {"c0": 10.0, "c1": 10.0, "c2": 10.0})
    assert not is_maxmin_fair(problem, {"c0": 50.0, "c1": 30.0, "c2": 30.0})


def test_connection_bottlenecks_identified():
    problem = MaxMinProblem()
    problem.add_link("thin", 10.0)
    problem.add_link("fat", 100.0)
    problem.add_connection("both", ["thin", "fat"])
    problem.add_connection("fat_only", ["fat"])
    allocation = maxmin_allocation(problem)
    bottlenecks = connection_bottlenecks(problem, allocation)
    assert bottlenecks["both"] == "thin"
    assert bottlenecks["fat_only"] == "fat"


def test_network_bottlenecks_are_saturated_equalizers():
    """Section 5.2: a network bottleneck is a bottleneck for ALL of its
    connections.  'fat' is saturated but not a bottleneck for 'both' (which
    is pinned at 'thin'), so only 'thin' qualifies."""
    problem = MaxMinProblem()
    problem.add_link("thin", 10.0)
    problem.add_link("fat", 100.0)
    problem.add_connection("both", ["thin", "fat"])
    problem.add_connection("fat_only", ["fat"])
    allocation = maxmin_allocation(problem)
    assert set(network_bottleneck_links(problem, allocation)) == {"thin"}

    # With symmetric single-hop flows, the shared link is a network
    # bottleneck outright.
    single = MaxMinProblem()
    single.add_link("l", 30.0)
    single.add_connection("a", ["l"])
    single.add_connection("b", ["l"])
    allocation = maxmin_allocation(single)
    assert network_bottleneck_links(single, allocation) == ["l"]


conn_strategy = st.lists(
    st.tuples(
        st.lists(st.sampled_from(["l0", "l1", "l2", "l3"]), min_size=1,
                 max_size=4, unique=True),
        st.one_of(st.just(float("inf")),
                  st.floats(min_value=0.0, max_value=50.0)),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=4, max_size=4),
    conn_strategy,
)
def test_property_allocation_is_maxmin_fair(capacities, conns):
    """Progressive filling always satisfies the max-min certificate."""
    problem = MaxMinProblem()
    for i, capacity in enumerate(capacities):
        problem.add_link(f"l{i}", capacity)
    for i, (path, demand) in enumerate(conns):
        problem.add_connection(f"c{i}", path, demand)
    allocation = maxmin_allocation(problem)
    assert is_maxmin_fair(problem, allocation, tol=1e-6)


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=1000.0),
    st.integers(min_value=1, max_value=10),
)
def test_property_single_link_full_utilization(capacity, n):
    """With unbounded demands a link is used exactly to capacity."""
    problem = single_link_problem(capacity, [float("inf")] * n)
    allocation = maxmin_allocation(problem)
    assert sum(allocation.values()) == pytest.approx(capacity)
