"""Tests for QoS bounds and requests."""

import pytest

from repro.core import QoSBounds, QoSRequest, ServiceClass, audio_request, video_request
from repro.traffic import FlowSpec


def test_bounds_validation():
    with pytest.raises(ValueError):
        QoSBounds(0.0, 10.0)
    with pytest.raises(ValueError):
        QoSBounds(10.0, 5.0)


def test_bounds_span_and_fixed():
    bounds = QoSBounds(16.0, 64.0)
    assert bounds.span == 48.0
    assert not bounds.is_fixed
    assert QoSBounds(16.0, 16.0).is_fixed


def test_bounds_clamp():
    bounds = QoSBounds(16.0, 64.0)
    assert bounds.clamp(5.0) == 16.0
    assert bounds.clamp(40.0) == 40.0
    assert bounds.clamp(100.0) == 64.0


def test_bounds_contains():
    bounds = QoSBounds(16.0, 64.0)
    assert bounds.contains(16.0)
    assert bounds.contains(64.0)
    assert not bounds.contains(15.9)
    assert not bounds.contains(64.1)


def test_request_validation():
    spec = FlowSpec(sigma=1.0, rho=10.0)
    with pytest.raises(ValueError):
        QoSRequest(flowspec=spec, bounds=None, delay_bound=0.0)
    with pytest.raises(ValueError):
        QoSRequest(flowspec=spec, bounds=None, jitter_bound=-1.0)
    with pytest.raises(ValueError):
        QoSRequest(flowspec=spec, bounds=None, loss_bound=0.0)
    with pytest.raises(ValueError):
        QoSRequest(flowspec=spec, bounds=None, loss_bound=1.5)


def test_best_effort_request():
    request = QoSRequest(flowspec=FlowSpec(sigma=1.0, rho=10.0), bounds=None)
    assert request.service_class == ServiceClass.BEST_EFFORT
    with pytest.raises(ValueError):
        _ = request.b_min
    with pytest.raises(ValueError):
        _ = request.b_max


def test_guaranteed_request_accessors():
    request = audio_request()
    assert request.service_class == ServiceClass.GUARANTEED
    assert request.b_min == 16.0
    assert request.b_max == 64.0
    assert request.flowspec.rho == 16.0


def test_presets_match_paper_ranges():
    """Section 3.2: audio 16-64ish kbps adaptivity, video 60-600 kbps."""
    video = video_request()
    assert video.b_min == 60.0
    assert video.b_max == 600.0
    audio = audio_request(b_min=32.0, b_max=128.0)
    assert audio.bounds.span == 96.0


def test_preset_bounds_internally_consistent():
    """Default jitter/delay bounds must admit the request on one fast hop."""
    from repro.network import cumulative_jitter, e2e_delay_lower_bound

    for request in (audio_request(), video_request()):
        sigma = request.flowspec.sigma
        l_max = request.flowspec.l_max
        jitter = cumulative_jitter(sigma, request.b_min, l_max, hop_index=3)
        assert jitter <= request.jitter_bound
        d_min = e2e_delay_lower_bound(
            sigma, request.b_min, l_max, [1600.0, 10_000.0, 100_000.0]
        )
        assert d_min <= request.delay_bound
