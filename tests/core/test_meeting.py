"""Tests for the meeting-room advance reservation process."""

import pytest

from repro.core import CellReservations, MeetingRoomReservation
from repro.des import Environment
from repro.network import Link
from repro.profiles import BookingCalendar, Meeting


def build(meeting, per_user=16.0, distribution=None):
    env = Environment()
    room_link = Link("bs:room", "air:room", capacity=1600.0)
    hall_link = Link("bs:hall", "air:hall", capacity=1600.0)
    room = CellReservations(room_link)
    hall = CellReservations(hall_link)
    process = MeetingRoomReservation(
        env,
        "room",
        room,
        {"hall": hall},
        handoff_distribution=(lambda: distribution or {}),
        per_user_bandwidth=per_user,
        delta_s=600.0,
        delta_a=300.0,
        start_release=300.0,
        end_release=900.0,
    )
    env.process(process.run(BookingCalendar([meeting])))
    return env, process, room, hall


MEETING = Meeting(start=2000.0, end=6000.0, attendees=5)


def test_no_reservation_before_window():
    env, process, room, _ = build(MEETING)
    env.run(until=MEETING.start - 601.0)
    assert room.aggregate_for(process.tag) == 0.0


def test_full_reservation_at_window_open():
    env, process, room, _ = build(MEETING)
    env.run(until=MEETING.start - 599.0)
    assert room.aggregate_for(process.tag) == pytest.approx(5 * 16.0)


def test_reservation_shrinks_with_arrivals():
    env, process, room, _ = build(MEETING)
    env.run(until=MEETING.start - 100.0)
    process.attendee_arrived()
    process.attendee_arrived()
    assert room.aggregate_for(process.tag) == pytest.approx(3 * 16.0)
    for _ in range(3):
        process.attendee_arrived()
    assert room.aggregate_for(process.tag) == 0.0


def test_overfull_meeting_never_negative():
    env, process, room, _ = build(MEETING)
    env.run(until=MEETING.start - 100.0)
    for _ in range(8):  # more than expected show up
        process.attendee_arrived()
    assert room.aggregate_for(process.tag) == 0.0


def test_start_timer_releases_unused():
    env, process, room, _ = build(MEETING)
    env.run(until=MEETING.start - 100.0)
    process.attendee_arrived()  # only 1 of 5 shows up
    env.run(until=MEETING.start + 301.0)
    assert room.aggregate_for(process.tag) == 0.0


def test_outbound_reservations_sized_by_present_attendees():
    env, process, room, hall = build(MEETING, distribution={"hall": 1.0})
    env.run(until=MEETING.start - 100.0)
    for _ in range(4):
        process.attendee_arrived()
    env.run(until=MEETING.end - 299.0)
    # 4 attendees present -> hall reserves for 4 leavers.
    assert hall.aggregate_for(process.tag) == pytest.approx(4 * 16.0)
    process.attendee_left()
    assert hall.aggregate_for(process.tag) == pytest.approx(3 * 16.0)


def test_outbound_split_by_handoff_distribution():
    env = Environment()
    room = CellReservations(Link("a", "b", capacity=1600.0))
    left = CellReservations(Link("c", "d", capacity=1600.0))
    right = CellReservations(Link("e", "f", capacity=1600.0))
    process = MeetingRoomReservation(
        env,
        "room",
        room,
        {"left": left, "right": right},
        handoff_distribution=lambda: {"left": 0.75, "right": 0.25},
        per_user_bandwidth=16.0,
    )
    meeting = Meeting(start=1000.0, end=3000.0, attendees=4)
    env.process(process.run(BookingCalendar([meeting])))
    env.run(until=meeting.start - 100.0)
    for _ in range(4):
        process.attendee_arrived()
    env.run(until=meeting.end - 200.0)
    assert left.aggregate_for(process.tag) == pytest.approx(4 * 0.75 * 16.0)
    assert right.aggregate_for(process.tag) == pytest.approx(4 * 0.25 * 16.0)


def test_uniform_fallback_without_history():
    env, process, room, hall = build(MEETING, distribution=None)
    env.run(until=MEETING.start - 100.0)
    process.attendee_arrived()
    env.run(until=MEETING.end - 200.0)
    # Single neighbor -> uniform split is 100% to the hall.
    assert hall.aggregate_for(process.tag) == pytest.approx(16.0)


def test_end_timer_releases_neighbors():
    env, process, room, hall = build(MEETING, distribution={"hall": 1.0})
    env.run(until=MEETING.start - 100.0)
    for _ in range(5):
        process.attendee_arrived()
    env.run(until=MEETING.end + 901.0)
    assert hall.aggregate_for(process.tag) == 0.0


def test_back_to_back_meetings_served_in_order():
    env = Environment()
    room = CellReservations(Link("a", "b", capacity=1600.0))
    hall = CellReservations(Link("c", "d", capacity=1600.0))
    process = MeetingRoomReservation(
        env, "room", room, {"hall": hall},
        handoff_distribution=lambda: {"hall": 1.0},
        per_user_bandwidth=16.0, end_release=300.0,
    )
    cal = BookingCalendar([
        Meeting(start=1000.0, end=2000.0, attendees=2),
        Meeting(start=4000.0, end=5000.0, attendees=7),
    ])
    env.process(process.run(cal))
    env.run(until=3500.0)
    assert room.aggregate_for(process.tag) == pytest.approx(7 * 16.0)
