"""Tests for the DES mobility models."""

import random

import pytest

from repro.des import Environment
from repro.mobility import (
    CafeteriaPatron,
    CorridorTransit,
    FloorPlan,
    MeetingAttendee,
    OfficeWorker,
    RandomWalker,
    campus_floorplan,
    lunch_intensity,
    patron_spawner,
    walk_path,
)
from repro.profiles import CellClass, Meeting
from repro.wireless import Portable


def recording_mover(log):
    def mover(portable, to_cell):
        log.append((portable.portable_id, portable.current_cell, to_cell))
        portable.move_to(to_cell, 0.0)

    return mover


def place(plan, pid, cell):
    p = Portable(pid)
    p.move_to(cell, 0.0)
    return p


def test_move_validates_adjacency():
    plan = campus_floorplan()
    env = Environment()
    log = []
    p = place(plan, "u", "cor-1")
    model = RandomWalker(env, plan, p, recording_mover(log), random.Random(1))
    with pytest.raises(ValueError):
        model.move("cafeteria")  # not adjacent to cor-1


def test_route_to_bfs_shortest():
    plan = campus_floorplan()
    env = Environment()
    p = place(plan, "u", "office-1")
    model = RandomWalker(env, plan, p, recording_mover([]), random.Random(1))
    route = model.route_to("cafeteria")
    assert route == ["cor-1", "cor-2", "cor-3", "cor-4", "cafeteria"]
    assert model.route_to("office-1") == []


def test_route_to_unreachable_raises():
    plan = FloorPlan()
    plan.add_cell("a", CellClass.CORRIDOR)
    plan.add_cell("b", CellClass.CORRIDOR)
    env = Environment()
    p = place(plan, "u", "a")
    model = RandomWalker(env, plan, p, recording_mover([]), random.Random(1))
    with pytest.raises(ValueError):
        model.route_to("b")


def test_walk_path_visits_each_cell():
    plan = campus_floorplan()
    env = Environment()
    log = []
    p = place(plan, "u", "office-1")
    model = RandomWalker(env, plan, p, recording_mover(log), random.Random(1))
    env.process(walk_path(model, model.route_to("meeting")))
    env.run()
    assert [to for _, _, to in log] == ["cor-1", "cor-2", "cor-3", "meeting"]


def test_random_walker_respects_max_moves():
    plan = campus_floorplan()
    env = Environment()
    log = []
    p = place(plan, "u", "cor-2")
    model = RandomWalker(
        env, plan, p, recording_mover(log), random.Random(2),
        dwell_mean=10.0, max_moves=5,
    )
    env.process(model.run())
    env.run()
    assert len(log) == 5
    # Every move is between adjacent cells.
    for _, frm, to in log:
        assert to in plan.neighbors(frm)


def test_corridor_transit_moves_linearly_until_room():
    plan = campus_floorplan()
    env = Environment()
    log = []
    p = place(plan, "u", "cor-1")
    model = CorridorTransit(
        env, plan, p, recording_mover(log), random.Random(3),
        entry_from="office-1",
    )
    env.process(model.run())
    env.run()
    cells_visited = [to for _, _, to in log]
    # Never doubles back: strictly forward along the spine into a room.
    assert len(cells_visited) == len(set(cells_visited))
    assert plan.cell_class(cells_visited[-1]) is not CellClass.CORRIDOR


def test_office_worker_returns_home():
    plan = campus_floorplan()
    env = Environment()
    log = []
    p = place(plan, "alice", "office-1")
    model = OfficeWorker(
        env, plan, p, recording_mover(log), random.Random(4),
        home="office-1", destinations=["cafeteria"],
        office_dwell_mean=100.0, away_dwell_mean=50.0, step_mean=5.0,
    )
    env.process(model.run())
    env.run(until=2000.0)
    arrivals = [to for _, _, to in log]
    assert "cafeteria" in arrivals
    # After visiting, the worker comes home again.
    last_home = max(i for i, c in enumerate(arrivals) if c == "office-1")
    first_cafe = arrivals.index("cafeteria")
    assert last_home > first_cafe


def test_office_worker_needs_destinations():
    plan = campus_floorplan()
    env = Environment()
    p = place(plan, "alice", "office-1")
    with pytest.raises(ValueError):
        OfficeWorker(env, plan, p, recording_mover([]), random.Random(1),
                     home="office-1", destinations=[])


def test_meeting_attendee_arrives_near_start_leaves_after_end():
    plan = campus_floorplan()
    env = Environment()
    log = []
    arrival_times = {}

    def mover(portable, to_cell):
        log.append((portable.portable_id, to_cell, env.now))
        if to_cell == "meeting":
            arrival_times[portable.portable_id] = env.now
        portable.move_to(to_cell, env.now)

    meeting = Meeting(start=2000.0, end=4000.0, attendees=1)
    p = place(plan, "a0", "cor-1")
    model = MeetingAttendee(
        env, plan, p, mover, random.Random(5),
        meeting=meeting, room="meeting", home="cor-1",
        arrival_spread=600.0, departure_spread=300.0, step_mean=10.0,
    )
    env.process(model.run())
    env.run()
    assert "a0" in arrival_times
    assert meeting.start - 600.0 - 120.0 <= arrival_times["a0"] <= meeting.start + 400.0
    exits = [t for pid, cell, t in log if cell == "cor-3" and t > meeting.end]
    assert exits  # left the room after the end


def test_cafeteria_patron_roundtrip():
    plan = campus_floorplan()
    env = Environment()
    log = []
    p = place(plan, "u", "office-1")
    model = CafeteriaPatron(
        env, plan, p, recording_mover(log), random.Random(6),
        cafeteria="cafeteria", home="office-1", meal_mean=100.0, step_mean=5.0,
    )
    env.process(model.run())
    env.run()
    arrivals = [to for _, _, to in log]
    assert "cafeteria" in arrivals
    assert arrivals[-1] == "office-1"


def test_lunch_intensity_peaks_at_peak_time():
    peak = lunch_intensity(100.0, peak_time=100.0, peak_rate=2.0, width=50.0)
    off = lunch_intensity(300.0, peak_time=100.0, peak_rate=2.0, width=50.0)
    assert peak == pytest.approx(2.0)
    assert off < 0.1


def test_patron_spawner_thinning():
    env = Environment()
    spawned = []
    env.process(
        patron_spawner(
            env,
            random.Random(7),
            intensity=lambda t: 1.0 if 100 <= t < 200 else 0.0,
            spawn=lambda now: spawned.append(now),
            max_rate=1.0,
            horizon=400.0,
        )
    )
    env.run()
    assert spawned
    assert all(100 <= t < 200 for t in spawned)
    assert 60 <= len(spawned) <= 140  # ~100 expected


def test_patron_spawner_rejects_excess_intensity():
    env = Environment()
    env.process(
        patron_spawner(
            env,
            random.Random(8),
            intensity=lambda t: 5.0,
            spawn=lambda now: None,
            max_rate=1.0,
            horizon=100.0,
        )
    )
    with pytest.raises(ValueError):
        env.run()
