"""Tests for floorplans."""

import pytest

from repro.mobility import FloorPlan, campus_floorplan, figure4_floorplan
from repro.profiles import CellClass


def test_add_cell_and_connect():
    plan = FloorPlan()
    plan.add_cell("a", CellClass.OFFICE)
    plan.add_cell("b", CellClass.CORRIDOR)
    plan.connect("a", "b")
    assert plan.neighbors("a") == {"b"}
    assert plan.neighbors("b") == {"a"}
    plan.validate()


def test_duplicate_cell_rejected():
    plan = FloorPlan()
    plan.add_cell("a", CellClass.OFFICE)
    with pytest.raises(ValueError):
        plan.add_cell("a", CellClass.CORRIDOR)


def test_self_loop_and_unknown_rejected():
    plan = FloorPlan()
    plan.add_cell("a", CellClass.OFFICE)
    with pytest.raises(ValueError):
        plan.connect("a", "a")
    with pytest.raises(KeyError):
        plan.connect("a", "ghost")


def test_occupants_only_on_offices():
    plan = FloorPlan()
    plan.add_cell("a", CellClass.CORRIDOR)
    with pytest.raises(ValueError):
        plan.set_occupants("a", {"p"})


def test_corridor_next_continues_forward():
    plan = FloorPlan()
    for c in "abc":
        plan.add_cell(c, CellClass.CORRIDOR)
    plan.connect("a", "b")
    plan.connect("b", "c")
    assert plan.corridor_next("a", "b") == "c"
    assert plan.corridor_next("c", "b") == "a"
    # Dead end bounces back.
    assert plan.corridor_next("b", "c") == "b"


def test_figure4_environment_matches_paper():
    plan = figure4_floorplan()
    assert plan.cell_class("A") is CellClass.OFFICE
    assert plan.cell_class("B") is CellClass.OFFICE
    for corridor in "CDEFG":
        assert plan.cell_class(corridor) is CellClass.CORRIDOR
    # The faculty path C -> D -> A and student path C -> D -> E -> B exist.
    assert "D" in plan.neighbors("C")
    assert "A" in plan.neighbors("D")
    assert "E" in plan.neighbors("D")
    assert "B" in plan.neighbors("E")
    # Occupants per Section 7.1: one faculty office, one 4-person office.
    assert plan.occupants["A"] == {"faculty"}
    assert len(plan.occupants["B"]) == 4
    assert "faculty" in plan.occupants["B"]


def test_campus_floorplan_covers_every_class():
    plan = campus_floorplan()
    classes = set(plan.classes.values())
    assert {
        CellClass.OFFICE,
        CellClass.CORRIDOR,
        CellClass.MEETING_ROOM,
        CellClass.CAFETERIA,
        CellClass.DEFAULT,
    } <= classes
    plan.validate()
