"""Tests for the calibrated trace generators."""

from repro.mobility import (
    OFFICE_WEEK_TARGETS,
    class_session_trace,
    office_week_trace,
)


def test_office_week_trace_sorted_and_reproducible():
    t1 = office_week_trace(seed=1)
    t2 = office_week_trace(seed=1)
    assert [e.time for e in t1] == sorted(e.time for e in t1)
    assert [(e.time, e.portable) for e in t1] == [
        (e.time, e.portable) for e in t2
    ]
    assert office_week_trace(seed=2).events != t1.events


def test_office_week_trace_calibrated_counts():
    """Forward journeys reproduce the Section 7.1 targets exactly."""
    trace = office_week_trace(seed=1996)
    # Every journey contains exactly one C->D transit.  (The paper's student
    # outcome counts 12+173+31 sum to 216, not the stated 218 — so the
    # calibrated total is 1382 rather than 1384.)
    total_cd = trace.transitions("C", "D")
    expected_cd = sum(sum(v) for v in OFFICE_WEEK_TARGETS.values())
    assert total_cd == expected_cd == 1382
    # Entries into offices match (every D->A / E->B event is an entry).
    faculty_to_a = sum(
        1
        for e in trace
        if e.portable == "faculty" and (e.from_cell, e.to_cell) == ("D", "A")
    )
    assert faculty_to_a == OFFICE_WEEK_TARGETS["faculty"][0]
    student_to_b = sum(
        1
        for e in trace
        if str(e.portable).startswith("student")
        and (e.from_cell, e.to_cell) == ("E", "B")
    )
    assert student_to_b == OFFICE_WEEK_TARGETS["students"][1]


def test_office_week_trace_has_return_journeys():
    trace = office_week_trace(seed=3)
    assert trace.transitions("A", "D") > 0
    assert trace.transitions("B", "E") > 0


def test_class_session_arrival_departure_windows():
    start, end = 3600.0, 7200.0
    trace = class_session_trace(
        seed=2, students=30, start_time=start, end_time=end,
        arrival_spread=600.0, departure_spread=300.0,
    )
    entries = [e.time for e in trace if e.to_cell == "class"]
    exits = [e.time for e in trace if e.from_cell == "class"]
    assert len(entries) == 30
    assert len(exits) == 30
    assert all(start - 600.0 <= t <= start + 180.0 for t in entries)
    assert all(end <= t <= end + 300.0 for t in exits)


def test_class_session_walkby_traffic():
    trace = class_session_trace(
        seed=2, students=5, start_time=1800.0, end_time=3600.0,
        walkby_rate=0.1,
    )
    walkers = {e.portable for e in trace if str(e.portable).startswith("walker")}
    assert len(walkers) > 20
    # Walkers pass through: outside -> hall -> outside.
    for walker in list(walkers)[:5]:
        moves = [(e.from_cell, e.to_cell) for e in trace if e.portable == walker]
        assert moves[0] == ("outside", "hall")
        assert moves[-1][1] == "outside"


def test_class_session_enter_fraction():
    trace = class_session_trace(
        seed=2, students=0, start_time=1800.0, end_time=3600.0,
        walkby_rate=0.1, walkby_enter_fraction=1.0,
    )
    enters = sum(1 for e in trace if e.to_cell == "class")
    assert enters > 0
    # Every walk-in eventually leaves the classroom again.
    exits = sum(1 for e in trace if e.from_cell == "class")
    assert exits == enters


def test_between_and_len_helpers():
    trace = class_session_trace(seed=2, students=3, start_time=100.0,
                                end_time=200.0, walkby_rate=0.001)
    assert len(trace) == len(trace.events)
    window = trace.between(0.0, 150.0)
    assert all(0.0 <= e.time < 150.0 for e in window)
