"""Tests for the Kaufman-Roberts / Erlang-B analytic oracle, including the
cross-validation of the two-cell simulator against it."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import TwoCellConfig, TwoCellSimulator
from repro.stats import erlang_b, kaufman_roberts, multirate_blocking
from repro.traffic import TypeSpec


def test_erlang_b_known_values():
    # Classic table values.
    assert erlang_b(1, 1.0) == pytest.approx(0.5)
    assert erlang_b(2, 1.0) == pytest.approx(0.2)
    assert erlang_b(10, 5.0) == pytest.approx(0.018385, abs=1e-5)
    assert erlang_b(0, 3.0) == pytest.approx(1.0)
    assert erlang_b(5, 0.0) == 0.0


def test_erlang_b_validation():
    with pytest.raises(ValueError):
        erlang_b(-1, 1.0)
    with pytest.raises(ValueError):
        erlang_b(1, -1.0)


def test_kaufman_roberts_reduces_to_erlang_b():
    """Single class with b=1: blocking equals Erlang-B."""
    for servers, load in [(5, 2.0), (12, 9.0), (40, 30.0)]:
        blocking = multirate_blocking(servers, [(1, load)])[0]
        assert blocking == pytest.approx(erlang_b(servers, load), abs=1e-12)


def test_kaufman_roberts_distribution_properties():
    q = kaufman_roberts(10, [(1, 3.0), (2, 1.0)])
    assert q.sum() == pytest.approx(1.0)
    assert (q >= 0).all()
    assert len(q) == 11


def test_kaufman_roberts_validation():
    with pytest.raises(ValueError):
        kaufman_roberts(-1, [(1, 1.0)])
    with pytest.raises(ValueError):
        kaufman_roberts(5, [(0, 1.0)])
    with pytest.raises(ValueError):
        kaufman_roberts(5, [(1, -1.0)])


def test_wider_classes_block_more():
    blocking = multirate_blocking(20, [(1, 8.0), (4, 2.0)])
    assert blocking[1] > blocking[0]


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),
    st.floats(min_value=0.1, max_value=30.0),
)
def test_property_blocking_monotone_in_capacity(capacity, load):
    b_small = multirate_blocking(capacity, [(1, load)])[0]
    b_large = multirate_blocking(capacity + 5, [(1, load)])[0]
    assert b_large <= b_small + 1e-12


def test_two_cell_simulator_matches_kaufman_roberts():
    """With handoffs disabled the simulator is a multi-rate loss system:
    measured per-request blocking must match the analytic oracle.

    Load is raised (half the Figure 6 capacity) so blocking is well above
    Monte-Carlo noise.
    """
    types = (
        TypeSpec(bandwidth=1.0, arrival_rate=30.0, holding_mean=0.4,
                 handoff_prob=0.0),
        TypeSpec(bandwidth=4.0, arrival_rate=2.0, holding_mean=0.5,
                 handoff_prob=0.0),
    )
    capacity = 20
    offers = [(1, 30.0 * 0.4), (4, 2.0 * 0.5)]
    analytic = multirate_blocking(capacity, offers)
    # Aggregate (request-weighted) blocking probability.
    rates = [t.arrival_rate for t in types]
    expected = sum(b * r for b, r in zip(analytic, rates)) / sum(rates)

    measured = 0.0
    requests = 0
    for seed in (1, 2, 3, 4):
        config = TwoCellConfig(
            capacity=float(capacity), types=types, policy="plain",
            seed=seed, horizon=400.0, warmup=40.0,
        )
        stats = TwoCellSimulator(config).run().stats
        measured += stats.blocked
        requests += stats.new_requests
    measured /= requests

    assert measured == pytest.approx(expected, rel=0.12)
