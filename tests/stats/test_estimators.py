"""Tests for interval estimators."""

import random

import pytest

from repro.stats import batch_means, mean_confidence_interval, wilson_interval


def test_mean_ci_basic():
    mean, lo, hi = mean_confidence_interval([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert lo < 2.0 < hi


def test_mean_ci_single_sample_degenerate():
    mean, lo, hi = mean_confidence_interval([5.0])
    assert mean == lo == hi == 5.0
    with pytest.raises(ValueError):
        mean_confidence_interval([])


def test_mean_ci_coverage():
    """~95% of CIs over N(0,1) samples should cover 0."""
    rng = random.Random(12)
    covered = 0
    trials = 300
    for _ in range(trials):
        samples = [rng.gauss(0, 1) for _ in range(30)]
        _, lo, hi = mean_confidence_interval(samples)
        if lo <= 0 <= hi:
            covered += 1
    assert covered / trials > 0.88


def test_wilson_validation():
    with pytest.raises(ValueError):
        wilson_interval(1, 0)
    with pytest.raises(ValueError):
        wilson_interval(5, 3)


def test_wilson_bounds_sane():
    p, lo, hi = wilson_interval(2, 100)
    assert lo < p < hi
    assert 0.0 <= lo and hi <= 1.0
    # Zero successes still gives a positive upper bound.
    p0, lo0, hi0 = wilson_interval(0, 50)
    assert p0 == 0.0
    assert lo0 == 0.0
    assert hi0 > 0.0


def test_wilson_narrows_with_samples():
    _, lo1, hi1 = wilson_interval(5, 50)
    _, lo2, hi2 = wilson_interval(50, 500)
    assert (hi2 - lo2) < (hi1 - lo1)


def test_batch_means_validation():
    with pytest.raises(ValueError):
        batch_means([1.0] * 5, batches=1)
    with pytest.raises(ValueError):
        batch_means([1.0] * 5, batches=10)


def test_batch_means_constant_series():
    mean, lo, hi = batch_means([3.0] * 100, batches=10)
    assert mean == lo == hi == 3.0
