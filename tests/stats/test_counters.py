"""Tests for teletraffic counters."""

import pytest

from repro.stats import TeletrafficStats


def test_blocking_probability():
    stats = TeletrafficStats()
    assert stats.blocking_probability == 0.0
    for admitted in (True, True, False, True):
        stats.record_request(admitted)
    assert stats.new_requests == 4
    assert stats.blocked == 1
    assert stats.blocking_probability == pytest.approx(0.25)


def test_dropping_probability():
    stats = TeletrafficStats()
    assert stats.dropping_probability == 0.0
    stats.record_handoff(attempts=10, drops=2)
    assert stats.dropping_probability == pytest.approx(0.2)
    with pytest.raises(ValueError):
        stats.record_handoff(attempts=1, drops=2)


def test_completions_and_extra_counters():
    stats = TeletrafficStats()
    stats.record_completion(3)
    stats.bump("claims")
    stats.bump("claims", 4)
    assert stats.completed == 3
    assert stats.extra["claims"] == 5


def test_merge_pools_runs():
    a = TeletrafficStats()
    a.record_request(True)
    a.record_handoff(5, 1)
    a.bump("x", 2)
    b = TeletrafficStats()
    b.record_request(False)
    b.record_handoff(5, 0)
    b.bump("x", 3)
    b.bump("y")
    merged = a.merge(b)
    assert merged.new_requests == 2
    assert merged.blocked == 1
    assert merged.handoff_attempts == 10
    assert merged.dropping_probability == pytest.approx(0.1)
    assert merged.extra == {"x": 5, "y": 1}
    # Originals untouched.
    assert a.new_requests == 1
