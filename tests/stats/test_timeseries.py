"""Tests for binned event series."""

import pytest
from hypothesis import given, strategies as st

from repro.stats import BinnedSeries


def test_bin_width_validation():
    with pytest.raises(ValueError):
        BinnedSeries(0.0)


def test_events_fall_into_correct_bins():
    series = BinnedSeries(bin_width=60.0)
    series.add(10.0)
    series.add(59.9)
    series.add(60.0)
    assert series.count_at(0.0) == 2
    assert series.count_at(60.0) == 1
    assert series.total == 3


def test_origin_shifts_bins():
    series = BinnedSeries(bin_width=60.0, origin=30.0)
    series.add(30.0)
    series.add(89.9)
    series.add(90.0)
    assert series.count_at(30.0) == 2
    assert series.count_at(90.0) == 1


def test_negative_times_supported():
    series = BinnedSeries(bin_width=10.0)
    series.add(-5.0)
    assert series.count_at(-1.0) == 1


def test_series_dense_over_range():
    series = BinnedSeries(bin_width=10.0)
    series.add(5.0)
    series.add(35.0, n=2)
    rows = series.series(0.0, 50.0)
    assert rows == [(0.0, 1), (10.0, 0), (20.0, 0), (30.0, 2), (40.0, 0)]


def test_series_defaults_to_observed_extent():
    series = BinnedSeries(bin_width=10.0)
    series.add(12.0)
    series.add(41.0)
    rows = series.series()
    assert rows[0] == (10.0, 1)
    assert rows[-1] == (40.0, 1)
    assert BinnedSeries(1.0).series() == []


def test_peak():
    series = BinnedSeries(bin_width=10.0)
    series.add(5.0)
    series.add(25.0, n=3)
    assert series.peak() == (20.0, 3)
    with pytest.raises(ValueError):
        BinnedSeries(1.0).peak()


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), max_size=200))
def test_property_total_preserved(times):
    series = BinnedSeries(bin_width=7.0)
    for t in times:
        series.add(t)
    if times:
        assert sum(series.counts()) == len(times)
    assert series.total == len(times)
