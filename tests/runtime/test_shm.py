"""Shared-memory result transport: bit-identity, fallbacks, cleanup.

The transport's contract is invisibility: any result that round-trips
through :meth:`SharedResultTransport.encode` / :meth:`decode` must come
back *bit-identical* to what pickle would have delivered, and no segment
may survive a completed batch.  These tests pin both halves, then drive
the transport through the real process backends (pool and supervised).
"""

import math
import struct
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import pytest

from repro.runtime import ExperimentRunner, FailedResult
from repro.runtime.shm import (
    DEFAULT_MIN_ELEMENTS,
    SharedResultTransport,
    ShmChunk,
    ShmEncoded,
    active_segments,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable in this sandbox"
)

N = 64  # enough to cross a small min_elements threshold cheaply


def make_transport(**kwargs) -> SharedResultTransport:
    kwargs.setdefault("min_elements", N)
    return SharedResultTransport(**kwargs)


def roundtrip(transport: SharedResultTransport, value: Any) -> Any:
    encoded = transport.encode(value)
    decoded, _nbytes = transport.decode(encoded)
    return decoded


@dataclass
class SweepResult:
    label: str
    series: List[float]
    counts: Tuple[int, ...]
    extras: Dict[str, Any] = field(default_factory=dict)


# -- round-trip bit-identity ------------------------------------------------


def test_float_list_roundtrips_bit_identical():
    transport = make_transport()
    # Values chosen to break on any lossy path: denormals, negative zero,
    # infinities, and floats with no short decimal representation.
    src = [math.pi * i for i in range(N)] + [-0.0, 5e-324, math.inf, -math.inf]
    out = roundtrip(transport, src)
    assert type(out) is list
    assert struct.pack(f"{len(src)}d", *out) == struct.pack(f"{len(src)}d", *src)


def test_nan_payload_survives():
    transport = make_transport()
    src = [float(i) for i in range(N)] + [math.nan]
    out = roundtrip(transport, src)
    assert math.isnan(out[-1]) and out[:-1] == src[:-1]


def test_int_list_and_tuple_roundtrip():
    transport = make_transport()
    ints = [i * 31337 for i in range(N)] + [-(2 ** 63), 2 ** 63 - 1]
    out_list = roundtrip(transport, ints)
    out_tuple = roundtrip(transport, tuple(ints))
    assert out_list == ints and type(out_list) is list
    assert out_tuple == tuple(ints) and type(out_tuple) is tuple
    assert all(type(x) is int for x in out_list)


def test_array_roundtrips_with_typecode():
    transport = make_transport()
    src = array("d", (0.1 * i for i in range(N)))
    out = roundtrip(transport, src)
    assert type(out) is array
    assert out.typecode == "d"
    assert out.tobytes() == src.tobytes()


def test_ndarray_roundtrips_shape_dtype_bytes():
    numpy = pytest.importorskip("numpy")
    transport = make_transport()
    src = numpy.arange(N * 2, dtype=numpy.float64).reshape(8, -1) * math.e
    out = roundtrip(transport, {"grid": src})
    assert out["grid"].shape == src.shape
    assert out["grid"].dtype == src.dtype
    assert out["grid"].tobytes() == src.tobytes()
    # The copy must be detached from the (now unlinked) segment.
    out["grid"][0, 0] = 1.0


def test_nested_structure_and_dataclass_roundtrip():
    transport = make_transport()
    src = SweepResult(
        label="figure6",
        series=[0.5 * i for i in range(N * 2)],
        counts=tuple(range(N)),
        extras={"raw": [[float(i) for i in range(N)], "keep-me", 7]},
    )
    out = roundtrip(transport, [src, {"k": (src.series,)}])
    assert out[0] == src
    assert out[1]["k"][0] == src.series
    assert type(out[0]) is SweepResult


# -- fallback paths ----------------------------------------------------------


def test_small_payload_skips_shm_entirely():
    transport = make_transport()
    src = {"series": [1.0, 2.0, 3.0], "n": 3}
    assert transport.encode(src) is src
    assert active_segments(transport.run_id) == []


@pytest.mark.parametrize("seq", [
    [True] * N * 2,                      # bools must stay bools
    [1.0] * N + ["x"],                   # heterogeneous
    [1] * N + [2 ** 63],                 # beyond int64
    [1.0] * N + [2],                     # mixed float/int
])
def test_non_liftable_sequences_stay_on_pickle_path(seq):
    transport = make_transport()
    encoded = transport.encode(seq)
    assert not isinstance(encoded, ShmEncoded)
    assert roundtrip(transport, seq) == seq


def test_threshold_is_respected():
    transport = SharedResultTransport(min_elements=DEFAULT_MIN_ELEMENTS)
    below = [1.0] * (DEFAULT_MIN_ELEMENTS - 1)
    at = [1.0] * DEFAULT_MIN_ELEMENTS
    assert transport.encode(below) is below
    encoded = transport.encode(at)
    assert isinstance(encoded, ShmEncoded) and encoded.chunks == 1
    result, nbytes = transport.decode(encoded)
    assert result == at and nbytes == DEFAULT_MIN_ELEMENTS * 8


def test_plain_value_decodes_as_passthrough():
    transport = make_transport()
    assert transport.decode({"a": 1}) == ({"a": 1}, 0)


def test_rejects_degenerate_threshold():
    with pytest.raises(ValueError):
        SharedResultTransport(min_elements=1)


# -- cleanup -----------------------------------------------------------------


def test_decode_unlinks_the_segment():
    transport = make_transport()
    encoded = transport.encode([float(i) for i in range(N * 4)])
    assert isinstance(encoded, ShmEncoded)
    assert active_segments(transport.run_id) == [encoded.segment]
    roundtrip_result, _ = transport.decode(encoded)
    assert len(roundtrip_result) == N * 4
    assert active_segments(transport.run_id) == []


def test_sweep_collects_orphans():
    transport = make_transport()
    # A worker that dies after encode() leaves exactly this orphan.
    orphan = transport.encode([float(i) for i in range(N)])
    assert isinstance(orphan, ShmEncoded)
    other = make_transport()  # a different run id must be untouched
    keep = other.encode([float(i) for i in range(N)])
    try:
        removed = transport.sweep()
        assert removed == [orphan.segment]
        assert active_segments(transport.run_id) == []
        assert active_segments(other.run_id) == [keep.segment]
    finally:
        other.sweep()


# -- through the real process backends ---------------------------------------


SERIES_LEN = DEFAULT_MIN_ELEMENTS * 4


def _big_series(seed: int) -> Dict[str, Any]:
    return {
        "seed": seed,
        "series": [math.sin(seed + 0.001 * i) for i in range(SERIES_LEN)],
        "counts": list(range(seed, seed + SERIES_LEN)),
    }


def _maybe_crash(seed: int) -> Dict[str, Any]:
    if seed == 2:
        raise ValueError("injected fault")
    return _big_series(seed)


def test_pool_backend_matches_serial_and_leaks_nothing():
    serial = ExperimentRunner(jobs=1).run_many(_big_series, range(4))
    runner = ExperimentRunner(jobs=2)
    parallel = runner.run_many(_big_series, range(4))
    assert parallel == serial
    assert runner.telemetry.shm_results == 4
    assert runner.telemetry.shm_bytes >= 4 * SERIES_LEN * 8
    assert runner._transport is not None
    assert active_segments(runner._transport.run_id) == []


def test_pool_backend_with_shm_disabled_matches(monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "0")
    runner = ExperimentRunner(jobs=2)
    assert runner.run_many(_big_series, range(3)) == [
        _big_series(i) for i in range(3)
    ]
    assert runner.telemetry.shm_results == 0


def test_shm_flag_false_forces_pickle_path():
    runner = ExperimentRunner(jobs=2, shm=False)
    assert runner.run_many(_big_series, range(2)) == [
        _big_series(i) for i in range(2)
    ]
    assert runner.telemetry.shm_results == 0


def test_supervised_backend_transports_and_sweeps():
    runner = ExperimentRunner(jobs=2, partial=True)
    assert runner.fault_tolerant
    results = runner.run_many(_maybe_crash, range(4))
    expected = [_big_series(i) for i in range(4)]
    for seed, (got, want) in enumerate(zip(results, expected)):
        if seed == 2:
            assert isinstance(got, FailedResult)
        else:
            assert got == want
    assert runner.telemetry.shm_results == 3
    assert runner._transport is not None
    assert active_segments(runner._transport.run_id) == []
