"""Node-level fault injection: kill/hang a node mid-sweep, stay correct.

The scripted faults live in the run directory (``node-faults.json``), so
the test writes the plan *before* submitting the sweep and the node
workers — real subprocesses — fire them deterministically after their
``after_chunks``-th completed chunk.  One-shot markers guarantee each
fault fires exactly once per run directory, which is what makes the
relaunch/resume assertions exact rather than flaky.
"""

import pickle

import pytest

from repro.runtime import (
    DistributedRunError,
    ExperimentRunner,
    NodeFaultSpec,
    ResultCache,
    write_node_fault_plan,
)
from repro.runtime.cache import config_key
from repro.runtime.distributed import sweep_id_for


def _digest_worker(config):
    return {"key": config_key(config), "seed": config["seed"]}


def _configs(n=8):
    return [{"seed": i, "fault-test": True} for i in range(n)]


def _run_dir(run_root, fn, configs):
    """Predict the run directory the coordinator will use for this sweep."""
    namespace = f"{fn.__module__}.{fn.__qualname__}"
    keys = [config_key(c) for c in configs]
    return run_root / sweep_id_for(namespace, keys)[:16]


def _distributed(run_root, **kwargs):
    kwargs.setdefault("nodes", 2)
    return ExperimentRunner(backend="distributed", run_root=run_root, **kwargs)


def _canon(results):
    return pickle.dumps([pickle.loads(pickle.dumps(r)) for r in results])


def test_killed_node_is_resharded_and_output_unchanged(tmp_path):
    configs = _configs(8)  # 2 nodes x 4 chunks -> 8 single-config chunks
    serial = ExperimentRunner(jobs=1).run_many(_digest_worker, configs)

    run_dir = _run_dir(tmp_path, _digest_worker, configs)
    write_node_fault_plan(run_dir, {1: NodeFaultSpec("kill", after_chunks=1)})

    runner = _distributed(tmp_path)
    results = runner.run_many(_digest_worker, configs)
    assert _canon(results) == _canon(serial)
    # Node 1 died after publishing one chunk: the coordinator saw the
    # crash, launched a second round for the missing chunks, and nothing
    # was computed twice (8 replications for 8 configs).
    assert runner.telemetry.crashes >= 1
    assert runner.telemetry.node_restarts == 1
    assert runner.telemetry.nodes > 2
    assert runner.telemetry.replications == 8
    assert runner.telemetry.chunks == 8


def test_hung_node_is_cancelled_by_node_timeout(tmp_path):
    configs = _configs(8)
    serial = ExperimentRunner(jobs=1).run_many(_digest_worker, configs)

    run_dir = _run_dir(tmp_path, _digest_worker, configs)
    write_node_fault_plan(
        run_dir,
        {1: NodeFaultSpec("hang", after_chunks=1, hang_seconds=120.0)},
    )

    runner = _distributed(tmp_path, node_timeout=0.5)
    results = runner.run_many(_digest_worker, configs)
    assert _canon(results) == _canon(serial)
    assert runner.telemetry.timeouts >= 1
    assert runner.telemetry.node_restarts >= 1
    assert runner.telemetry.chunks == 8


def test_losing_every_node_preserves_partial_progress_for_resume(tmp_path):
    """Both nodes die after one chunk with no restart budget: the submission
    fails, but the two published chunk files survive, and a re-submission
    runs only the six missing chunks."""
    configs = _configs(8)
    serial = ExperimentRunner(jobs=1).run_many(_digest_worker, configs)

    run_dir = _run_dir(tmp_path, _digest_worker, configs)
    write_node_fault_plan(
        run_dir,
        {
            0: NodeFaultSpec("kill", after_chunks=1),
            1: NodeFaultSpec("kill", after_chunks=1),
        },
    )

    cache = ResultCache(root=tmp_path / "cache")
    first = _distributed(tmp_path, max_node_restarts=0, cache=cache)
    with pytest.raises(DistributedRunError) as excinfo:
        first.run_many(_digest_worker, configs)
    assert excinfo.value.run_dir == run_dir
    assert len(excinfo.value.missing) == 6  # each node published 1 of its 4
    # An aborted sweep caches nothing: the cache cannot go stale on resume.
    assert first.telemetry.cache_hits == 0

    # Resume: same sweep, fresh submission.  The faults already fired (one-
    # shot markers), the two completed chunks are adopted, only the six
    # missing chunks execute, and the merged output is still serial-exact.
    second = _distributed(tmp_path, cache=cache)
    results = second.run_many(_digest_worker, configs)
    assert _canon(results) == _canon(serial)
    assert second.telemetry.cache_hits == 0
    assert second.telemetry.cache_misses == 8
    assert second.telemetry.chunks_resumed == 2
    assert second.telemetry.chunks == 6
    assert second.telemetry.replications == 6

    # Third submission: everything now comes from the result cache — the
    # coordinator never launches a node.
    third = _distributed(tmp_path, cache=cache)
    again = third.run_many(_digest_worker, configs)
    assert _canon(again) == _canon(serial)
    assert third.telemetry.cache_hits == 8
    assert third.telemetry.nodes == 0
    assert third.telemetry.chunks == 0


def test_node_fault_spec_validation():
    with pytest.raises(ValueError):
        NodeFaultSpec("explode")
    with pytest.raises(ValueError):
        NodeFaultSpec("kill", after_chunks=-1)
    with pytest.raises(ValueError):
        NodeFaultSpec("hang", hang_seconds=-1.0)
