"""Integration tests for the distributed sweep backend.

Everything runs hermetically on one machine: nodes are real subprocesses
launched by :class:`LocalSubprocessTransport` against a tmp run root, so
these tests exercise the actual manifest/chunk-file/merge protocol,
including crash re-sharding and resume.
"""

import pickle

import pytest

from repro.runtime import (
    ExperimentRunner,
    FailedResult,
    ResultCache,
    WorkerError,
)
from repro.runtime.cache import config_key
from repro.runtime.distributed import (
    chunk_result_path,
    completed_chunk_ids,
    load_manifest,
    plan_shards,
)
from repro.sim import figure6_config, simulate_twocell_stats


def _digest_worker(config):
    """Cheap, importable-everywhere worker: a pure function of its config."""
    return {"key": config_key(config), "seed": config["seed"]}


def _failing_worker(config):
    if config["seed"] == 3:
        raise ValueError(f"bad seed {config['seed']}")
    return config["seed"] * 2


def _configs(n=8):
    return [{"seed": i, "payload": [i, i + 1, i + 2]} for i in range(n)]


def _distributed(run_root, **kwargs):
    kwargs.setdefault("nodes", 2)
    return ExperimentRunner(backend="distributed", run_root=run_root, **kwargs)


def _canon(results):
    """Canonical bytes for a result list.

    Each element is round-tripped through pickle individually so that
    cross-element object sharing (interned strings, shared tuples) cannot
    leak into the encoding — serial results share objects across elements,
    chunk-file results only within a chunk.  After normalization, byte
    equality holds iff every element's *content* is byte-identical.
    """
    return pickle.dumps([pickle.loads(pickle.dumps(r)) for r in results])


# -- byte-identity ---------------------------------------------------------


def test_two_node_run_is_byte_identical_to_serial(tmp_path):
    configs = _configs()
    serial = ExperimentRunner(jobs=1).run_many(_digest_worker, configs)
    runner = _distributed(tmp_path)
    distributed = runner.run_many(_digest_worker, configs, label="unit")
    assert _canon(distributed) == _canon(serial)
    assert runner.telemetry.replications == len(configs)
    assert runner.telemetry.chunks == 8  # 2 nodes x 4 chunks, 8 configs
    assert runner.telemetry.nodes == 2
    assert runner.telemetry.node_restarts == 0


def test_node_count_does_not_change_results(tmp_path):
    configs = _configs(10)
    serial = ExperimentRunner(jobs=1).run_many(_digest_worker, configs)
    for nodes in (1, 3):
        runner = _distributed(tmp_path / str(nodes), nodes=nodes)
        assert _canon(runner.run_many(_digest_worker, configs)) == _canon(serial)


def test_distributed_real_simulation_matches_serial(tmp_path):
    configs = [
        figure6_config(policy="probabilistic", window=0.05, p_qos=p_qos,
                       seed=seed, horizon=40.0)
        for p_qos in (0.005, 0.1)
        for seed in (1, 2)
    ]
    serial = ExperimentRunner(jobs=1).run_many(simulate_twocell_stats, configs)
    runner = _distributed(tmp_path)
    distributed = runner.run_many(simulate_twocell_stats, configs, label="figure6")
    assert _canon(distributed) == _canon(serial)


def test_manifest_recorded_with_label_and_resume_state(tmp_path):
    configs = _configs(6)
    runner = _distributed(tmp_path)
    runner.run_many(_digest_worker, configs, label="labelled")
    run_dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
    assert len(run_dirs) == 1
    plan = load_manifest(run_dirs[0])
    assert plan is not None
    assert plan.label == "labelled"
    assert sorted(completed_chunk_ids(run_dirs[0], plan)) == [
        c.chunk_id for c in plan.chunks
    ]


# -- failure propagation ---------------------------------------------------


def test_config_failure_surfaces_as_worker_error(tmp_path):
    configs = [{"seed": i} for i in range(6)]
    runner = _distributed(tmp_path)
    with pytest.raises(WorkerError) as excinfo:
        runner.run_many(_failing_worker, configs)
    assert excinfo.value.config == {"seed": 3}
    assert excinfo.value.index == 3


def test_partial_mode_yields_failed_result_sentinels(tmp_path):
    configs = [{"seed": i} for i in range(6)]
    runner = _distributed(tmp_path, partial=True)
    results = runner.run_many(_failing_worker, configs)
    assert [r for r in results if not isinstance(r, FailedResult)] == [
        i * 2 for i in range(6) if i != 3
    ]
    sentinel = results[3]
    assert isinstance(sentinel, FailedResult)
    assert sentinel.index == 3
    assert "bad seed 3" in sentinel.error


# -- cache interplay -------------------------------------------------------


def test_cache_short_circuits_distributed_rerun(tmp_path):
    configs = _configs(6)
    cache = ResultCache(root=tmp_path / "cache")
    first = _distributed(tmp_path / "runs", cache=cache)
    results = first.run_many(_digest_worker, configs)
    assert first.telemetry.cache_misses == 6
    second = _distributed(tmp_path / "runs", cache=cache)
    again = second.run_many(_digest_worker, configs)
    assert _canon(again) == _canon(results)
    # Every point came from cache: no nodes launched, no chunks executed.
    assert second.telemetry.cache_hits == 6
    assert second.telemetry.nodes == 0
    assert second.telemetry.chunks == 0


def test_rerun_without_cache_resumes_completed_chunks(tmp_path):
    configs = _configs(8)
    first = _distributed(tmp_path)
    results = first.run_many(_digest_worker, configs)
    second = _distributed(tmp_path)
    again = second.run_many(_digest_worker, configs)
    assert _canon(again) == _canon(results)
    assert second.telemetry.chunks_resumed == 8
    assert second.telemetry.chunks == 0
    assert second.telemetry.replications == 0
    assert second.telemetry.nodes == 0


# -- observability ---------------------------------------------------------


def test_metrics_and_traces_identical_to_serial(tmp_path):
    from repro.obs import MetricsRegistry, RingBufferSink, Tracer, use_registry, use_tracer

    configs = [
        figure6_config(policy="probabilistic", window=0.05, p_qos=0.1,
                       seed=seed, horizon=30.0)
        for seed in (1, 2)
    ]

    def observe(runner):
        registry = MetricsRegistry()
        sink = RingBufferSink()
        with use_registry(registry), use_tracer(Tracer(sink)):
            runner.run_many(simulate_twocell_stats, configs)
        return registry.to_json(indent=0), sink.records()

    serial_metrics, serial_records = observe(ExperimentRunner(jobs=1))
    dist_metrics, dist_records = observe(_distributed(tmp_path))
    assert dist_metrics == serial_metrics
    assert dist_records == serial_records


# -- protocol details ------------------------------------------------------


def test_corrupt_chunk_file_is_reexecuted(tmp_path):
    configs = _configs(6)
    first = _distributed(tmp_path)
    results = first.run_many(_digest_worker, configs)
    run_dir = next(p for p in tmp_path.iterdir() if p.is_dir())
    plan = load_manifest(run_dir)
    victim = chunk_result_path(run_dir, plan.chunks[0].chunk_id)
    victim.write_bytes(b"not a pickle")
    second = _distributed(tmp_path)
    again = second.run_many(_digest_worker, configs)
    assert _canon(again) == _canon(results)
    assert second.telemetry.chunks == 1  # only the corrupted chunk re-ran
    assert second.telemetry.chunks_resumed == len(plan.chunks) - 1


def test_run_root_isolation_between_different_sweeps(tmp_path):
    """Different configs -> different sweep id -> different run directory."""
    a = _distributed(tmp_path)
    a.run_many(_digest_worker, _configs(4))
    b = _distributed(tmp_path)
    b.run_many(_digest_worker, _configs(5))
    assert len([p for p in tmp_path.iterdir() if p.is_dir()]) == 2


def test_empty_batch_short_circuits(tmp_path):
    runner = _distributed(tmp_path)
    assert runner.run_many(_digest_worker, []) == []
    assert runner.telemetry.nodes == 0
    assert list(tmp_path.iterdir()) == []


def test_distributed_run_pins_one_des_core(tmp_path, monkeypatch):
    """Node subprocesses inherit the kernel pin, ship per-core event counts
    in their chunk files, and the coordinator's merged telemetry reports a
    single core — the same one a serial run of the sweep reports."""
    from repro.des import NATIVE_ENV, native_available

    configs = [
        figure6_config(policy="plain", horizon=25.0, seed=seed)
        for seed in (1, 2, 3, 4)
    ]
    cores = ["pure"] + (["native"] if native_available() else [])
    for core in cores:
        monkeypatch.setenv(NATIVE_ENV, core)
        serial = ExperimentRunner(jobs=1)
        serial.run_many(simulate_twocell_stats, configs)
        assert serial.telemetry.des_core == core

        runner = _distributed(tmp_path / core)
        runner.run_many(simulate_twocell_stats, configs)
        assert runner.telemetry.des_core == core
        assert runner.telemetry.des_cores == serial.telemetry.des_cores


def test_plan_shards_matches_coordinator_layout(tmp_path):
    """The on-disk manifest is exactly what plan_shards computes."""
    configs = _configs(7)
    runner = _distributed(tmp_path, nodes=3)
    runner.run_many(_digest_worker, configs)
    run_dir = next(p for p in tmp_path.iterdir() if p.is_dir())
    plan = load_manifest(run_dir)
    keys = [config_key(c) for c in configs]
    expected = plan_shards(
        f"{_digest_worker.__module__}.{_digest_worker.__qualname__}",
        keys,
        3,
        label=None,
    )
    assert plan.sweep_id == expected.sweep_id
    assert plan.chunks == expected.chunks
