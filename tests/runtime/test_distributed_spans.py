"""Span structure is a pure function of the sweep, not of its placement.

The contract under test: the *structural* spans (sweep → replication →
attempt) produced by a sweep are byte-identical — via
:func:`canonical_structure` — whether the sweep ran serially, on a
process pool, or sharded across node subprocesses; and they survive node
crashes, re-sharding, and ``--resume`` (spans minted by the first,
failed submission ride the surviving chunk files and are rebased into
the resumed sweep).  Topology spans (node/chunk) describe the placement
that actually happened and are deliberately outside the canonical form.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.obs import SpanCollector, canonical_structure, use_span_collector
from repro.runtime import (
    DistributedRunError,
    ExperimentRunner,
    NodeFaultSpec,
    write_node_fault_plan,
)
from repro.runtime.cache import config_key
from repro.runtime.distributed import node_spans_path, sweep_id_for


def _digest_worker(config):
    return {"key": config_key(config), "seed": config["seed"]}


def _flaky_worker(config):
    marker = pathlib.Path(config["marker"])
    if not marker.exists():
        marker.write_text("attempted")
        raise ValueError("first attempt fails")
    return config["seed"]


def _configs(n=8):
    return [{"seed": i, "span-test": True} for i in range(n)]


def _run_dir(run_root, fn, configs):
    namespace = f"{fn.__module__}.{fn.__qualname__}"
    keys = [config_key(c) for c in configs]
    return run_root / sweep_id_for(namespace, keys)[:16]


def _distributed(run_root, **kwargs):
    kwargs.setdefault("nodes", 2)
    return ExperimentRunner(backend="distributed", run_root=run_root, **kwargs)


def _collect(runner, configs, fn=_digest_worker, raises=None):
    collector = SpanCollector()
    with use_span_collector(collector):
        if raises is None:
            runner.run_many(fn, configs)
        else:
            with pytest.raises(raises):
                runner.run_many(fn, configs)
    return collector.spans()


# -- placement independence -------------------------------------------------


def test_structure_identical_serial_pool_distributed(tmp_path):
    configs = _configs()
    serial = _collect(ExperimentRunner(jobs=1), configs)
    pool = _collect(ExperimentRunner(jobs=2), configs)
    dist = _collect(_distributed(tmp_path), configs)

    base = canonical_structure(serial)
    assert canonical_structure(pool) == base
    assert canonical_structure(dist) == base

    def counts(spans):
        out = {}
        for s in spans:
            out[s.kind] = out.get(s.kind, 0) + 1
        return out

    assert counts(serial) == {"sweep": 1, "replication": 8, "attempt": 8}
    dist_counts = counts(dist)
    assert dist_counts["sweep"] == 1
    assert dist_counts["replication"] == 8
    assert dist_counts["attempt"] == 8
    assert dist_counts["node"] >= 2  # placement-only spans exist here...
    assert dist_counts["chunk"] == 8
    assert "node" not in counts(serial)  # ...and nowhere else


def test_structure_identical_across_node_counts(tmp_path):
    configs = _configs(10)
    base = canonical_structure(_collect(ExperimentRunner(jobs=1), configs))
    for nodes in (1, 3):
        spans = _collect(_distributed(tmp_path / str(nodes), nodes=nodes),
                         configs)
        assert canonical_structure(spans) == base


def test_serial_parentage_and_ids():
    configs = _configs(3)
    spans = {s.span_id: s for s in _collect(ExperimentRunner(jobs=1), configs)}
    sweep = spans["sweep-000"]
    assert sweep.parent_id is None
    assert sweep.status == "ok"
    for i in range(3):
        rep = spans[f"rep-{i:05d}"]
        assert rep.parent_id == "sweep-000"
        assert rep.attrs["position"] == i
        attempt = spans[f"rep-{i:05d}.a1"]
        assert attempt.parent_id == rep.span_id


def test_distributed_run_appends_live_node_span_files(tmp_path):
    configs = _configs(6)
    runner = _distributed(tmp_path)
    _collect(runner, configs)
    run_dir = _run_dir(tmp_path, _digest_worker, configs)
    live = [
        node_spans_path(run_dir, node) for node in (0, 1)
        if node_spans_path(run_dir, node).exists()
    ]
    assert live, "no live span files written"
    import json

    for path in live:
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert isinstance(record["span"], str)


def test_no_collector_installed_no_span_overhead_paths(tmp_path):
    # Without a collector the runner must not fabricate spans anywhere.
    runner = _distributed(tmp_path)
    runner.run_many(_digest_worker, _configs(4))
    assert runner.telemetry.replications == 4


# -- retries show up as attempt spans ---------------------------------------


def test_retry_produces_numbered_attempt_spans(tmp_path):
    configs = [{"seed": 0, "marker": str(tmp_path / "marker")}]
    runner = ExperimentRunner(jobs=1, max_retries=2, retry_backoff=0.0)
    spans = {s.span_id: s for s in _collect(runner, configs, fn=_flaky_worker)}
    assert spans["rep-00000.a1"].status == "error"
    assert spans["rep-00000.a2"].status == "ok"
    rep = spans["rep-00000"]
    assert rep.status == "ok"
    assert rep.attrs["attempts"] == 2


def test_exhausted_retries_settle_failed(tmp_path):
    from repro.runtime import WorkerError

    def no_retries():
        return ExperimentRunner(jobs=1, max_retries=0)

    configs = [{"seed": 0, "marker": str(tmp_path / "never-written" / "x")}]
    spans = {
        s.span_id: s
        for s in _collect(no_retries(), configs, fn=_flaky_worker,
                          raises=WorkerError)
    }
    assert spans["rep-00000.a1"].status == "error"
    assert spans["rep-00000"].status == "failed"
    assert spans["sweep-000"].status == "failed"


# -- faults and resume ------------------------------------------------------


def test_node_crash_keeps_structure_and_reports_topology(tmp_path):
    configs = _configs(8)
    base = canonical_structure(_collect(ExperimentRunner(jobs=1), configs))

    run_dir = _run_dir(tmp_path, _digest_worker, configs)
    write_node_fault_plan(run_dir, {1: NodeFaultSpec("kill", after_chunks=1)})
    runner = _distributed(tmp_path)
    spans = _collect(runner, configs)
    assert canonical_structure(spans) == base
    node_statuses = [s.status for s in spans if s.kind == "node"]
    assert "crashed" in node_statuses
    assert runner.telemetry.node_restarts == 1


def test_resume_preserves_first_attempt_spans(tmp_path):
    """Kill both nodes after one chunk each with no restart budget, then
    resubmit: the resumed sweep's merged spans must be structurally
    byte-identical to an uninterrupted run, including the replications
    that only ever executed under the first (failed) submission."""
    configs = _configs(8)
    base = canonical_structure(_collect(ExperimentRunner(jobs=1), configs))

    run_dir = _run_dir(tmp_path, _digest_worker, configs)
    write_node_fault_plan(
        run_dir,
        {
            0: NodeFaultSpec("kill", after_chunks=1),
            1: NodeFaultSpec("kill", after_chunks=1),
        },
    )
    first = _distributed(tmp_path, max_node_restarts=0)
    _collect(first, configs, raises=DistributedRunError)

    second = _distributed(tmp_path)
    spans = _collect(second, configs)
    assert second.telemetry.chunks_resumed == 2
    assert second.telemetry.chunks == 6
    assert canonical_structure(spans) == base
    # Every replication span exists exactly once, resumed chunks included.
    reps = sorted(s.span_id for s in spans if s.kind == "replication")
    assert reps == [f"rep-{i:05d}" for i in range(8)]


# -- hash-seed independence -------------------------------------------------

HASH_SEEDS = ("0", "1", "31337")

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

_SNIPPET = """
import hashlib
import sys
import tempfile

from repro.obs import SpanCollector, canonical_structure, use_span_collector
from repro.runtime import ExperimentRunner
from repro.runtime.cache import config_key as work

configs = [{"seed": i, "hashseed-span-test": True} for i in range(6)]

def structure(runner):
    collector = SpanCollector()
    with use_span_collector(collector):
        runner.run_many(work, configs)
    return canonical_structure(collector.spans())

with tempfile.TemporaryDirectory() as tmp:
    serial = structure(ExperimentRunner(jobs=1))
    dist = structure(
        ExperimentRunner(backend="distributed", nodes=2, run_root=tmp)
    )
assert serial == dist, "structure differs across backends"
print(hashlib.sha256(serial).hexdigest())
"""


def _run_snippet(hash_seed):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_canonical_structure_independent_of_hash_seed():
    outputs = {seed: _run_snippet(seed) for seed in HASH_SEEDS}
    assert len(set(outputs.values())) == 1, outputs
