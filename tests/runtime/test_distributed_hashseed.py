"""Distributed protocol must not depend on PYTHONHASHSEED.

The resume contract hangs on content addressing: a re-submission from a
*different interpreter* (different hash seed, as pool workers and cluster
nodes always are) must compute the same sweep id, the same manifest
bytes, and land in the same run directory — otherwise resume silently
degrades to "start over".  Same pattern as
``tests/sim/test_hashseed_determinism.py``: run the snippet under several
explicit hash seeds in subprocesses and require identical stdout.
"""

import os
import pathlib
import subprocess
import sys

HASH_SEEDS = ("0", "1", "31337")

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _run_snippet(snippet: str, hash_seed: str, extra_env=None) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_manifest_bytes_identical_across_hash_seeds():
    """Sweep ids and the serialized manifest are pure content functions —
    configs with sets/dicts included, since ``config_key`` canonicalizes
    before hashing."""
    snippet = """
from repro.runtime import config_key
from repro.runtime.distributed import manifest_bytes, plan_shards

configs = [
    {"seed": i, "cells": frozenset({f"cell-{i % 3}", "corridor"}), "w": 0.05}
    for i in range(11)
]
keys = [config_key(c) for c in configs]
plan = plan_shards("sweep.ns", keys, nodes=3, label="hashseed")
print(plan.sweep_id)
print(manifest_bytes(plan).decode("utf-8"))
"""
    outputs = {_run_snippet(snippet, seed) for seed in HASH_SEEDS}
    assert len(outputs) == 1, (
        "manifest depends on PYTHONHASHSEED:\n" + "\n---\n".join(sorted(outputs))
    )


def test_distributed_merge_identical_across_hash_seeds(tmp_path):
    """A real 2-node distributed run — coordinator and node subprocesses
    all hash-randomized differently — must merge to identical bytes and
    reuse one run directory across interpreters."""
    # Each seed gets its own run root so the assertion covers full
    # recomputation, not chunk-file reuse from the previous seed's run.
    outputs = set()
    for seed in HASH_SEEDS:
        root = tmp_path / f"seed-{seed}"
        snippet = f"""
import pickle

from repro.runtime import ExperimentRunner
from repro.runtime.cache import config_key

configs = [
    {{"seed": i, "tags": frozenset({{"a", "b", f"t{{i}}"}})}} for i in range(6)
]
runner = ExperimentRunner(
    backend="distributed", nodes=2, run_root={str(root)!r}
)
results = runner.run_many(config_key, configs)
canon = pickle.dumps([pickle.loads(pickle.dumps(r)) for r in results])
print(canon.hex())
"""
        outputs.add(_run_snippet(snippet, seed))
    assert len(outputs) == 1, (
        "merged distributed output depends on PYTHONHASHSEED:\n"
        + "\n---\n".join(sorted(outputs))
    )
