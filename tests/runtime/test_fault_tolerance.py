"""Fault-tolerance tests: retries, timeouts, partial results, crashes.

Faults are scripted through :class:`repro.runtime.FaultInjector` so every
scenario is deterministic: the injector fails the first N attempts of a
chosen config (exception, hang, or hard process crash) and computes
normally afterwards, with attempt counters on disk so the schedule holds
across process-pool workers.  The core acceptance property throughout:
results that survive the faults are bit-identical to a fault-free serial
run.
"""

import time
import warnings

import pytest

from repro.runtime import (
    ExperimentRunner,
    FailedResult,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    ResultCache,
    WorkerCrash,
    WorkerError,
    drop_failures,
    failed,
    succeeded,
)
from repro.sim import figure6_config, simulate_twocell_stats

CONFIGS = [1, 2, 3, 4]
EXPECTED = [1, 4, 9, 16]


def _square(x):
    return x * x


def _no_sleep(_seconds):
    return None


# -- retry with exponential backoff ----------------------------------------


def test_transient_failure_retried_serial(tmp_path):
    injector = FaultInjector(
        _square, {2: FaultSpec("raise", attempts=2)}, tmp_path
    )
    runner = ExperimentRunner(jobs=1, max_retries=3, sleep=_no_sleep)
    assert runner.run_many(injector, CONFIGS) == EXPECTED
    assert injector.attempts_for(2) == 3  # two scripted failures + success
    assert injector.attempts_for(1) == 1


def test_transient_failure_retried_process_backend(tmp_path):
    injector = FaultInjector(
        _square, {3: FaultSpec("raise", attempts=1)}, tmp_path
    )
    runner = ExperimentRunner(jobs=2, max_retries=2, sleep=_no_sleep)
    assert runner.run_many(injector, CONFIGS) == EXPECTED


def test_backoff_schedule_doubles(tmp_path):
    """Attempt k waits retry_backoff * 2**(k-1) seconds before retrying."""
    injector = FaultInjector(
        _square, {1: FaultSpec("raise", attempts=3)}, tmp_path
    )
    recorded = []
    runner = ExperimentRunner(
        jobs=1, max_retries=3, retry_backoff=0.25, sleep=recorded.append
    )
    assert runner.run_many(injector, [1]) == [1]
    assert recorded == [0.25, 0.5, 1.0]


def test_exhausted_retries_raise_worker_error_with_attempts(tmp_path):
    injector = FaultInjector(
        _square, {3: FaultSpec("raise", attempts=10)}, tmp_path
    )
    runner = ExperimentRunner(jobs=1, max_retries=2, sleep=_no_sleep)
    with pytest.raises(WorkerError) as excinfo:
        runner.run_many(injector, CONFIGS)
    err = excinfo.value
    assert err.attempts == 3
    assert err.index == 2
    assert err.config == 3
    assert isinstance(err.cause, InjectedFault)
    assert "after 3 attempts" in str(err)


def test_zero_retries_fails_on_first_attempt(tmp_path):
    injector = FaultInjector(
        _square, {1: FaultSpec("raise", attempts=1)}, tmp_path
    )
    runner = ExperimentRunner(jobs=1)
    with pytest.raises(WorkerError):
        runner.run_many(injector, CONFIGS)
    assert injector.attempts_for(1) == 1


# -- partial results --------------------------------------------------------


def test_partial_yields_failed_result_in_submission_slot(tmp_path):
    injector = FaultInjector(
        _square, {3: FaultSpec("raise", attempts=10)}, tmp_path
    )
    runner = ExperimentRunner(
        jobs=1, max_retries=1, partial=True, sleep=_no_sleep
    )
    results = runner.run_many(injector, CONFIGS)
    assert results[0] == 1 and results[1] == 4 and results[3] == 16
    sentinel = results[2]
    assert isinstance(sentinel, FailedResult)
    assert sentinel.index == 2
    assert sentinel.config == 3
    assert sentinel.attempts == 2
    assert "InjectedFault" in sentinel.error
    assert "scripted fault" in sentinel.traceback


def test_partial_preserves_order_with_multiple_failures(tmp_path):
    plan = {
        1: FaultSpec("raise", attempts=10),
        4: FaultSpec("raise", attempts=10),
    }
    injector = FaultInjector(_square, plan, tmp_path)
    runner = ExperimentRunner(jobs=2, partial=True, sleep=_no_sleep)
    results = runner.run_many(injector, CONFIGS)
    assert [f.index for f in failed(results)] == [0, 3]
    assert succeeded(results) == [4, 9]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        kept = drop_failures(results, context="unit test")
    assert kept == [4, 9]
    assert len(caught) == 1
    message = str(caught[0].message)
    assert "unit test" in message and "indices [0, 3]" in message


def test_partial_failures_are_not_cached(tmp_path):
    injector = FaultInjector(
        _square, {2: FaultSpec("raise", attempts=10)}, tmp_path / "faults"
    )
    cache = ResultCache(root=tmp_path / "cache")
    runner = ExperimentRunner(
        jobs=1, partial=True, cache=cache, sleep=_no_sleep
    )
    results = runner.run_many(injector, CONFIGS)
    assert isinstance(results[1], FailedResult)
    # Only the three successes were persisted; a later fault-free run
    # recomputes exactly the failed point and hits the cache for the rest.
    assert len(cache) == 3
    clean = ExperimentRunner(jobs=1, cache=cache)
    assert clean.run_many(_square, CONFIGS) == EXPECTED
    assert cache.hits == 3 and len(cache) == 4


# -- timeouts ---------------------------------------------------------------


def test_hung_worker_cancelled_at_timeout_process_backend(tmp_path):
    """A hung supervised worker is terminated at the deadline and the
    config rescheduled; the retry (no longer scripted to hang) succeeds."""
    injector = FaultInjector(
        _square,
        {2: FaultSpec("hang", attempts=1, hang_seconds=60.0)},
        tmp_path,
    )
    runner = ExperimentRunner(
        jobs=2, max_retries=1, timeout=0.5, sleep=_no_sleep
    )
    started = time.monotonic()
    assert runner.run_many(injector, CONFIGS) == EXPECTED
    # Cancellation, not expiry: nowhere near the 60 s scripted hang.
    assert time.monotonic() - started < 30.0


def test_hung_worker_interrupted_at_timeout_serial_backend(tmp_path):
    injector = FaultInjector(
        _square,
        {4: FaultSpec("hang", attempts=1, hang_seconds=60.0)},
        tmp_path,
    )
    runner = ExperimentRunner(
        jobs=1, max_retries=1, timeout=0.4, sleep=_no_sleep
    )
    started = time.monotonic()
    assert runner.run_many(injector, CONFIGS) == EXPECTED
    assert time.monotonic() - started < 30.0


def test_timeout_exhaustion_yields_failed_result(tmp_path):
    injector = FaultInjector(
        _square,
        {1: FaultSpec("hang", attempts=10, hang_seconds=60.0)},
        tmp_path,
    )
    runner = ExperimentRunner(
        jobs=2, max_retries=1, timeout=0.3, partial=True, sleep=_no_sleep
    )
    results = runner.run_many(injector, CONFIGS)
    sentinel = results[0]
    assert isinstance(sentinel, FailedResult)
    assert sentinel.attempts == 2
    assert "ReplicationTimeout" in sentinel.error
    assert results[1:] == EXPECTED[1:]


# -- crashes ----------------------------------------------------------------


def test_crashed_worker_retried_process_backend(tmp_path):
    injector = FaultInjector(
        _square, {2: FaultSpec("crash", attempts=1)}, tmp_path
    )
    runner = ExperimentRunner(jobs=2, max_retries=2, sleep=_no_sleep)
    assert runner.run_many(injector, CONFIGS) == EXPECTED


def test_crash_exhaustion_raises_worker_crash(tmp_path):
    injector = FaultInjector(
        _square, {2: FaultSpec("crash", attempts=10, exit_code=7)}, tmp_path
    )
    runner = ExperimentRunner(jobs=2, max_retries=1, sleep=_no_sleep)
    with pytest.raises(WorkerError) as excinfo:
        runner.run_many(injector, CONFIGS)
    assert isinstance(excinfo.value.cause, WorkerCrash)
    assert "exit code 7" in str(excinfo.value.cause)


def test_crash_demoted_to_exception_on_serial_backend(tmp_path):
    """In-coordinator crashes would kill the test process; the injector
    demotes them to InjectedFault so serial sweeps stay testable."""
    injector = FaultInjector(
        _square, {2: FaultSpec("crash", attempts=1)}, tmp_path
    )
    runner = ExperimentRunner(jobs=1, max_retries=1, sleep=_no_sleep)
    assert runner.run_many(injector, CONFIGS) == EXPECTED


# -- acceptance: faults never change surviving results ----------------------


def test_mixed_fault_sweep_bit_identical_to_fault_free_serial(tmp_path):
    """Crashes, hangs, and exceptions across a real simulation sweep: after
    retries under the supervised backend, every result equals the
    fault-free serial run bit for bit."""
    configs = [
        figure6_config(seed=seed, horizon=40.0) for seed in (1, 2, 3, 4)
    ]
    baseline = ExperimentRunner(jobs=1).run_many(
        simulate_twocell_stats, configs
    )
    plan = {
        configs[0]: FaultSpec("raise", attempts=2),
        configs[1]: FaultSpec("crash", attempts=1),
        configs[2]: FaultSpec("hang", attempts=1, hang_seconds=60.0),
    }
    injector = FaultInjector(simulate_twocell_stats, plan, tmp_path)
    runner = ExperimentRunner(
        jobs=2, max_retries=3, timeout=10.0, partial=True, sleep=_no_sleep
    )
    results = runner.run_many(injector, configs)
    assert not failed(results)
    assert results == baseline


def test_retry_results_identical_on_both_backends(tmp_path):
    baseline = ExperimentRunner(jobs=1).run_many(_square, CONFIGS)
    for jobs in (1, 2):
        injector = FaultInjector(
            _square,
            {2: FaultSpec("raise", attempts=1)},
            tmp_path / f"jobs{jobs}",
        )
        runner = ExperimentRunner(jobs=jobs, max_retries=1, sleep=_no_sleep)
        assert runner.run_many(injector, CONFIGS) == baseline


# -- constructor validation --------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_retries": -1},
        {"retry_backoff": -0.5},
        {"timeout": 0.0},
        {"timeout": -3.0},
        {"backend": "threads"},
    ],
)
def test_invalid_runner_options_rejected(kwargs):
    with pytest.raises(ValueError):
        ExperimentRunner(jobs=1, **kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "explode"},
        {"kind": "raise", "attempts": 0},
        {"kind": "hang", "hang_seconds": -1.0},
    ],
)
def test_invalid_fault_spec_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultSpec(**kwargs)


def test_fault_tolerant_property_reflects_options():
    assert not ExperimentRunner(jobs=1).fault_tolerant
    assert ExperimentRunner(jobs=1, max_retries=1).fault_tolerant
    assert ExperimentRunner(jobs=1, timeout=5.0).fault_tolerant
    assert ExperimentRunner(jobs=1, partial=True).fault_tolerant
