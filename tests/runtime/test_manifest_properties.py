"""Property tests for the distributed shard planner and merge.

The guarantees the distributed backend leans on, stated as hypotheses:

* **partition** — every sweep position appears in exactly one chunk;
* **balance** — chunk sizes differ by at most one, and so do per-node
  chunk loads under :func:`assign_chunks`;
* **order-free merge** — merging chunk results is byte-identical to the
  serial result list no matter what order (or grouping) chunks completed
  in, which is exactly why node crashes, restarts, and resume cannot
  change a sweep's output.
"""

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.distributed import (
    ChunkSpec,
    ShardPlan,
    assign_chunks,
    merge_chunk_results,
    plan_shards,
    sweep_id_for,
)


def _keys(n):
    return [f"k{i:05d}" for i in range(n)]


@given(
    n=st.integers(min_value=0, max_value=400),
    nodes=st.integers(min_value=1, max_value=16),
    cpn=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=200)
def test_every_position_in_exactly_one_chunk(n, nodes, cpn):
    plan = plan_shards("ns", _keys(n), nodes, chunks_per_node=cpn)
    seen = [i for chunk in plan.chunks for i in chunk.indices]
    assert sorted(seen) == list(range(n))
    assert len(seen) == len(set(seen)) == n


@given(
    n=st.integers(min_value=1, max_value=400),
    nodes=st.integers(min_value=1, max_value=16),
    cpn=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=200)
def test_chunk_sizes_balanced_within_one(n, nodes, cpn):
    plan = plan_shards("ns", _keys(n), nodes, chunks_per_node=cpn)
    sizes = [len(chunk.indices) for chunk in plan.chunks]
    assert max(sizes) - min(sizes) <= 1
    # Never more chunks than positions; ids are dense and ordered.
    assert [c.chunk_id for c in plan.chunks] == list(range(len(plan.chunks)))
    assert len(plan.chunks) <= n


@given(
    n=st.integers(min_value=0, max_value=400),
    nodes=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=200)
def test_chunks_are_contiguous_and_keys_aligned(n, nodes):
    keys = _keys(n)
    plan = plan_shards("ns", keys, nodes)
    for chunk in plan.chunks:
        assert list(chunk.indices) == list(
            range(chunk.indices[0], chunk.indices[0] + len(chunk.indices))
        )
        assert list(chunk.keys) == [keys[i] for i in chunk.indices]


@given(
    chunks=st.integers(min_value=0, max_value=200),
    nodes=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=200)
def test_node_assignment_balanced_within_one(chunks, nodes):
    assignments = assign_chunks(list(range(chunks)), nodes)
    assert len(assignments) == nodes
    dealt = sorted(c for bucket in assignments for c in bucket)
    assert dealt == list(range(chunks))
    loads = [len(bucket) for bucket in assignments]
    assert max(loads) - min(loads) <= 1


@given(
    n=st.integers(min_value=0, max_value=300),
    nodes=st.integers(min_value=1, max_value=16),
    shuffle_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=200)
def test_merge_of_any_completion_order_is_byte_identical_to_serial(
    n, nodes, shuffle_seed
):
    plan = plan_shards("ns", _keys(n), nodes)
    serial = [{"i": i, "v": i * i} for i in range(n)]
    chunk_ids = [c.chunk_id for c in plan.chunks]
    random.Random(shuffle_seed).shuffle(chunk_ids)  # completion order
    by_chunk = {}
    chunks = {c.chunk_id: c for c in plan.chunks}
    for chunk_id in chunk_ids:
        chunk = chunks[chunk_id]
        by_chunk[chunk_id] = [serial[i] for i in chunk.indices]
    merged = merge_chunk_results(plan, by_chunk)
    assert pickle.dumps(merged) == pickle.dumps(serial)


@given(
    n=st.integers(min_value=0, max_value=100),
    nodes_a=st.integers(min_value=1, max_value=16),
    nodes_b=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=100)
def test_sweep_id_independent_of_node_count(n, nodes_a, nodes_b):
    """Resubmitting with a different --nodes N must find the same run dir."""
    keys = _keys(n)
    a = plan_shards("ns", keys, nodes_a)
    b = plan_shards("ns", keys, nodes_b)
    assert a.sweep_id == b.sweep_id == sweep_id_for("ns", keys)


def test_merge_rejects_shape_mismatch():
    plan = ShardPlan(
        sweep_id="x",
        namespace="ns",
        label=None,
        chunks=(ChunkSpec(chunk_id=0, indices=(0, 1), keys=("a", "b")),),
    )
    with pytest.raises(ValueError):
        merge_chunk_results(plan, {0: [1]})


def test_plan_validates_arguments():
    with pytest.raises(ValueError):
        plan_shards("ns", [], 0)
    with pytest.raises(ValueError):
        plan_shards("ns", [], 1, chunks_per_node=0)
