"""Tests for the on-disk result cache: keying, hit/miss, invalidation,
corruption recovery, and LRU size management."""

import dataclasses
import os

import pytest

from repro.runtime import (
    ExperimentRunner,
    ResultCache,
    config_key,
    default_cache_dir,
    parse_size,
)
from repro.runtime.cache import CACHE_DIR_ENV
from repro.sim import figure6_config


def _double(x):
    return 2 * x


COUNTER_FILE = "calls.txt"


def _counting_worker_factory(tmp_path):
    """A worker that tallies real invocations via the filesystem (so tallies
    survive process-pool dispatch too, though these tests run serial)."""
    counter = tmp_path / COUNTER_FILE
    counter.write_text("")

    def count_calls(x):
        with open(counter, "a") as fh:
            fh.write("x\n")
        return 2 * x

    return count_calls, counter


# -- config keying ---------------------------------------------------------


def test_config_key_is_content_stable():
    a = figure6_config(seed=1, p_qos=0.01)
    b = figure6_config(seed=1, p_qos=0.01)
    assert a is not b
    assert config_key(a) == config_key(b)


def test_config_key_changes_with_any_field():
    base = figure6_config(seed=1)
    assert config_key(base) != config_key(figure6_config(seed=2))
    assert config_key(base) != config_key(figure6_config(seed=1, p_qos=0.02))
    assert config_key(base) != config_key(figure6_config(seed=1, horizon=99.0))


def test_config_key_distinguishes_dataclass_types():
    @dataclasses.dataclass(frozen=True)
    class Other:
        seed: int = 1

    assert config_key(Other()) != config_key(figure6_config(seed=1))


def test_config_key_handles_plain_values():
    assert config_key(3) == config_key(3)
    assert config_key(3) != config_key("3")
    assert config_key((1.0, 2.0)) != config_key((1.0, 2.5))


def test_config_key_set_values_are_content_keyed():
    """Equal sets key equally regardless of construction order, and a set
    is not confused with a list of the same elements."""
    forward = set()
    backward = set()
    for name in ["alpha", "beta", "gamma", "delta"]:
        forward.add(name)
    for name in ["delta", "gamma", "beta", "alpha"]:
        backward.add(name)
    assert config_key(forward) == config_key(backward)
    assert config_key(frozenset(forward)) == config_key(frozenset(backward))
    assert config_key(forward) != config_key(sorted(forward))
    assert config_key({1, 2}) != config_key({1, 3})


def test_config_key_sets_stable_across_hash_seeds(tmp_path):
    """Regression: ``_canonical`` used to fall back to ``repr`` for sets, so
    a set-valued config hashed differently under each PYTHONHASHSEED and
    every cross-run cache lookup missed."""
    import subprocess
    import sys

    snippet = (
        "from repro.runtime import config_key;"
        "print(config_key({'office_a', 'office_b', 'hall', 'cafeteria'}))"
    )
    keys = set()
    for hash_seed in ("0", "1", "4242"):
        proc = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True,
            text=True,
            env={**_child_env(), "PYTHONHASHSEED": hash_seed},
        )
        assert proc.returncode == 0, proc.stderr
        keys.add(proc.stdout.strip())
    assert len(keys) == 1, f"cache key depends on PYTHONHASHSEED: {keys}"


def _child_env():
    import os

    env = dict(os.environ)
    src = str(
        __import__("pathlib").Path(__file__).resolve().parents[2] / "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


# -- hit / miss / invalidation --------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(root=tmp_path)
    config = figure6_config(seed=3)
    hit, _ = cache.get(_double, config)
    assert not hit
    cache.put(_double, config, 42)
    hit, value = cache.get(_double, config)
    assert hit and value == 42
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 1


def test_cache_version_bump_invalidates(tmp_path):
    old = ResultCache(root=tmp_path, version=1)
    config = figure6_config(seed=3)
    old.put(_double, config, 42)
    new = ResultCache(root=tmp_path, version=2)
    hit, _ = new.get(_double, config)
    assert not hit


def test_cache_namespaced_per_worker_function(tmp_path):
    cache = ResultCache(root=tmp_path)
    config = figure6_config(seed=3)
    cache.put(_double, config, 42)
    hit, _ = cache.get("some.other.worker", config)
    assert not hit


def test_cache_clear_reports_count(tmp_path):
    cache = ResultCache(root=tmp_path)
    cache.put(_double, 1, 2)
    cache.put(_double, 2, 4)
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0
    hit, _ = cache.get(_double, 1)
    assert not hit
    assert cache.clear() == 0


@pytest.mark.parametrize(
    "junk",
    [
        b"not a pickle",  # UnpicklingError
        b"garbage\n",     # 'g' is a valid opcode whose arg raises ValueError
        b"",              # EOFError
    ],
)
def test_corrupt_entry_counts_as_miss(tmp_path, junk):
    cache = ResultCache(root=tmp_path)
    path = cache.put(_double, 5, 10)
    path.write_bytes(junk)
    hit, _ = cache.get(_double, 5)
    assert not hit
    # The dead entry is unlinked on detection so the store never
    # accumulates unreadable files.
    assert not path.exists()


@pytest.mark.parametrize(
    "junk",
    [
        b"not a pickle",
        b"garbage\n",
        b"",
    ],
)
def test_corrupt_entry_is_resimulated_and_overwritten(tmp_path, junk):
    """Regression: a truncated/garbage entry must not poison the sweep —
    the runner treats it as a miss, recomputes, and overwrites it."""
    worker, counter = _counting_worker_factory(tmp_path)
    cache = ResultCache(root=tmp_path / "cache")
    runner = ExperimentRunner(jobs=1, cache=cache)

    assert runner.run_many(worker, [7]) == [14]
    assert counter.read_text().count("x") == 1
    path = cache.path_for(worker, 7)
    path.write_bytes(junk)

    # Corrupt entry: re-simulated (one more real call), result correct.
    assert runner.run_many(worker, [7]) == [14]
    assert counter.read_text().count("x") == 2

    # The overwrite healed the store: next run is a pure hit.
    assert runner.run_many(worker, [7]) == [14]
    assert counter.read_text().count("x") == 2
    hit, value = cache.get(worker, 7)
    assert hit and value == 14


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "alt"))
    assert default_cache_dir() == tmp_path / "alt"
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert default_cache_dir().name == ".cache"
    assert default_cache_dir().parent.name == "benchmarks"


# -- runner integration ----------------------------------------------------


def test_runner_skips_cached_configs(tmp_path):
    worker, counter = _counting_worker_factory(tmp_path)
    cache = ResultCache(root=tmp_path / "cache")
    runner = ExperimentRunner(jobs=1, cache=cache)

    assert runner.run_many(worker, [1, 2, 3]) == [2, 4, 6]
    assert counter.read_text().count("x") == 3

    # Second run: all hits, no new simulations.
    assert runner.run_many(worker, [1, 2, 3]) == [2, 4, 6]
    assert counter.read_text().count("x") == 3

    # A partially-new sweep only simulates the new points, and results
    # still come back in submission order.
    assert runner.run_many(worker, [4, 1, 5, 2]) == [8, 2, 10, 4]
    assert counter.read_text().count("x") == 5


def test_runner_without_cache_always_computes(tmp_path):
    worker, counter = _counting_worker_factory(tmp_path)
    runner = ExperimentRunner(jobs=1)
    runner.run_many(worker, [1, 2])
    runner.run_many(worker, [1, 2])
    assert counter.read_text().count("x") == 4


# -- size parsing -----------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ("2048", 2048),
        ("500M", 500 * 1024**2),
        ("500MB", 500 * 1024**2),
        ("1.5G", int(1.5 * 1024**3)),
        ("16k", 16 * 1024),
        ("3T", 3 * 1024**4),
        ("0", 0),
        ("7B", 7),
        (4096, 4096),
    ],
)
def test_parse_size_accepts_human_sizes(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize("text", ["", "lots", "-5", "1.5.5G", "12Q", -1])
def test_parse_size_rejects_garbage(text):
    with pytest.raises(ValueError):
        parse_size(text)


# -- LRU eviction -----------------------------------------------------------


def _put_with_age(cache, config, value, age_rank):
    """Insert an entry and pin its recency: higher rank = more recent."""
    path = cache.put(_double, config, value)
    stamp = 1_000_000_000 + age_rank * 60
    os.utime(path, (stamp, stamp))
    return path


def test_entries_sorted_least_recently_used_first(tmp_path):
    cache = ResultCache(root=tmp_path)
    _put_with_age(cache, 3, 6, age_rank=2)
    _put_with_age(cache, 1, 2, age_rank=0)
    _put_with_age(cache, 2, 4, age_rank=1)
    order = [entry.key for entry in cache.entries()]
    expected = [config_key(c) for c in (1, 2, 3)]
    assert order == expected
    assert all(entry.size > 0 for entry in cache.entries())


def test_prune_max_entries_evicts_lru_first(tmp_path):
    cache = ResultCache(root=tmp_path)
    oldest = _put_with_age(cache, 1, 2, age_rank=0)
    middle = _put_with_age(cache, 2, 4, age_rank=1)
    newest = _put_with_age(cache, 3, 6, age_rank=2)

    evicted, freed = cache.prune(max_entries=1)
    assert evicted == 2 and freed > 0
    assert not oldest.exists() and not middle.exists()
    assert newest.exists()
    hit, value = cache.get(_double, 3)
    assert hit and value == 6


def test_prune_max_bytes_evicts_until_under_cap(tmp_path):
    cache = ResultCache(root=tmp_path)
    for rank, config in enumerate([1, 2, 3, 4]):
        _put_with_age(cache, config, 2 * config, age_rank=rank)
    entry_size = cache.entries()[0].size
    evicted, freed = cache.prune(max_bytes=2 * entry_size)
    assert evicted == 2 and freed == 2 * entry_size
    assert cache.total_bytes() <= 2 * entry_size
    survivors = [entry.key for entry in cache.entries()]
    assert survivors == [config_key(3), config_key(4)]


def test_prune_without_caps_is_noop(tmp_path):
    cache = ResultCache(root=tmp_path)
    cache.put(_double, 1, 2)
    assert cache.prune() == (0, 0)
    assert len(cache) == 1


def test_get_refreshes_recency_for_lru(tmp_path):
    """A hit must touch the entry so hot results survive a prune."""
    cache = ResultCache(root=tmp_path)
    _put_with_age(cache, 1, 2, age_rank=0)
    _put_with_age(cache, 2, 4, age_rank=1)
    hit, _ = cache.get(_double, 1)  # now the most recently used
    assert hit
    cache.prune(max_entries=1)
    assert [entry.key for entry in cache.entries()] == [config_key(1)]


def test_put_enforces_caps_automatically(tmp_path):
    cache = ResultCache(root=tmp_path, max_entries=2)
    _put_with_age(cache, 1, 2, age_rank=0)
    _put_with_age(cache, 2, 4, age_rank=1)
    cache.put(_double, 3, 6)  # pushes the store over the cap
    assert len(cache) == 2
    hit, _ = cache.get(_double, 1)
    assert not hit  # the oldest entry made room


def test_cap_validation():
    with pytest.raises(ValueError):
        ResultCache(max_bytes=-1)
    with pytest.raises(ValueError):
        ResultCache(max_entries=-1)


def test_stats_snapshot(tmp_path):
    cache = ResultCache(root=tmp_path)
    cache.put(_double, 1, 2)
    cache.put(_double, 2, 4)
    cache.put("other.worker", 1, 99)
    cache.get(_double, 1)
    cache.get(_double, 77)
    stats = cache.stats()
    assert stats.root == str(tmp_path)
    assert stats.entries == 3
    assert stats.total_bytes == cache.total_bytes() > 0
    assert stats.hits == 1 and stats.misses == 1
    by_name = dict(
        (name, (count, size)) for name, count, size in stats.by_namespace
    )
    assert by_name["other.worker"][0] == 1
    assert sum(count for count, _size in by_name.values()) == 3


# -- concurrent-writer tolerance --------------------------------------------
#
# Distributed node workers share one cache directory: several processes
# get/put/prune concurrently with no lock.  The store tolerates that
# instead of locking — these regressions pin the three races that used to
# lose live entries (or crash) under concurrency.


@pytest.mark.parametrize("text", ["inf", "-inf", "nan", "1e309", "infB"])
def test_parse_size_rejects_non_finite(text):
    """float() happily parses "inf"/"nan"/overflowing exponents; as cache
    caps they would poison every comparison (or crash int())."""
    with pytest.raises(ValueError):
        parse_size(text)


def test_prune_skips_entries_touched_after_snapshot(tmp_path, monkeypatch):
    """An entry another process touched between our LRU snapshot and the
    unlink is *live*: prune must re-stat and skip it, not evict a
    concurrent reader's working set."""
    cache = ResultCache(root=tmp_path)
    touched = _put_with_age(cache, 1, 2, age_rank=0)
    victim = _put_with_age(cache, 2, 4, age_rank=1)
    stale = cache.entries()  # snapshot: `touched` ranks oldest

    # Concurrent reader refreshes `touched` after the snapshot was taken.
    stamp = 2_000_000_000
    os.utime(touched, (stamp, stamp))
    monkeypatch.setattr(cache, "entries", lambda: stale)

    evicted, _freed = cache.prune(max_entries=1)
    assert evicted == 1
    assert touched.exists()  # the live entry survived
    assert not victim.exists()  # eviction fell through to the next LRU


def test_prune_tolerates_concurrently_removed_entries(tmp_path, monkeypatch):
    """Entries that vanish between snapshot and unlink were evicted by the
    other process: prune adjusts its totals instead of crashing."""
    cache = ResultCache(root=tmp_path)
    gone = _put_with_age(cache, 1, 2, age_rank=0)
    keep = _put_with_age(cache, 2, 4, age_rank=1)
    stale = cache.entries()
    gone.unlink()  # another node pruned it first
    monkeypatch.setattr(cache, "entries", lambda: stale)

    evicted, freed = cache.prune(max_entries=1)
    # The vanished entry already satisfied the cap; nothing else evicted.
    assert (evicted, freed) == (0, 0)
    assert keep.exists()


def test_corrupt_get_does_not_unlink_concurrent_republish(tmp_path, monkeypatch):
    """get() opened a corrupt entry, but a writer atomically republished a
    good result at the same path before the unlink: the *new* file must
    survive (inode guard), and the next read hits it."""
    import pickle as real_pickle
    import types

    from repro.runtime import cache as cache_module

    cache = ResultCache(root=tmp_path)
    path = cache.put(_double, 1, 2)
    path.write_bytes(b"corrupt garbage")

    def load_with_concurrent_republish(fh):
        tmp = path.with_name(".republished.tmp")
        with open(tmp, "wb") as out:
            real_pickle.dump(99, out, protocol=real_pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # a node's atomic publish, new inode
        raise ValueError("corrupt stream")

    monkeypatch.setattr(
        cache_module,
        "pickle",
        types.SimpleNamespace(
            load=load_with_concurrent_republish,
            dump=real_pickle.dump,
            HIGHEST_PROTOCOL=real_pickle.HIGHEST_PROTOCOL,
        ),
    )
    hit, value = cache.get(_double, 1)
    assert (hit, value) == (False, None)  # the corrupt read is still a miss
    assert path.exists()  # but the republished entry was NOT unlinked

    monkeypatch.setattr(cache_module, "pickle", real_pickle)
    assert cache.get(_double, 1) == (True, 99)


def test_corrupt_get_still_unlinks_when_no_republish(tmp_path):
    """Sanity check for the guard's other arm: with no concurrent writer
    the corrupt entry is dropped on detection, as before."""
    cache = ResultCache(root=tmp_path)
    path = cache.put(_double, 1, 2)
    path.write_bytes(b"corrupt garbage")
    assert cache.get(_double, 1) == (False, None)
    assert not path.exists()
