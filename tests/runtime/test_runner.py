"""Tests for the ExperimentRunner: backends, ordering, errors, env parsing."""

import os

import pytest

from repro.runtime import ExperimentRunner, WorkerError, resolve_jobs
from repro.sim import figure6_config, simulate_twocell_stats


def _square(x):
    return x * x


def _fail_on_negative(x):
    if x < 0:
        raise ValueError(f"bad input {x}")
    return x


def _figure6_sweep_configs():
    return [
        figure6_config(policy="probabilistic", window=window, p_qos=p_qos,
                       seed=seed, horizon=60.0)
        for window in (0.05, 0.1)
        for p_qos in (0.005, 0.1)
        for seed in (1, 2)
    ]


# -- backends and ordering ------------------------------------------------


def test_serial_preserves_submission_order():
    runner = ExperimentRunner(jobs=1)
    assert runner.run_many(_square, range(10)) == [x * x for x in range(10)]
    assert runner.backend == "serial"


def test_process_pool_preserves_submission_order():
    runner = ExperimentRunner(jobs=3)
    assert runner.backend == "process"
    assert runner.run_many(_square, range(20)) == [x * x for x in range(20)]


def test_parallel_equals_serial_on_figure6_sweep():
    """The determinism contract: element-for-element identical results."""
    configs = _figure6_sweep_configs()
    serial = ExperimentRunner(jobs=1).run_many(simulate_twocell_stats, configs)
    parallel = ExperimentRunner(jobs=4).run_many(simulate_twocell_stats, configs)
    assert len(serial) == len(configs)
    for index, (a, b) in enumerate(zip(serial, parallel)):
        assert a == b, f"result {index} diverged between serial and parallel"


def test_empty_batch():
    assert ExperimentRunner(jobs=4).run_many(_square, []) == []


def test_explicit_backend_validation():
    with pytest.raises(ValueError):
        ExperimentRunner(backend="threads")


# -- worker exception propagation -----------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_worker_error_carries_config(jobs):
    runner = ExperimentRunner(jobs=jobs, chunk_size=1)
    with pytest.raises(WorkerError) as excinfo:
        runner.run_many(_fail_on_negative, [3, 1, -7, 2])
    err = excinfo.value
    assert err.config == -7
    assert isinstance(err.cause, ValueError)
    assert "-7" in str(err)
    assert isinstance(err.__cause__, ValueError)


def test_pool_worker_error_includes_remote_traceback():
    runner = ExperimentRunner(jobs=2, chunk_size=1)
    with pytest.raises(WorkerError) as excinfo:
        runner.run_many(_fail_on_negative, [1, -1, 2, 3])
    assert "ValueError" in excinfo.value.worker_traceback


# -- REPRO_JOBS parsing ----------------------------------------------------


def test_resolve_jobs_explicit_values():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs("3") == 3
    cores = max(1, os.cpu_count() or 1)
    assert resolve_jobs(0) == cores
    assert resolve_jobs("auto") == cores
    assert resolve_jobs("AUTO") == cores


def test_resolve_jobs_rejects_garbage():
    with pytest.raises(ValueError):
        resolve_jobs("many")
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_resolve_jobs_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    assert ExperimentRunner().jobs == 5
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert resolve_jobs() == max(1, os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "")
    assert resolve_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ValueError):
        resolve_jobs()


def test_explicit_jobs_beats_environment(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert ExperimentRunner(jobs=2).jobs == 2


def test_pool_worker_count_clamped_to_batch(monkeypatch):
    """``--jobs auto`` on a big box must not fork more workers than
    there are sweep points."""
    import repro.runtime.runner as runner_module

    captured = {}
    real_executor = runner_module.ProcessPoolExecutor

    class SpyExecutor(real_executor):
        def __init__(self, max_workers=None, **kwargs):
            captured["max_workers"] = max_workers
            super().__init__(max_workers=max_workers, **kwargs)

    monkeypatch.setattr(runner_module, "ProcessPoolExecutor", SpyExecutor)
    runner = ExperimentRunner(jobs=8)
    assert runner.run_many(_square, [2, 3]) == [4, 9]
    assert captured["max_workers"] == 2
