"""Tests for instrumentation probes."""

import pytest

from repro.des import Environment, TimeSeriesProbe, periodic_sampler


def test_probe_records_samples():
    probe = TimeSeriesProbe("load")
    probe.record(0, 1.0)
    probe.record(2, 3.0)
    assert probe.times == [0, 2]
    assert probe.values == [1.0, 3.0]
    assert probe.last() == (2, 3.0)
    assert len(probe) == 2


def test_probe_time_average_piecewise_constant():
    probe = TimeSeriesProbe()
    probe.record(0, 10.0)
    probe.record(5, 20.0)
    # 10 for 5 units, then 20 for 5 units -> 15
    assert probe.time_average(until=10) == pytest.approx(15.0)


def test_probe_time_average_empty_raises():
    with pytest.raises(ValueError):
        TimeSeriesProbe().time_average()


def test_probe_single_sample_average_is_value():
    probe = TimeSeriesProbe()
    probe.record(3, 7.0)
    assert probe.time_average(until=3) == 7.0


def test_periodic_sampler_runs_on_schedule():
    env = Environment()
    probe = TimeSeriesProbe()
    counter = {"n": 0}

    def fn():
        counter["n"] += 1
        return counter["n"]

    env.process(periodic_sampler(env, probe, fn, period=2))
    env.run(until=7)
    assert probe.samples == [(0.0, 1), (2.0, 2), (4.0, 3), (6.0, 4)]
