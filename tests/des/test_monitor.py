"""Tests for instrumentation probes."""

import pytest

from repro.des import Environment, TimeSeriesProbe, periodic_sampler


def test_probe_records_samples():
    probe = TimeSeriesProbe("load")
    probe.record(0, 1.0)
    probe.record(2, 3.0)
    assert probe.times == [0, 2]
    assert probe.values == [1.0, 3.0]
    assert probe.last() == (2, 3.0)
    assert len(probe) == 2


def test_probe_time_average_piecewise_constant():
    probe = TimeSeriesProbe()
    probe.record(0, 10.0)
    probe.record(5, 20.0)
    # 10 for 5 units, then 20 for 5 units -> 15
    assert probe.time_average(until=10) == pytest.approx(15.0)


def test_probe_time_average_empty_raises():
    with pytest.raises(ValueError):
        TimeSeriesProbe().time_average()


def test_probe_single_sample_average_is_value():
    probe = TimeSeriesProbe()
    probe.record(3, 7.0)
    assert probe.time_average(until=3) == 7.0


def test_probe_time_average_clamps_until_inside_range():
    # Regression: ``until`` inside the sampled range used to count every
    # interval in full, over-weighting samples past the cutoff.
    probe = TimeSeriesProbe()
    probe.record(0, 10.0)
    probe.record(5, 20.0)
    probe.record(10, 30.0)
    # Up to t=5 only the first segment (value 10) applies.
    assert probe.time_average(until=5) == pytest.approx(10.0)
    # Up to t=7.5: 10 for 5 units, 20 for 2.5 units -> 12.5/7.5 weighted.
    expected = (10.0 * 5 + 20.0 * 2.5) / 7.5
    assert probe.time_average(until=7.5) == pytest.approx(expected)
    # Full range unchanged: 10*5 + 20*5 over 10 units.
    assert probe.time_average(until=10) == pytest.approx(15.0)
    # Extrapolation past the last sample still holds the last value.
    assert probe.time_average(until=20) == pytest.approx(
        (10.0 * 5 + 20.0 * 5 + 30.0 * 10) / 20.0
    )


def test_probe_time_average_until_before_first_sample_is_first_value():
    probe = TimeSeriesProbe()
    probe.record(5, 4.0)
    probe.record(10, 8.0)
    assert probe.time_average(until=5) == 4.0


def test_periodic_sampler_runs_on_schedule():
    env = Environment()
    probe = TimeSeriesProbe()
    counter = {"n": 0}

    def fn():
        counter["n"] += 1
        return counter["n"]

    env.process(periodic_sampler(env, probe, fn, period=2))
    env.run(until=7)
    assert probe.samples == [(0.0, 1), (2.0, 2), (4.0, 3), (6.0, 4)]


def test_periodic_sampler_samples_live_state_not_snapshots():
    # The sampler must call ``fn`` at sample time (values observed lazily),
    # and its probe timestamps must come from the sim clock.
    env = Environment()
    probe = TimeSeriesProbe()
    state = {"load": 0.0}

    def bump():
        while True:
            yield env.timeout(1.0)
            state["load"] += 2.0

    env.process(bump())
    env.process(periodic_sampler(env, probe, lambda: state["load"], period=2))
    env.run(until=5)
    assert probe.samples == [(0.0, 0.0), (2.0, 2.0), (4.0, 6.0)]
    assert probe.time_average(until=4) == pytest.approx(
        (0.0 * 2 + 2.0 * 2) / 4.0
    )


def test_periodic_sampler_stops_at_run_horizon():
    # The URGENT stop event at the horizon fires before the sampler's
    # NORMAL timeout scheduled for the same instant: no sample at t=2.0.
    env = Environment()
    probe = TimeSeriesProbe()
    env.process(periodic_sampler(env, probe, lambda: 1.0, period=0.5))
    env.run(until=2)
    assert probe.times == [0.0, 0.5, 1.0, 1.5]
