"""Tests for event primitives: succeed/fail, conditions, process failure."""

import pytest

from repro.des import Environment, Interrupt


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()
    got = []

    def proc(env):
        got.append((yield ev))

    env.process(proc(env))
    ev.succeed("payload")
    env.run()
    assert got == ["payload"]


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(ValueError):
        env.event().fail("not an exception")


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    caught = []

    def proc(env, ev):
        try:
            yield ev
        except KeyError as exc:
            caught.append(exc)

    ev = env.event()
    env.process(proc(env, ev))
    ev.fail(KeyError("boom"))
    env.run()
    assert len(caught) == 1


def test_unhandled_failed_event_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(AttributeError):
        _ = ev.value
    with pytest.raises(AttributeError):
        _ = ev.ok


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc(env):
        t1, t2 = env.timeout(2, "a"), env.timeout(5, "b")
        result = yield t1 & t2
        times.append(env.now)
        assert set(result.values()) == {"a", "b"}

    env.process(proc(env))
    env.run()
    assert times == [5.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc(env):
        result = yield env.timeout(2, "fast") | env.timeout(9, "slow")
        times.append(env.now)
        assert "fast" in result.values()

    env.process(proc(env))
    env.run()
    assert times == [2.0]


def test_all_of_factory_with_many_events():
    env = Environment()
    done = []

    def proc(env):
        yield env.all_of([env.timeout(i) for i in range(1, 6)])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [5.0]


def test_any_of_failure_propagates():
    env = Environment()
    caught = []

    def proc(env, bad):
        try:
            yield env.any_of([bad, env.timeout(10)])
        except ValueError:
            caught.append(env.now)

    bad = env.event()
    env.process(proc(env, bad))
    bad.fail(ValueError("bad"))
    env.run()
    assert caught == [0.0]


def test_condition_on_already_processed_event():
    env = Environment()
    seen = []

    def proc(env, ev):
        yield env.timeout(1)
        # ev fired at t=0 and is long processed.
        yield ev & env.timeout(1)
        seen.append(env.now)

    ev = env.event()
    ev.succeed("early")
    env.process(proc(env, ev))
    env.run()
    assert seen == [2.0]


def test_process_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            causes.append((exc.cause, env.now))

    def attacker(env, target):
        yield env.timeout(3)
        target.interrupt("preempted")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert causes == [("preempted", 3.0)]


def test_process_cannot_interrupt_itself():
    env = Environment()

    def proc(env):
        env.active_process.interrupt()
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(RuntimeError):
        env.run()


def test_interrupting_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_rewait_original_target():
    """After an interrupt, the original timeout still completes on re-yield."""
    env = Environment()
    log = []

    def victim(env):
        timeout = env.timeout(10, "original")
        try:
            yield timeout
        except Interrupt:
            log.append(("interrupted", env.now))
        value = yield timeout
        log.append((value, env.now))

    def attacker(env, target):
        yield env.timeout(4)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [("interrupted", 4.0), ("original", 10.0)]


def test_env_exit_sets_process_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        env.exit(99)
        yield env.timeout(1)  # pragma: no cover - unreachable

    assert env.run(until=env.process(proc(env))) == 99


def test_process_failure_propagates_to_waiter():
    env = Environment()
    caught = []

    def failing(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def waiter(env):
        try:
            yield env.process(failing(env))
        except KeyError:
            caught.append(env.now)

    env.process(waiter(env))
    env.run()
    assert caught == [1.0]


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_is_alive_transitions():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive
