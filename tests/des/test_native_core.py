"""The compiled-core selection seam and its fallback rules.

``make_environment()`` is the only sanctioned way to pick a kernel; these
tests pin every edge of that seam — env-var parsing, the explicit-native
failure mode when the extension is missing, the silent ``auto`` fallbacks
for tracing and recycling — plus the per-core event accounting that
telemetry uses to refuse mixed-kernel sweeps.

Tests marked ``requires_native`` exercise the real extension and skip on
pure-only installs; everything else runs everywhere (extension absence is
simulated through the probe cache, not the import system).
"""

import collections

import pytest

from repro.des import (
    NATIVE_ENV,
    RECYCLE_ENV,
    Environment,
    Event,
    events_processed_by_core,
    events_processed_total,
    make_environment,
    native_available,
    native_import_error,
    resolve_des_core,
    selected_core,
)
from repro.des import engine as engine_mod
from repro.obs import RingBufferSink, RunTelemetry, Tracer, use_tracer
from repro.runtime import ExperimentRunner

requires_native = pytest.mark.skipif(
    not native_available(),
    reason="repro.des._speedups not built (python setup.py build_ext --inplace)",
)


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv(NATIVE_ENV, raising=False)
    monkeypatch.delenv(RECYCLE_ENV, raising=False)
    return monkeypatch


@pytest.fixture
def no_native(clean_env):
    """Simulate a pure-only install by poisoning the probe cache."""
    clean_env.setattr(
        engine_mod,
        "_NATIVE_STATE",
        {"module": None, "error": "ImportError: simulated missing extension"},
    )
    return clean_env


# -- resolve_des_core: request normalization --------------------------------


def test_resolve_defaults_to_auto(clean_env):
    assert resolve_des_core() == "auto"
    clean_env.setenv(NATIVE_ENV, "auto")
    assert resolve_des_core() == "auto"


@pytest.mark.parametrize("raw,expected", [
    ("1", "native"), ("true", "native"), ("on", "native"), ("native", "native"),
    ("0", "pure"), ("false", "pure"), ("off", "pure"), ("pure", "pure"),
    (" Native ", "native"), ("PURE", "pure"),
])
def test_resolve_env_var_spellings(clean_env, raw, expected):
    clean_env.setenv(NATIVE_ENV, raw)
    assert resolve_des_core() == expected


def test_resolve_explicit_argument_overrides_env(clean_env):
    clean_env.setenv(NATIVE_ENV, "native")
    assert resolve_des_core("pure") == "pure"
    assert resolve_des_core("AUTO") == "auto"


def test_resolve_rejects_junk(clean_env):
    clean_env.setenv(NATIVE_ENV, "fast")
    with pytest.raises(ValueError, match="unrecognized"):
        resolve_des_core()
    with pytest.raises(ValueError, match="unrecognized"):
        resolve_des_core("compiled")


# -- extension-missing fallbacks --------------------------------------------


def test_missing_extension_reports_unavailable(no_native):
    assert not native_available()
    assert "simulated missing extension" in native_import_error()


def test_auto_falls_back_to_pure_when_extension_missing(no_native):
    assert selected_core() == "pure"
    env = make_environment()
    assert type(env) is Environment
    assert env.core == "pure"


def test_explicit_native_raises_when_extension_missing(no_native):
    with pytest.raises(RuntimeError, match="build_ext --inplace"):
        selected_core("native")
    with pytest.raises(RuntimeError, match="not.*importable"):
        make_environment(core="native")
    no_native.setenv(NATIVE_ENV, "native")
    with pytest.raises(RuntimeError):
        make_environment()


def test_native_available_reports_no_error_when_importable(clean_env):
    if not native_available():
        pytest.skip("extension genuinely absent; covered by no_native tests")
    assert native_import_error() is None


# -- tracing and recycling veto the compiled pump ---------------------------


@requires_native
def test_tracer_forces_pure_selection(clean_env):
    assert selected_core() == "native"
    with use_tracer(Tracer(RingBufferSink())):
        assert selected_core() == "pure"
        assert selected_core("native") == "pure"  # even an explicit request
        assert type(make_environment()) is Environment
    assert selected_core() == "native"


def test_recycling_forces_pure_selection(clean_env):
    clean_env.setenv(RECYCLE_ENV, "1")
    clean_env.setenv(NATIVE_ENV, "1")
    if native_available():
        assert selected_core() == "pure"
    assert make_environment().core == "pure"


@requires_native
def test_set_tracer_rebinds_pure_pump_and_back(clean_env):
    """Attaching a tracer mid-life swaps a NativeEnvironment onto the pure
    pump (so every schedule is recorded); detaching restores the compiled
    one.  The simulated timeline is identical either way."""
    from repro.des.native import NativeEnvironment

    def timeline(env):
        fired = []

        def note(event):
            fired.append((env.now, event.value))

        for delay in (3.0, 1.0, 2.0):
            t = env.timeout(delay, value=delay)
            t.callbacks.append(note)
        env.run(until=10.0)
        return fired

    env = make_environment(core="native")
    assert type(env) is NativeEnvironment
    assert env._pump is not None

    sink = RingBufferSink()
    env.set_tracer(Tracer(sink))
    assert env._pump is None  # traced: compiled pump is off
    traced = timeline(env)
    assert sink.records(), "tracer saw no events despite pure rebinding"

    env.set_tracer(None)
    assert env._pump is not None  # compiled pump restored

    assert traced == timeline(make_environment(core="pure"))


# -- pump semantics at the seams --------------------------------------------


@requires_native
def test_callbacks_can_reschedule_from_inside_native_pump(clean_env):
    """An Event subclass whose callbacks re-enter ``schedule`` while the
    compiled pump is draining the heap: the chain grows the queue it is
    being popped from, on both kernels identically."""

    class ChainEvent(Event):
        pass

    def run_chain(env):
        fired = []

        def extend(event):
            fired.append((env.now, event.value))
            if event.value < 5:
                nxt = ChainEvent(env)
                nxt._ok = True
                nxt._value = event.value + 1
                nxt.callbacks.append(extend)
                env.schedule(nxt, delay=0.5 * (event.value + 1))

        first = ChainEvent(env)
        first._ok = True
        first._value = 0
        first.callbacks.append(extend)
        env.schedule(first, delay=1.0)
        env.run(until=30.0)
        return fired

    native = run_chain(make_environment(core="native"))
    pure = run_chain(make_environment(core="pure"))
    assert native == pure
    assert len(native) == 6


@requires_native
def test_non_list_callbacks_container(clean_env):
    """The pump's list fan-out falls back to plain iteration for events
    whose ``callbacks`` was swapped for another iterable."""

    def run_deque(env):
        fired = []
        event = env.timeout(1.0, value="v")
        event.callbacks = collections.deque(
            [lambda e: fired.append(("a", env.now, e.value)),
             lambda e: fired.append(("b", env.now, e.value))]
        )
        env.run(until=2.0)
        return fired

    assert run_deque(make_environment(core="native")) == run_deque(
        make_environment(core="pure")
    )


# -- per-core event accounting ----------------------------------------------


def _pump_events(env, n=7):
    for i in range(n):
        env.timeout(float(i + 1))
    env.run(until=float(n + 1))


@requires_native
def test_event_tally_lands_on_the_right_core(clean_env):
    before = events_processed_by_core()
    _pump_events(make_environment(core="pure"))
    after_pure = events_processed_by_core()
    per_run = after_pure["pure"] - before["pure"]
    assert per_run > 0
    assert after_pure["native"] == before["native"]

    _pump_events(make_environment(core="native"))
    after_native = events_processed_by_core()
    # The same workload tallies the same number of events on either core.
    assert after_native["native"] - after_pure["native"] == per_run
    assert after_native["pure"] == after_pure["pure"]

    assert events_processed_total() == sum(after_native.values())


# -- telemetry: one kernel per sweep ----------------------------------------


def test_telemetry_records_single_core():
    t = RunTelemetry()
    t.record_replication(1.0, events=5, cores={"pure": 5})
    t.record_core_events({"pure": 3, "native": 0})  # zero counts ignored
    assert t.des_cores == {"pure": 8}
    assert t.des_core == "pure"
    assert "[pure core]" in t.summary()


def test_telemetry_refuses_mixed_cores():
    t = RunTelemetry()
    t.record_core_events({"native": 10})
    with pytest.raises(RuntimeError, match="mixed DES cores"):
        t.record_core_events({"pure": 10})


def test_telemetry_merge_folds_and_refuses_mixed_cores():
    a, b = RunTelemetry(), RunTelemetry()
    a.record_core_events({"native": 4})
    b.record_core_events({"native": 6})
    a.merge(b)
    assert a.des_cores == {"native": 10}
    c = RunTelemetry()
    c.record_core_events({"pure": 1})
    with pytest.raises(RuntimeError, match="mixed DES cores"):
        a.merge(c)


def test_to_dict_surfaces_core(clean_env):
    t = RunTelemetry()
    t.record_replication(1.0, events=20, cores={"native": 20})
    data = t.to_dict()
    assert data["des"]["core"] == "native"
    assert data["des"]["cores"] == {"native": 20}


# -- serial == pool pinning --------------------------------------------------


def _sim_worker(seed):
    from repro.sim import TwoCellSimulator, figure6_config

    return TwoCellSimulator(
        figure6_config(policy="plain", horizon=30.0, seed=seed)
    ).run().stats.new_requests


@pytest.mark.parametrize("core", ["pure", "native"])
def test_serial_and_pool_report_same_core(clean_env, core):
    if core == "native" and not native_available():
        pytest.skip("extension not built")
    clean_env.setenv(NATIVE_ENV, core)
    serial = ExperimentRunner(jobs=1)
    serial.run_many(_sim_worker, [1, 2])
    assert serial.telemetry.des_core == core
    assert serial.telemetry.des_cores[core] == serial.telemetry.des_events > 0

    pool = ExperimentRunner(jobs=2, backend="process")
    pool.run_many(_sim_worker, [1, 2])
    assert pool.telemetry.des_core == core
    assert pool.telemetry.des_cores == serial.telemetry.des_cores
