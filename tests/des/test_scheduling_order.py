"""Tests for event-queue ordering guarantees (URGENT vs NORMAL, ties)."""

from repro.des import NORMAL, URGENT, Environment, Event, Interrupt


def test_urgent_events_precede_normal_at_same_time():
    env = Environment()
    order = []

    normal = Event(env)
    normal._ok = True
    normal._value = None
    normal.callbacks.append(lambda _e: order.append("normal"))
    env.schedule(normal, priority=NORMAL, delay=1.0)

    urgent = Event(env)
    urgent._ok = True
    urgent._value = None
    urgent.callbacks.append(lambda _e: order.append("urgent"))
    env.schedule(urgent, priority=URGENT, delay=1.0)

    env.run()
    assert order == ["urgent", "normal"]


def test_interrupt_scheduled_at_same_time_preempts_pending_timeout():
    """An interrupt issued at time t, while the victim's timeout is also due
    at t but not yet processed, wins: interrupts are URGENT."""
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(5.0)
            log.append("timeout-won")
        except Interrupt:
            log.append("interrupt-won")

    def attacker(env):
        yield env.timeout(5.0)
        target.interrupt()

    # The attacker's timeout is inserted first, so at t=5 it is processed
    # before the victim's; the interrupt it schedules is URGENT and jumps
    # ahead of the victim's already-queued NORMAL timeout.
    env.process(attacker(env))
    target = env.process(victim(env))
    env.run()
    assert log == ["interrupt-won"]


def test_insertion_order_breaks_ties_within_priority():
    env = Environment()
    order = []
    for name in ("first", "second", "third"):
        event = Event(env)
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _e, n=name: order.append(n))
        env.schedule(event, delay=2.0)
    env.run()
    assert order == ["first", "second", "third"]


def test_run_until_event_already_processed_returns_value():
    env = Environment()
    ev = env.event()
    ev.succeed("answer")
    env.run()  # processes the event
    assert ev.processed
    assert env.run(until=ev) == "answer"


def test_clock_never_goes_backwards():
    env = Environment()
    stamps = []

    def proc(env, delays):
        for d in delays:
            yield env.timeout(d)
            stamps.append(env.now)

    env.process(proc(env, [3, 0, 2, 0, 1]))
    env.process(proc(env, [1, 1, 1, 1, 1]))
    env.run()
    assert stamps == sorted(stamps)
