"""Tests for priority and preemptive resources."""

from repro.des import (
    Environment,
    Interrupt,
    Preempted,
    PreemptiveResource,
    PriorityResource,
)


def test_priority_queue_ordering():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(10)

    def waiter(env, res, name, priority, delay):
        yield env.timeout(delay)
        with res.request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env, res))
    env.process(waiter(env, res, "low-early", 5, 1))
    env.process(waiter(env, res, "high-late", 1, 2))
    env.process(waiter(env, res, "mid", 3, 3))
    env.run()
    assert order == ["high-late", "mid", "low-early"]


def test_priority_fifo_within_same_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def waiter(env, res, name, delay):
        yield env.timeout(delay)
        with res.request(priority=2) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env, res))
    for i in range(3):
        env.process(waiter(env, res, i, i + 1))
    env.run()
    assert order == [0, 1, 2]


def test_preemptive_resource_evicts_lower_priority():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    events = []

    def background(env, res):
        with res.request(priority=5) as req:
            yield req
            try:
                yield env.timeout(100)
                events.append("background-finished")
            except Interrupt as interrupt:
                events.append(("preempted", env.now))
                assert isinstance(interrupt.cause, Preempted)
                assert interrupt.cause.usage_since == 0.0

    def urgent(env, res):
        yield env.timeout(3)
        with res.request(priority=0) as req:
            yield req
            events.append(("urgent-granted", env.now))
            yield env.timeout(1)

    env.process(background(env, res))
    env.process(urgent(env, res))
    env.run()
    assert ("preempted", 3.0) in events
    assert ("urgent-granted", 3.0) in events
    assert "background-finished" not in events


def test_preemption_skipped_for_equal_or_higher_priority_holder():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    events = []

    def holder(env, res):
        with res.request(priority=1) as req:
            yield req
            yield env.timeout(10)
            events.append("holder-done")

    def challenger(env, res):
        yield env.timeout(2)
        with res.request(priority=1) as req:  # equal priority: must wait
            yield req
            events.append(("challenger", env.now))

    env.process(holder(env, res))
    env.process(challenger(env, res))
    env.run()
    assert events == ["holder-done", ("challenger", 10.0)]


def test_non_preempting_request_waits():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    events = []

    def background(env, res):
        with res.request(priority=5) as req:
            yield req
            yield env.timeout(10)
            events.append("background-done")

    def polite(env, res):
        yield env.timeout(1)
        with res.request(priority=0, preempt=False) as req:
            yield req
            events.append(("polite", env.now))

    env.process(background(env, res))
    env.process(polite(env, res))
    env.run()
    assert events == ["background-done", ("polite", 10.0)]


def test_preempted_victim_can_retry():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    log = []

    def background(env, res):
        while True:
            with res.request(priority=5) as req:
                yield req
                try:
                    yield env.timeout(20)
                    log.append(("bg-done", env.now))
                    return
                except Interrupt:
                    log.append(("bg-evicted", env.now))

    def urgent(env, res):
        yield env.timeout(4)
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(2)
            log.append(("urgent-done", env.now))

    env.process(background(env, res))
    env.process(urgent(env, res))
    env.run()
    assert log == [("bg-evicted", 4.0), ("urgent-done", 6.0), ("bg-done", 26.0)]
