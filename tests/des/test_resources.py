"""Tests for Resource, Container, Store, FilterStore."""

import pytest

from repro.des import Container, Environment, FilterStore, Resource, Store


# -- Resource --------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(env, res, name, hold):
        with res.request() as req:
            yield req
            granted.append((name, env.now))
            yield env.timeout(hold)

    for name, hold in [("a", 5), ("b", 5), ("c", 5)]:
        env.process(user(env, res, name, hold))
    env.run()
    assert granted == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_count_tracks_users():
    env = Environment()
    res = Resource(env, capacity=3)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(2)

    env.process(user(env, res))
    env.process(user(env, res))
    env.run(until=1)
    assert res.count == 2
    env.run()
    assert res.count == 0


def test_queued_request_cancellation_releases_slot():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def quitter(env, res):
        req = res.request()
        yield env.timeout(1)
        req.cancel()
        order.append("quit")

    def patient(env, res):
        with res.request() as req:
            yield req
            order.append(("granted", env.now))

    env.process(holder(env, res))
    env.process(quitter(env, res))
    env.process(patient(env, res))
    env.run()
    assert order == ["quit", ("granted", 10.0)]


def test_resource_fifo_fairness():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, name):
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for name in range(5):
        env.process(user(env, res, name))
    env.run()
    assert order == [0, 1, 2, 3, 4]


# -- Container ---------------------------------------------------------------

def test_container_level_tracking():
    env = Environment()
    tank = Container(env, capacity=100, init=50)

    def proc(env, tank):
        yield tank.get(30)
        assert tank.level == 20
        yield tank.put(60)
        assert tank.level == 80

    env.process(proc(env, tank))
    env.run()
    assert tank.level == 80


def test_container_get_blocks_until_put():
    env = Environment()
    tank = Container(env, capacity=10, init=0)
    times = []

    def consumer(env, tank):
        yield tank.get(5)
        times.append(env.now)

    def producer(env, tank):
        yield env.timeout(3)
        yield tank.put(5)

    env.process(consumer(env, tank))
    env.process(producer(env, tank))
    env.run()
    assert times == [3.0]


def test_container_put_blocks_when_full():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    times = []

    def producer(env, tank):
        yield tank.put(4)
        times.append(env.now)

    def consumer(env, tank):
        yield env.timeout(2)
        yield tank.get(4)

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert times == [2.0]


def test_container_invariants_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.get(0)
    with pytest.raises(ValueError):
        tank.put(-1)


def test_container_head_of_line_blocking():
    """A large head get must not be starved by smaller later gets."""
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    order = []

    def getter(env, tank, amount, name):
        yield tank.get(amount)
        order.append(name)

    def feeder(env, tank):
        for _ in range(4):
            yield env.timeout(1)
            yield tank.put(5)

    env.process(getter(env, tank, 20, "big"))
    env.process(getter(env, tank, 1, "small"))
    env.process(feeder(env, tank))
    env.run()
    assert order == ["big"]  # small still waiting: only 0 left after big took 20


# -- Store / FilterStore -------------------------------------------------------

def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env, store):
        for i in range(3):
            yield store.put(i)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env, store):
        yield store.get()
        times.append(env.now)

    def producer(env, store):
        yield env.timeout(6)
        yield store.put("msg")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert times == [6.0]


def test_bounded_store_put_blocks():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env, store):
        yield store.put("a")
        yield store.put("b")
        times.append(env.now)

    def consumer(env, store):
        yield env.timeout(4)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert times == [4.0]


def test_filter_store_selects_matching_item():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env, store):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    def producer(env, store):
        for i in [1, 3, 4, 5]:
            yield store.put(i)

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert got == [4]
    assert store.items == [1, 3, 5]
