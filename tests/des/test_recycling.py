"""The event free-list: bit-identical results, real reuse, safe opt-in.

``RecyclingEnvironment`` may change which *object* carries an event,
never the simulation's observable behavior.  These tests run identical
workloads on both kernels and require equal outputs, then pin the safety
properties: subclassed events are never pooled, payload values are not
pinned by the pool, and the traced pump bypasses recycling entirely.
"""

import pytest

from repro.des import (
    Condition,
    Environment,
    Event,
    NATIVE_ENV,
    RECYCLE_ENV,
    RecyclingEnvironment,
    Timeout,
    make_environment,
)


def _pingpong(env, rounds):
    """Timeout-heavy workload: two processes trading wakeups via events."""
    log = []

    def ping(env, signal):
        for i in range(rounds):
            yield env.timeout(1.0, value=i)
            log.append(("ping", env.now))
            signal.succeed(i)
            signal = env.event()
            ball["signal"] = signal

    def pong(env):
        while True:
            got = yield ball["signal"]
            log.append(("pong", env.now, got))

    ball = {"signal": env.event()}
    env.process(ping(env, ball["signal"]))
    env.process(pong(env))
    env.run(until=rounds + 1)
    return log


@pytest.mark.parametrize("rounds", [10, 200])
def test_recycled_run_is_bit_identical(rounds):
    plain = _pingpong(Environment(), rounds)
    recycled_env = RecyclingEnvironment()
    recycled = _pingpong(recycled_env, rounds)
    assert recycled == plain
    assert recycled_env.recycled > 0  # the pool actually got exercised


def test_timeouts_are_actually_reused():
    env = RecyclingEnvironment()

    def burner(env):
        for _ in range(1000):
            yield env.timeout(0.5)

    env.process(burner(env))
    env.run(until=600.0)
    # Each fired timeout returns to the pool before the next is created.
    assert env.recycled >= 998


def test_recycled_timeout_does_not_pin_payload():
    env = RecyclingEnvironment()
    seen = []

    def consumer(env):
        payload = ["heavy"] * 4
        got = yield env.timeout(1.0, value=payload)
        seen.append(got)
        got = yield env.timeout(1.0)  # recycled object, no stale value
        seen.append(got)

    env.process(consumer(env))
    env.run(until=3.0)
    assert seen[0] == ["heavy"] * 4
    assert seen[1] is None
    assert all(tm._value is None for tm in env._timeout_pool)


def test_condition_events_are_never_pooled():
    env = RecyclingEnvironment()

    def waiter(env):
        yield env.all_of([env.timeout(1.0), env.timeout(2.0)])

    env.process(waiter(env))
    env.run(until=3.0)
    assert not any(isinstance(ev, Condition) for ev in env._event_pool)
    assert all(type(ev) is Event for ev in env._event_pool)
    assert all(type(tm) is Timeout for tm in env._timeout_pool)


def test_pool_capacity_bounds_the_freelist():
    env = RecyclingEnvironment(pool_capacity=4)

    def burner(env):
        for _ in range(50):
            yield env.timeout(1.0)

    env.process(burner(env))
    env.run(until=100.0)
    assert len(env._timeout_pool) <= 4
    assert len(env._event_pool) <= 4


def test_negative_delay_still_rejected_from_pool():
    env = RecyclingEnvironment()

    def prime(env):
        yield env.timeout(1.0)

    env.process(prime(env))
    env.run(until=2.0)
    assert env._timeout_pool  # next timeout() comes from the pool
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_rejects_negative_capacity():
    with pytest.raises(ValueError):
        RecyclingEnvironment(pool_capacity=-1)


def test_traced_run_matches_and_bypasses_recycling():
    from repro.obs import RingBufferSink, Tracer, use_tracer

    baseline = _pingpong(Environment(), 50)
    with use_tracer(Tracer(RingBufferSink())):
        env = RecyclingEnvironment()  # picks the tracer up from context
        assert env.tracer is not None
        traced = _pingpong(env, 50)
    assert traced == baseline


def test_make_environment_honors_env_var(monkeypatch):
    # Pin the DES core to pure so this exercises the recycling switch in
    # isolation (auto may otherwise hand back a NativeEnvironment).
    monkeypatch.setenv(NATIVE_ENV, "pure")
    monkeypatch.delenv(RECYCLE_ENV, raising=False)
    assert type(make_environment()) is Environment
    for value in ("1", "true", "ON", " 1 "):
        monkeypatch.setenv(RECYCLE_ENV, value)
        assert type(make_environment()) is RecyclingEnvironment
    for value in ("0", "", "off"):
        monkeypatch.setenv(RECYCLE_ENV, value)
        assert type(make_environment()) is Environment


def test_recycling_beats_native_core(monkeypatch):
    # Recycling reuses event objects, which the compiled pump does not
    # support; when both are requested, recycling wins and the core
    # silently falls back to pure (visible in telemetry).
    monkeypatch.setenv(RECYCLE_ENV, "1")
    monkeypatch.setenv(NATIVE_ENV, "1")
    env = make_environment()
    assert type(env) is RecyclingEnvironment
    assert env.core == "pure"


def test_make_environment_passes_initial_time(monkeypatch):
    monkeypatch.setenv(RECYCLE_ENV, "1")
    env = make_environment(5.0)
    assert env.now == 5.0


def test_campus_day_identical_under_recycling(monkeypatch):
    from repro.sim.scenarios import run_campus_day

    monkeypatch.delenv(RECYCLE_ENV, raising=False)
    plain = run_campus_day(day_length=600.0, seed=11)
    monkeypatch.setenv(RECYCLE_ENV, "1")
    recycled = run_campus_day(day_length=600.0, seed=11)
    assert recycled == plain
