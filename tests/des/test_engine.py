"""Tests for the DES environment: clock, ordering, run semantics."""

import pytest

from repro.des import EmptySchedule, Environment


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(initial_time=42.5).now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(3)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [3.0]


def test_run_until_time_stops_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1)

    env.process(proc(env))
    env.run(until=10)
    assert env.now == 10.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_run_without_until_drains_queue():
    env = Environment()

    def proc(env):
        yield env.timeout(7)

    env.process(proc(env))
    env.run()
    assert env.now == 7.0


def test_events_at_same_time_fire_in_fifo_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1)
        order.append(name)

    for name in "abcd":
        env.process(proc(env, name))
    env.run()
    assert order == list("abcd")


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4)
    env.timeout(2)
    assert env.peek() == 2.0


def test_peek_empty_is_infinite():
    assert Environment().peek() == float("inf")


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "done"

    result = env.run(until=env.process(proc(env)))
    assert result == "done"


def test_run_until_never_fired_event_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        env.run(until=ev)


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_zero_delay_timeout_fires_at_now():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [0.0]


def test_nested_process_spawning():
    env = Environment()
    log = []

    def child(env, k):
        yield env.timeout(k)
        log.append(("child", k, env.now))

    def parent(env):
        yield env.timeout(1)
        yield env.process(child(env, 2))
        log.append(("parent", env.now))

    env.process(parent(env))
    env.run()
    assert log == [("child", 2, 3.0), ("parent", 3.0)]


def test_deterministic_replay():
    """Two identical runs produce identical event interleavings."""

    def build_and_run():
        env = Environment()
        log = []

        def ping(env, name, period):
            while env.now < 20:
                log.append((name, env.now))
                yield env.timeout(period)

        env.process(ping(env, "a", 3))
        env.process(ping(env, "b", 5))
        env.run(until=20)
        return log

    assert build_and_run() == build_and_run()
