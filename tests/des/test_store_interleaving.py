"""Store/FilterStore behavior under contended interleavings."""

import random

from hypothesis import given, settings, strategies as st

from repro.des import Environment, FilterStore, Store


def test_multiple_pending_getters_served_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, store, name):
        item = yield store.get()
        got.append((name, item))

    for name in "abc":
        env.process(consumer(env, store, name))

    def producer(env, store):
        for i in range(3):
            yield env.timeout(1)
            yield store.put(i)

    env.process(producer(env, store))
    env.run()
    assert got == [("a", 0), ("b", 1), ("c", 2)]


def test_filter_store_pending_predicates_matched_on_arrival():
    env = Environment()
    store = FilterStore(env)
    got = []

    def want(env, store, name, predicate):
        item = yield store.get(predicate)
        got.append((name, item))

    env.process(want(env, store, "even", lambda x: x % 2 == 0))
    env.process(want(env, store, "big", lambda x: x > 10))

    def producer(env, store):
        for item in (3, 12, 4):
            yield env.timeout(1)
            yield store.put(item)

    env.process(producer(env, store))
    env.run()
    # Getter order is FIFO: "even" was first, so it claims 12 (the first
    # item matching its predicate); "big" then never sees another match.
    assert got == [("even", 12)]
    assert store.items == [3, 4]


def test_bounded_store_blocks_and_preserves_order():
    env = Environment()
    store = Store(env, capacity=2)
    consumed = []

    def producer(env, store):
        for i in range(6):
            yield store.put(i)

    def consumer(env, store):
        while len(consumed) < 6:
            yield env.timeout(1)
            item = yield store.get()
            consumed.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert consumed == list(range(6))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_property_store_conserves_items(seed):
    """Random producers/consumers: every item is delivered exactly once."""
    rng = random.Random(seed)
    env = Environment()
    store = Store(env, capacity=rng.choice([1, 2, 5, float("inf")]))
    n_items = rng.randint(1, 30)
    received = []

    def producer(env, store, items):
        for item in items:
            yield env.timeout(rng.random())
            yield store.put(item)

    def consumer(env, store, quota):
        for _ in range(quota):
            item = yield store.get()
            received.append(item)
            yield env.timeout(rng.random())

    items = list(range(n_items))
    split = rng.randint(0, n_items)
    env.process(producer(env, store, items[:split]))
    env.process(producer(env, store, items[split:]))
    quota_a = rng.randint(0, n_items)
    env.process(consumer(env, store, quota_a))
    env.process(consumer(env, store, n_items - quota_a))
    env.run(until=1000.0)
    assert sorted(received) == items
