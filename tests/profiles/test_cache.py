"""Tests for base-station profile caching."""

from repro.profiles import ProfileCache, ProfileServer


def test_admit_and_lookup_hit():
    server = ProfileServer()
    cache = ProfileCache("D", server)
    cache.admit_portable("p")
    assert cache.lookup("p") is not None
    assert cache.hits == 1
    assert cache.misses == 0


def test_lookup_miss_falls_back_to_server():
    server = ProfileServer()
    server.register_portable("p")
    cache = ProfileCache("D", server)
    profile = cache.lookup("p")
    assert profile is server.portable_profile("p")
    assert cache.misses == 1
    # Second lookup is now a hit.
    cache.lookup("p")
    assert cache.hits == 1


def test_lookup_totally_unknown_is_none():
    cache = ProfileCache("D", ProfileServer())
    assert cache.lookup("ghost") is None


def test_handoff_out_reports_and_passes_profile():
    server = ProfileServer()
    cache_d = ProfileCache("D", server)
    cache_a = ProfileCache("A", server)
    cache_d.admit_portable("p")
    handed = cache_d.handoff_out("p", "A")
    assert handed is not None
    assert "p" not in cache_d.cached_portables
    assert server.handoffs_recorded == 1
    cache_a.admit_portable("p", handed_profile=handed)
    assert "p" in cache_a.cached_portables


def test_refresh_static_pulls_authoritative_copy():
    server = ProfileServer()
    cache = ProfileCache("D", server)
    cache.admit_portable("p")
    refreshed = cache.refresh_static("p")
    assert refreshed is server.portable_profile("p")
    assert cache.refreshes == 1


def test_cell_profile_property_server_backed():
    server = ProfileServer()
    cache = ProfileCache("D", server)
    assert cache.cell_profile is server.cell_profile("D")
