"""Tests for cell/portable profiles and the booking calendar."""

import pytest

from repro.profiles import (
    BookingCalendar,
    CellClass,
    CellProfile,
    Meeting,
    PortableProfile,
)


def test_cell_class_lounge_membership():
    assert CellClass.MEETING_ROOM.is_lounge
    assert CellClass.CAFETERIA.is_lounge
    assert CellClass.DEFAULT.is_lounge
    assert not CellClass.OFFICE.is_lounge
    assert not CellClass.CORRIDOR.is_lounge


def test_meeting_validation():
    with pytest.raises(ValueError):
        Meeting(start=10.0, end=10.0, attendees=3)
    with pytest.raises(ValueError):
        Meeting(start=0.0, end=10.0, attendees=0)
    m = Meeting(start=0.0, end=10.0, attendees=3)
    assert m.contains(0.0)
    assert m.contains(9.99)
    assert not m.contains(10.0)


def test_calendar_ordering_and_queries():
    m1 = Meeting(start=100.0, end=200.0, attendees=5)
    m2 = Meeting(start=10.0, end=50.0, attendees=2)
    cal = BookingCalendar([m1])
    cal.book(m2)
    assert cal.meetings[0] is m2  # sorted by start
    assert cal.current(20.0) is m2
    assert cal.current(75.0) is None
    assert cal.next_after(60.0) is m1
    assert cal.next_after(500.0) is None
    assert len(cal) == 2


def test_portable_profile_next_predicted():
    profile = PortableProfile(portable_id="p")
    profile.history.record("C", "D", "A")
    profile.history.record("C", "D", "A")
    profile.history.record("E", "D", "C")
    assert profile.next_predicted("C", "D") == "A"
    assert profile.next_predicted("E", "D") == "C"
    assert profile.next_predicted("Z", "D") is None
    assert profile.triplets()[("C", "D")] == "A"


def test_cell_profile_neighbors_and_occupants():
    profile = CellProfile(cell_id="A", cell_class=CellClass.OFFICE)
    profile.add_neighbor("D", CellClass.CORRIDOR)
    profile.occupants.add("faculty")
    assert "D" in profile.neighbors
    assert profile.neighbor_classes["D"] is CellClass.CORRIDOR
    assert profile.is_occupant("faculty")
    assert not profile.is_occupant("stranger")


def test_cell_profile_prediction_falls_back_unconditioned():
    profile = CellProfile(cell_id="D")
    profile.history.record("C", "D", "A")
    profile.history.record("C", "D", "A")
    # Unknown previous cell: falls back to the unconditioned aggregate.
    assert profile.predict_next("unknown-prev") == "A"
    assert profile.predict_next("C") == "A"
    assert CellProfile(cell_id="X").predict_next() is None


def test_cell_profile_handoff_distribution():
    profile = CellProfile(cell_id="D")
    for _ in range(3):
        profile.history.record("C", "D", "A")
    profile.history.record("C", "D", "E")
    dist = profile.handoff_distribution()
    assert dist["A"] == pytest.approx(0.75)
    assert dist["E"] == pytest.approx(0.25)
