"""Tests for handoff histories and their aggregation."""

import pytest
from hypothesis import given, strategies as st

from repro.profiles import HandoffHistory, HandoffRecord


def test_record_accessors():
    rec = HandoffRecord("a", "b", "c")
    assert rec.previous == "a"
    assert rec.current == "b"
    assert rec.next == "c"
    assert rec == ("a", "b", "c")


def test_window_bounds_enforced():
    with pytest.raises(ValueError):
        HandoffHistory(window=0)


def test_sliding_window_evicts_oldest():
    history = HandoffHistory(window=3)
    for i in range(5):
        history.record(None, "cell", f"n{i}")
    assert len(history) == 3
    assert [r.next for r in history] == ["n2", "n3", "n4"]


def test_transition_counts_and_probabilities():
    history = HandoffHistory(window=10)
    for _ in range(3):
        history.record("p", "c", "x")
    history.record("p", "c", "y")
    history.record("q", "c", "y")
    counts = history.transition_counts("c")
    assert counts == {"x": 3, "y": 2}
    probs = history.transition_probabilities("c")
    assert probs["x"] == pytest.approx(0.6)
    assert probs["y"] == pytest.approx(0.4)


def test_conditioning_on_previous_cell():
    history = HandoffHistory(window=10)
    history.record("p", "c", "x")
    history.record("q", "c", "y")
    assert history.transition_counts("c", previous="p") == {"x": 1}
    assert history.most_likely_next("c", previous="q") == "y"


def test_most_likely_next_empty_is_none():
    assert HandoffHistory().most_likely_next("c") is None


def test_most_likely_next_tie_break_deterministic():
    h1 = HandoffHistory()
    h2 = HandoffHistory()
    h1.record(None, "c", "x")
    h1.record(None, "c", "y")
    h2.record(None, "c", "y")
    h2.record(None, "c", "x")
    assert h1.most_likely_next("c") == h2.most_likely_next("c")


def test_conditioned_triplets():
    history = HandoffHistory(window=20)
    for _ in range(3):
        history.record("C", "D", "A")
    history.record("C", "D", "E")
    history.record("E", "D", "C")
    triplets = history.conditioned_triplets()
    assert triplets[("C", "D")] == "A"
    assert triplets[("E", "D")] == "C"


@given(
    st.lists(
        st.tuples(st.sampled_from("abc"), st.sampled_from("de"), st.sampled_from("xyz")),
        min_size=1,
        max_size=50,
    )
)
def test_probabilities_sum_to_one(records):
    history = HandoffHistory(window=100)
    for prev, cur, nxt in records:
        history.record(prev, cur, nxt)
    for cur in "de":
        probs = history.transition_probabilities(cur)
        if probs:
            assert sum(probs.values()) == pytest.approx(1.0)
