"""Tests for the zone profile server."""

from repro.profiles import CellClass, ProfileServer


def test_register_cell_symmetric_neighbors():
    server = ProfileServer()
    server.register_cell("D", CellClass.CORRIDOR, neighbors=["A", "C"])
    assert "A" in server.cell_profile("D").neighbors
    assert "D" in server.cell_profile("A").neighbors


def test_register_cell_upgrades_unknown_class():
    server = ProfileServer()
    server.register_cell("A")  # auto-created as UNKNOWN
    assert server.cell_profile("A").cell_class is CellClass.UNKNOWN
    server.register_cell("A", CellClass.OFFICE)
    assert server.cell_profile("A").cell_class is CellClass.OFFICE


def test_report_handoff_updates_both_histories():
    server = ProfileServer()
    server.seed_presence("p", "C")
    server.report_handoff("p", "C", "D")
    server.report_handoff("p", "D", "A")
    # Portable triplet: (C, D) -> A
    assert server.portable_profile("p").next_predicted("C", "D") == "A"
    # Cell D aggregate knows about the D -> A move.
    assert server.cell_profile("D").predict_next("C") == "A"
    assert server.handoffs_recorded == 2


def test_context_tracking():
    server = ProfileServer()
    server.seed_presence("p", "C")
    assert server.context_of("p") == (None, "C")
    server.report_handoff("p", "C", "D")
    assert server.context_of("p") == ("C", "D")


def test_context_reset_on_discontinuity():
    """A handoff from an unexpected cell must not fabricate a triplet."""
    server = ProfileServer()
    server.seed_presence("p", "C")
    server.report_handoff("p", "X", "Y")  # we thought p was in C
    profile = server.portable_profile("p")
    # The recorded triplet has previous=None, not previous=C.
    assert profile.next_predicted("C", "X") is None
    assert profile.next_predicted(None, "X") == "Y"


def test_forget_and_adopt_portable_between_zones():
    zone1 = ProfileServer(zone_id="z1")
    zone2 = ProfileServer(zone_id="z2")
    zone1.seed_presence("p", "C")
    zone1.report_handoff("p", "C", "D")
    profile = zone1.forget_portable("p")
    assert profile is not None
    assert "p" not in zone1.portables
    zone2.adopt_portable(profile, context=("C", "D"))
    assert zone2.context_of("p") == ("C", "D")
    assert zone2.portable_profile("p").next_predicted("C", "D") is None  # 1 sample
    zone2.report_handoff("p", "D", "E")
    assert zone2.portable_profile("p").next_predicted("C", "D") == "E"


def test_forget_unknown_portable_returns_none():
    assert ProfileServer().forget_portable("ghost") is None


def test_windows_propagate_to_profiles():
    server = ProfileServer(portable_window=5, cell_window=7)
    server.register_portable("p")
    server.register_cell("c")
    assert server.portable_profile("p").history.window == 5
    assert server.cell_profile("c").history.window == 7
