"""Tests for the zone directory (Section 3.4.1's locational hierarchy)."""

import pytest

from repro.profiles import CellClass, ZoneDirectory


def build():
    directory = ZoneDirectory()
    directory.add_zone("north", cells=["n1", "n2"])
    directory.add_zone("south", cells=["s1", "s2"])
    return directory


def test_zone_assignment_and_lookup():
    directory = build()
    assert set(directory.zones) == {"north", "south"}
    assert directory.zone_of("n1") == "north"
    assert directory.server_for_cell("s2").zone_id == "south"
    with pytest.raises(KeyError):
        directory.zone_of("ghost")
    with pytest.raises(KeyError):
        directory.assign_cell("x", "ghost-zone")


def test_intra_zone_handoff_stays_on_one_server():
    directory = build()
    directory.seed_presence("p", "n1")
    directory.report_handoff("p", "n1", "n2")
    assert directory.cross_zone_handoffs == 0
    assert directory.portable_zone("p") == "north"
    north = directory.server_for_zone("north")
    assert north.handoffs_recorded == 1
    assert "p" in north.portables


def test_cross_zone_handoff_migrates_profile():
    directory = build()
    directory.seed_presence("p", "n1")
    directory.report_handoff("p", "n1", "n2")
    directory.report_handoff("p", "n2", "s1")   # zone crossing
    assert directory.cross_zone_handoffs == 1
    assert directory.portable_zone("p") == "south"
    north = directory.server_for_zone("north")
    south = directory.server_for_zone("south")
    assert "p" not in north.portables
    assert "p" in south.portables
    # History survived the migration: the (n1, n2) triplet is intact.
    assert south.portable_profile("p").next_predicted("n1", "n2") == "s1"
    # Context continues seamlessly in the new zone.
    directory.report_handoff("p", "s1", "s2")
    assert south.portable_profile("p").next_predicted("n2", "s1") == "s2"


def test_prediction_spans_zones_via_owning_server():
    directory = build()
    directory.seed_presence("p", "n1")
    for _ in range(3):
        directory.report_handoff("p", "n1", "n2")
        directory.report_handoff("p", "n2", "s1")
        directory.report_handoff("p", "s1", "n2")
        directory.report_handoff("p", "n2", "n1")
    prediction = directory.predict_next("p", "n2", previous_cell="n1")
    assert prediction.cell == "s1"


def test_zone_stats():
    directory = build()
    directory.seed_presence("p", "n1")
    directory.report_handoff("p", "n1", "n2")
    stats = {zone: (cells, portables, handoffs)
             for zone, cells, portables, handoffs in directory.stats()}
    assert stats["north"] == (2, 1, 1)
    assert stats["south"] == (2, 0, 0)


def test_cell_class_passes_through():
    directory = ZoneDirectory()
    directory.add_zone("z")
    directory.assign_cell("office", "z", cell_class=CellClass.OFFICE)
    assert directory.server_for_cell("office").cell_profile(
        "office"
    ).cell_class is CellClass.OFFICE
