"""Property-based checks of the packet MAC and channel model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import Environment
from repro.network import Link
from repro.traffic import cbr_packets
from repro.wireless import CellMac, GilbertElliottChannel


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.floats(min_value=50.0, max_value=400.0), min_size=1, max_size=4
    ),
    st.integers(min_value=0, max_value=10_000),
)
def test_mac_work_conservation(rates, seed):
    """Delivered bits ~= min(offered, capacity * time) for saturated input."""
    capacity = 500.0
    duration = 20.0
    env = Environment()
    link = Link("bs", "air", capacity=capacity)
    mac = CellMac(env, link)
    offered_rate = 0.0
    for i, rate in enumerate(rates):
        link.admit(f"f{i}", rate)
        # Each flow offers twice its reserved rate: the system saturates
        # whenever sum(2*rates) > capacity.
        env.process(
            mac.feed(f"f{i}", cbr_packets(2 * rate, 10.0, duration=duration))
        )
        offered_rate += 2 * rate
    env.run(until=duration)
    delivered = mac.total_delivered_bits()
    expected = min(offered_rate, capacity) * duration
    assert delivered == pytest.approx(expected, rel=0.1)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_mac_no_packet_lost_without_channel(seed):
    """Without a channel model, every submitted packet is delivered."""
    rng = random.Random(seed)
    env = Environment()
    link = Link("bs", "air", capacity=1000.0)
    mac = CellMac(env, link)
    link.admit("c", 500.0)
    n = rng.randint(1, 80)
    for _ in range(n):
        mac.submit("c", rng.uniform(1.0, 20.0))
    env.run(until=100.0)
    assert mac.stats["c"].delivered == n
    assert mac.stats["c"].lost == 0
    # Delays are non-negative and finite.
    assert all(r.delay >= 0 for r in mac.stats["c"].records)


@settings(max_examples=15, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=0.5),
    st.floats(min_value=0.0, max_value=0.5),
    st.integers(min_value=0, max_value=10_000),
)
def test_channel_loss_between_state_extremes(loss_good, loss_bad, seed):
    """Long-run measured loss lies between the two state probabilities."""
    lo, hi = sorted((loss_good, loss_bad))
    channel = GilbertElliottChannel(
        random.Random(seed), mean_good=5.0, mean_bad=5.0,
        loss_good=loss_good, loss_bad=loss_bad,
    )
    env = Environment()
    env.process(channel.run(env))

    losses = 0
    samples = 3000

    def sampler():
        nonlocal losses
        for _ in range(samples):
            yield env.timeout(0.05)
            if channel.packet_lost():
                losses += 1

    env.process(sampler())
    env.run(until=200.0)
    measured = losses / samples
    assert lo - 0.05 <= measured <= hi + 0.05
    assert lo <= channel.steady_state_loss() <= hi
