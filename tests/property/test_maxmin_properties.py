"""Property tests for the max-min allocator and the advertised-rate rule.

Randomized instances check the paper's Section 5.2 contract directly:

* feasibility — every connection's allocation stays inside its adaptive
  span (``[b_min, b_max]`` in absolute terms, ``[0, demand]`` in the
  excess terms the allocator works in), and no link is oversubscribed;
* optimality — the allocation satisfies the max-min certificate (every
  unsatisfied connection has a saturated bottleneck link on which nobody
  receives more), i.e. no allocation can be raised without lowering an
  equal-or-smaller one.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MaxMinProblem, maxmin_allocation
from repro.core.adaptation import compute_advertised_rate
from repro.core.maxmin import is_maxmin_fair

_TOL = 1e-6


@st.composite
def maxmin_problems(draw):
    """A random feasible instance: 1-5 links, 1-10 connections with
    non-empty paths and bounded or unbounded demands."""
    n_links = draw(st.integers(1, 5))
    link_ids = [f"link-{i}" for i in range(n_links)]
    problem = MaxMinProblem()
    for link_id in link_ids:
        problem.add_link(link_id, draw(st.floats(0.0, 100.0)))
    for j in range(draw(st.integers(1, 10))):
        path = draw(
            st.lists(
                st.sampled_from(link_ids),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        demand = draw(
            st.one_of(st.floats(0.0, 50.0), st.just(float("inf")))
        )
        problem.add_connection(f"conn-{j}", path, demand)
    return problem


@settings(max_examples=100, deadline=None)
@given(maxmin_problems())
def test_allocation_stays_within_demand_span(problem):
    allocation = maxmin_allocation(problem)
    assert set(allocation) == set(problem.demands)
    for conn, rate in allocation.items():
        assert rate >= -_TOL
        assert rate <= problem.demands[conn] + _TOL


@settings(max_examples=100, deadline=None)
@given(maxmin_problems())
def test_per_link_sums_respect_capacity(problem):
    allocation = maxmin_allocation(problem)
    for link_id, capacity in problem.capacities.items():
        used = sum(
            allocation[conn] for conn in problem.connections_on(link_id)
        )
        assert used <= capacity + _TOL


@settings(max_examples=100, deadline=None)
@given(maxmin_problems())
def test_allocation_satisfies_maxmin_certificate(problem):
    allocation = maxmin_allocation(problem)
    assert is_maxmin_fair(problem, allocation, tol=_TOL)


@st.composite
def bounded_connection_sets(draw):
    """Connections described by absolute ``[b_min, b_max]`` QoS bounds
    sharing one cell link, as in the paper's excess-sharing setting."""
    bounds = draw(
        st.lists(
            st.tuples(st.floats(0.0, 32.0), st.floats(0.0, 32.0)),
            min_size=1,
            max_size=8,
        )
    )
    bounds = [(min(a, b), max(a, b)) for a, b in bounds]
    capacity = draw(st.floats(0.0, 200.0))
    return bounds, capacity


@settings(max_examples=100, deadline=None)
@given(bounded_connection_sets())
def test_absolute_rates_stay_within_qos_bounds(case):
    """b_min + excess allocation never leaves [b_min, b_max]."""
    bounds, capacity = case
    floors = sum(b_min for b_min, _ in bounds)
    problem = MaxMinProblem()
    problem.add_link("cell", max(0.0, capacity - floors))
    for i, (b_min, b_max) in enumerate(bounds):
        problem.add_connection(f"conn-{i}", ["cell"], b_max - b_min)
    allocation = maxmin_allocation(problem)
    for i, (b_min, b_max) in enumerate(bounds):
        absolute = b_min + allocation[f"conn-{i}"]
        assert absolute >= b_min - _TOL
        assert absolute <= b_max + _TOL


# -- advertised-rate rule (Section 5.3.1) -----------------------------------

_recorded_rates = st.dictionaries(
    st.sampled_from([f"conn-{i}" for i in range(8)]),
    st.floats(0.0, 100.0),
    max_size=8,
)


@settings(max_examples=100, deadline=None)
@given(
    capacity=st.floats(0.0, 200.0),
    recorded=_recorded_rates,
    mu_prev=st.floats(0.0, 200.0),
)
def test_advertised_rate_bounded_by_capacity(capacity, recorded, mu_prev):
    mu = compute_advertised_rate(capacity, recorded, mu_prev)
    assert 0.0 <= mu <= capacity + _TOL


@settings(max_examples=100, deadline=None)
@given(capacity=st.floats(0.0, 200.0), mu_prev=st.floats(0.0, 200.0))
def test_advertised_rate_of_empty_link_is_full_capacity(capacity, mu_prev):
    assert compute_advertised_rate(capacity, {}, mu_prev) == capacity


@settings(max_examples=100, deadline=None)
@given(
    capacity=st.floats(0.0, 200.0),
    recorded=_recorded_rates,
    mu_prev=st.floats(0.0, 200.0),
)
def test_advertised_rate_is_a_fixed_point(capacity, recorded, mu_prev):
    """Feeding the converged rate back as mu_prev reproduces it: the
    restricted-set marking has genuinely reached its fixed point rather
    than depending on the caller's cached previous value."""
    mu = compute_advertised_rate(capacity, recorded, mu_prev)
    again = compute_advertised_rate(capacity, recorded, mu)
    assert again == pytest.approx(mu, rel=1e-9, abs=1e-9)
