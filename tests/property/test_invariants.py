"""Property-based invariants across the resource-management plane."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AdmissionController,
    CellReservations,
    MaxMinProblem,
    audio_request,
    maxmin_allocation,
)
from repro.des import Environment
from repro.network import Link, Topology
from repro.traffic import Connection


# -- Link ledger under random operation sequences --------------------------------------

link_ops = st.lists(
    st.one_of(
        st.tuples(st.just("admit"), st.integers(0, 5),
                  st.floats(1.0, 30.0), st.floats(0.0, 10.0)),
        st.tuples(st.just("release"), st.integers(0, 5)),
        st.tuples(st.just("set_excess"), st.integers(0, 5), st.floats(0.0, 40.0)),
        st.tuples(st.just("reserve"), st.floats(0.0, 20.0)),
        st.tuples(st.just("unreserve"), st.floats(0.0, 20.0)),
    ),
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(link_ops)
def test_link_ledger_invariants(ops):
    """min_committed == sum of minimums, allocated >= min_committed,
    reserved >= 0, after any operation sequence."""
    link = Link("a", "b", capacity=1000.0)
    for op in ops:
        kind = op[0]
        try:
            if kind == "admit":
                _, cid, minimum, excess = op
                link.admit(f"c{cid}", minimum, excess)
            elif kind == "release":
                link.release(f"c{op[1]}")
            elif kind == "set_excess":
                link.set_excess(f"c{op[1]}", op[2])
            elif kind == "reserve":
                link.reserve(op[1])
            else:
                link.unreserve(op[1])
        except KeyError:
            pass  # duplicate admit / missing release: rejected, state intact

        assert link.reserved >= 0
        assert link.min_committed == pytest.approx(
            sum(a.minimum for a in link.allocations.values())
        )
        assert link.allocated >= link.min_committed - 1e-9
        assert link.excess_available == pytest.approx(
            link.capacity - link.reserved - link.min_committed
        )


# -- CellReservations <-> link synchronization ---------------------------------------------

ledger_ops = st.lists(
    st.one_of(
        st.tuples(st.just("target"), st.integers(0, 3), st.floats(0.0, 50.0)),
        st.tuples(st.just("release"), st.integers(0, 3)),
        st.tuples(st.just("claim"), st.integers(0, 3)),
        st.tuples(st.just("aggregate"), st.integers(0, 2), st.floats(0.0, 50.0)),
        st.tuples(st.just("draw_agg"), st.integers(0, 2), st.floats(0.0, 60.0)),
        st.tuples(st.just("pool"), st.floats(0.0, 300.0)),
        st.tuples(st.just("draw_pool"), st.floats(0.0, 60.0)),
    ),
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(ledger_ops)
def test_reservation_ledger_sync(ops):
    """link.reserved always equals pool + targeted + aggregate totals."""
    link = Link("a", "b", capacity=1000.0)
    ledger = CellReservations(link)
    for op in ops:
        kind = op[0]
        if kind == "target":
            ledger.reserve_for_portable(f"p{op[1]}", op[2])
        elif kind == "release":
            ledger.release_portable(f"p{op[1]}")
        elif kind == "claim":
            ledger.claim_portable(f"p{op[1]}")
        elif kind == "aggregate":
            ledger.reserve_aggregate(f"tag{op[1]}", op[2])
        elif kind == "draw_agg":
            ledger.draw_aggregate(f"tag{op[1]}", op[2])
        elif kind == "pool":
            ledger.set_pool(op[1])
        else:
            ledger.draw_pool(op[1])

        assert link.reserved == pytest.approx(ledger.total)
        assert ledger.total >= 0
        assert (
            ledger.min_pool_fraction * link.capacity * 0  # pool may be drawn
            <= ledger.pool
            <= ledger.max_pool_fraction * link.capacity + 1e-9
        )


# -- admission probe/commit consistency -------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=17.0, max_value=5000.0),
    st.floats(min_value=0.0, max_value=4000.0),
    st.integers(min_value=0, max_value=6),
)
def test_admission_probe_matches_commit(capacity, reserved, existing):
    """A dry-run admission decision always equals the committing one."""
    def build():
        topo = Topology()
        topo.add_link("air", "bs", capacity=capacity)
        topo.add_link("bs", "router", capacity=10_000.0)
        link = topo.link("air", "bs")
        link.reserve(min(reserved, capacity - 1.0))
        for i in range(existing):
            if link.excess_available >= 16.0:
                link.admit(f"bg{i}", 16.0)
        return topo

    route = ["air", "bs", "router"]
    conn = Connection(src="air", dst="router", qos=audio_request())

    probe = AdmissionController(build()).admit(conn, route, commit=False)
    committed = AdmissionController(build()).admit(
        Connection(src="air", dst="router", qos=audio_request()),
        route,
    )
    assert probe.accepted == committed.accepted
    if probe.accepted:
        assert probe.granted_rate == committed.granted_rate


# -- max-min structural properties ----------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=4),
    st.integers(min_value=1, max_value=6),
    st.randoms(use_true_random=False),
)
def test_maxmin_scaling_invariance(capacities, n_conns, rng):
    """Scaling all capacities and demands by k scales the allocation by k."""
    problem = MaxMinProblem()
    scaled = MaxMinProblem()
    k = 3.0
    links = [f"l{i}" for i in range(len(capacities))]
    for link, capacity in zip(links, capacities):
        problem.add_link(link, capacity)
        scaled.add_link(link, capacity * k)
    for i in range(n_conns):
        path = rng.sample(links, rng.randint(1, len(links)))
        demand = rng.choice([float("inf"), rng.uniform(1.0, 50.0)])
        problem.add_connection(f"c{i}", path, demand)
        scaled.add_connection(
            f"c{i}", path, demand * k if demand != float("inf") else demand
        )
    base = maxmin_allocation(problem)
    big = maxmin_allocation(scaled)
    for conn in base:
        assert big[conn] == pytest.approx(base[conn] * k, abs=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=4),
    st.integers(min_value=1, max_value=6),
    st.randoms(use_true_random=False),
)
def test_maxmin_monotone_in_capacity(capacities, n_conns, rng):
    """Raising one link's capacity never reduces the minimum allocation."""
    def build(bonus):
        problem = MaxMinProblem()
        links = [f"l{i}" for i in range(len(capacities))]
        for j, (link, capacity) in enumerate(zip(links, capacities)):
            problem.add_link(link, capacity + (bonus if j == 0 else 0.0))
        state = random.Random(17)
        for i in range(n_conns):
            path = state.sample(links, state.randint(1, len(links)))
            problem.add_connection(f"c{i}", path)
        return problem

    before = maxmin_allocation(build(0.0))
    after = maxmin_allocation(build(25.0))
    assert min(after.values()) >= min(before.values()) - 1e-9


# -- DES determinism ------------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_des_replay_determinism(seed):
    """Identical seeds produce identical event traces."""

    def run():
        env = Environment()
        rng = random.Random(seed)
        log = []

        def worker(name, mean):
            while True:
                yield env.timeout(rng.expovariate(1.0 / mean))
                log.append((name, env.now))

        for i in range(3):
            env.process(worker(f"w{i}", 1.0 + i))
        env.run(until=50.0)
        return log

    assert run() == run()
