"""Property-based checks of the adaptation protocol and handoff engine."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AdaptationProtocol, QoSBounds, QoSRequest, audio_request
from repro.des import Environment
from repro.network import line_topology
from repro.network.routing import shortest_path
from repro.profiles import CellClass
from repro.traffic import Connection, FlowSpec
from repro.wireless import Cell, HandoffEngine, Portable


scenario = st.tuples(
    st.integers(min_value=3, max_value=6),                    # switches
    st.lists(
        st.tuples(
            st.integers(0, 4),                                # start index
            st.integers(1, 5),                                # span
            st.sampled_from([15.0, 60.0, 1000.0]),            # b_max
        ),
        min_size=1,
        max_size=6,
    ),
)


@settings(max_examples=25, deadline=None)
@given(scenario)
def test_adaptation_always_converges_to_maxmin(params):
    """Theorem 1 as a property: arbitrary line scenarios converge exactly."""
    switches, conn_specs = params
    topo = line_topology(switches, capacity=200.0, prop_delay=0.001)
    env = Environment()
    protocol = AdaptationProtocol(env, topo)
    for i, (start, span, b_max) in enumerate(conn_specs):
        a = min(start, switches - 2)
        b = min(a + span, switches - 1)
        qos = QoSRequest(
            flowspec=FlowSpec(sigma=1.0, rho=10.0),
            bounds=QoSBounds(10.0, max(10.0, b_max)),
        )
        conn = Connection(src=f"s{a}", dst=f"s{b}", qos=qos, conn_id=f"c{i}")
        conn.activate(shortest_path(topo, conn.src, conn.dst), 10.0, 0.0)
        protocol.register_connection(conn)
    env.run()

    reference = protocol.reference_allocation()
    for conn_id, excess in reference.items():
        conn = protocol.connections[conn_id]
        assert protocol.rate_of(conn_id) == pytest.approx(
            conn.b_min + excess, abs=1e-3
        )
        # Rates never violate negotiated bounds.
        assert conn.rate <= conn.b_max + 1e-9
        assert conn.rate >= conn.b_min - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),   # portables
    st.floats(min_value=40.0, max_value=400.0),
    st.integers(min_value=0, max_value=3000),
)
def test_handoff_engine_conserves_connections(n_portables, capacity, seed):
    """Every connection ends up either allocated at the target or dropped —
    never duplicated, never leaked at the source."""
    rng = random.Random(seed)
    src = Cell("src", capacity=10_000.0, cell_class=CellClass.CORRIDOR)
    dst = Cell("dst", capacity=capacity, cell_class=CellClass.DEFAULT)
    src.add_neighbor("dst")
    dst.add_neighbor("src")
    cells = {"src": src, "dst": dst}
    engine = HandoffEngine(get_cell=cells.__getitem__)

    conns = []
    for i in range(n_portables):
        p = Portable(f"p{i}")
        p.move_to("src", 0.0)
        src.enter(p.portable_id, 0.0)
        conn = Connection(src="x", dst="y", qos=audio_request())
        conn.activate(["x", "y"], 16.0, 0.0)
        p.attach(conn)
        src.link.admit(conn.conn_id, 16.0)
        conns.append((p, conn))
        if rng.random() < 0.4:
            dst.reservations.reserve_for_portable(p.portable_id, 16.0)

    moved = dropped = 0
    for p, conn in conns:
        outcome = engine.execute(p, "dst", now=1.0)
        moved += len(outcome.moved)
        dropped += len(outcome.dropped)

    assert moved + dropped == n_portables
    # Source link fully vacated.
    assert not src.link.allocations
    # Target carries exactly the moved connections, within capacity.
    assert len(dst.link.allocations) == moved
    assert dst.link.min_committed <= dst.link.capacity + 1e-9
    # No negative reservation state.
    assert dst.link.reserved >= -1e-9
