"""Property-based checks of the Table 2 admission controller."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AdmissionController
from repro.core.qos import QoSBounds, QoSRequest
from repro.network import (
    Discipline,
    Topology,
    cumulative_jitter,
    e2e_delay_lower_bound,
    path_loss_probability,
)
from repro.traffic import Connection, FlowSpec


request_strategy = st.builds(
    dict,
    b_min=st.floats(min_value=1.0, max_value=200.0),
    span=st.floats(min_value=0.0, max_value=400.0),
    sigma=st.floats(min_value=0.0, max_value=50.0),
    l_max=st.floats(min_value=0.5, max_value=8.0),
    delay=st.floats(min_value=0.01, max_value=50.0),
    jitter=st.floats(min_value=0.01, max_value=50.0),
    loss=st.floats(min_value=0.001, max_value=1.0),
)

path_strategy = st.lists(
    st.tuples(
        st.floats(min_value=100.0, max_value=10_000.0),   # capacity
        st.floats(min_value=0.0, max_value=0.05),         # error prob
    ),
    min_size=1,
    max_size=5,
)


def build(path_spec):
    topo = Topology()
    nodes = [f"n{i}" for i in range(len(path_spec) + 1)]
    for (capacity, loss), a, b in zip(path_spec, nodes, nodes[1:]):
        topo.add_link(a, b, capacity=capacity, error_prob=loss)
    return topo, nodes


@settings(max_examples=80, deadline=None)
@given(request_strategy, path_strategy, st.booleans(), st.booleans())
def test_admission_decision_is_sound(params, path_spec, static, rcsp):
    """If accepted: the grant is inside the bounds, fits every link's
    capacity, and the QoS bounds genuinely hold; if rejected: some Table 2
    row genuinely fails."""
    topo, nodes = build(path_spec)
    discipline = Discipline.RCSP if rcsp else Discipline.WFQ
    controller = AdmissionController(topo, discipline)
    qos = QoSRequest(
        flowspec=FlowSpec(params["sigma"], params["b_min"], params["l_max"]),
        bounds=QoSBounds(params["b_min"], params["b_min"] + params["span"]),
        delay_bound=params["delay"],
        jitter_bound=params["jitter"],
        loss_bound=params["loss"],
    )
    conn = Connection(src=nodes[0], dst=nodes[-1], qos=qos)
    result = controller.admit(conn, nodes, static_portable=static)

    caps = [link.capacity for link in topo.path_links(nodes)]
    errors = [link.error_prob for link in topo.path_links(nodes)]
    d_min = e2e_delay_lower_bound(
        params["sigma"], params["b_min"], params["l_max"], caps
    )
    loss = path_loss_probability(errors)
    jitter = cumulative_jitter(
        params["sigma"], params["b_min"], params["l_max"], len(caps)
    )

    if result.accepted:
        assert qos.bounds.contains(result.granted_rate)
        for link in topo.path_links(nodes):
            # Floors plus the grant never exceed capacity.
            assert link.min_committed + link.reserved <= link.capacity + 1e-6
            assert (
                link.rate_of(conn.conn_id) <= link.capacity + 1e-6
            )
        assert d_min <= params["delay"] + 1e-9
        assert loss <= params["loss"] + 1e-9
        assert jitter <= params["jitter"] + 1e-9
        # Relaxed per-hop delays never shrink below the forward-pass locals.
        assert all(d > 0 for d in result.hop_delays)
        assert all(b >= 0 for b in result.hop_buffers)
        assert len(result.hop_delays) == len(caps)
    else:
        # The reported failure is real.
        violated = (
            d_min > params["delay"] - 1e-9
            or loss > params["loss"] - 1e-9
            or jitter > params["jitter"] - 1e-9
            or any(params["b_min"] > link.excess_available + 1e-9
                   for link in topo.path_links(nodes))
        )
        assert violated, f"rejected ({result.reason}) without a violated row"


@settings(max_examples=40, deadline=None)
@given(request_strategy, path_strategy)
def test_static_grant_dominates_mobile(params, path_spec):
    """A static portable is never granted less than a mobile one."""
    def admitted(static):
        topo, nodes = build(path_spec)
        controller = AdmissionController(topo)
        qos = QoSRequest(
            flowspec=FlowSpec(params["sigma"], params["b_min"], params["l_max"]),
            bounds=QoSBounds(params["b_min"], params["b_min"] + params["span"]),
            delay_bound=params["delay"],
            jitter_bound=params["jitter"],
            loss_bound=params["loss"],
        )
        conn = Connection(src=nodes[0], dst=nodes[-1], qos=qos)
        return controller.admit(conn, nodes, static_portable=static)

    static = admitted(True)
    mobile = admitted(False)
    assert static.accepted == mobile.accepted
    if static.accepted:
        assert static.granted_rate >= mobile.granted_rate - 1e-9
        assert mobile.granted_rate == pytest.approx(params["b_min"])
