"""Property-based checks of the mobility traces and routing."""

from collections import defaultdict
from hypothesis import given, settings, strategies as st

from repro.mobility import class_session_trace, figure4_floorplan, office_week_trace
from repro.network import Topology, qos_route, widest_path
from repro.network.routing import NoRouteError, shortest_path


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_office_trace_respects_floorplan_adjacency(seed):
    """Every handoff in the generated workweek is between adjacent cells."""
    plan = figure4_floorplan()
    trace = office_week_trace(seed=seed)
    for event in trace:
        assert event.to_cell in plan.neighbors(event.from_cell), (
            f"{event.from_cell} -> {event.to_cell} not adjacent"
        )


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_office_trace_journeys_mostly_chain(seed):
    """Per portable, consecutive events mostly chain (from == previous to).

    Journeys for the same portable can overlap in time (the generator is a
    *statistical* calibration of the measured handoff streams, not a
    physically continuous movement record — see DESIGN.md), so some resets
    are expected; contiguity must still dominate.
    """
    trace = office_week_trace(seed=seed)
    last_cell = {}
    resets = chains = 0
    for event in trace:
        prev = last_cell.get(event.portable)
        if prev is not None:
            if prev == event.from_cell:
                chains += 1
            else:
                resets += 1
        last_cell[event.portable] = event.to_cell
    assert chains > 2 * resets  # journeys are mostly contiguous


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=40),
)
def test_class_trace_conserves_attendees(seed, students):
    """Every attendee enters the classroom exactly once and leaves once."""
    trace = class_session_trace(
        seed=seed, students=students, start_time=1800.0, end_time=3600.0,
        walkby_rate=0.05,
    )
    entries = defaultdict(int)
    exits = defaultdict(int)
    for event in trace:
        if event.to_cell == "class":
            entries[event.portable] += 1
        if event.from_cell == "class":
            exits[event.portable] += 1
    attendees = {p for p in entries if str(p).startswith("attendee")}
    assert len(attendees) == students
    for p in attendees:
        assert entries[p] == 1
        assert exits[p] == 1


grid_edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=10.0, max_value=1000.0),
    ),
    min_size=1,
    max_size=15,
)


@settings(max_examples=60, deadline=None)
@given(grid_edges, st.floats(min_value=1.0, max_value=100.0))
def test_qos_route_links_always_satisfy_floor(edges, b_min):
    """Any route qos_route returns has headroom >= b_min on every link."""
    topo = Topology()
    for a, b, capacity in edges:
        if a != b and not topo.has_link(f"n{a}", f"n{b}"):
            topo.add_duplex_link(f"n{a}", f"n{b}", capacity=capacity)
    nodes = [n.node_id for n in topo.nodes]
    if len(nodes) < 2:
        return
    src, dst = nodes[0], nodes[-1]
    try:
        route = qos_route(topo, src, dst, b_min)
    except NoRouteError:
        return
    for link in topo.path_links(route):
        assert link.excess_available >= b_min


@settings(max_examples=60, deadline=None)
@given(grid_edges)
def test_widest_path_bottleneck_dominates_shortest(edges):
    """The widest path's bottleneck is >= the shortest path's bottleneck."""
    topo = Topology()
    for a, b, capacity in edges:
        if a != b and not topo.has_link(f"n{a}", f"n{b}"):
            topo.add_duplex_link(f"n{a}", f"n{b}", capacity=capacity)
    nodes = [n.node_id for n in topo.nodes]
    if len(nodes) < 2:
        return
    src, dst = nodes[0], nodes[-1]
    try:
        short = shortest_path(topo, src, dst)
        wide = widest_path(topo, src, dst)
    except NoRouteError:
        return

    def bottleneck(route):
        return min(link.excess_available for link in topo.path_links(route))

    assert bottleneck(wide) >= bottleneck(short) - 1e-9
