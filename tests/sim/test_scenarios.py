"""Tests for the packaged campus-day scenario."""

from repro.sim import run_campus_day


def test_campus_day_exercises_the_whole_pipeline():
    result = run_campus_day(seed=42, day_length=2 * 3600.0, patrons=6, walkers=3)
    stats = result.stats
    # Everybody opened connections.
    assert stats.new_requests >= 10
    assert stats.admitted > 0
    # Mobility happened.
    assert stats.handoff_attempts > 5
    # Static office workers got upgraded beyond their floors.
    assert result.static_upgrades > 0
    assert result.final_rates


def test_campus_day_reproducible():
    a = run_campus_day(seed=7, day_length=3600.0, patrons=4, walkers=2)
    b = run_campus_day(seed=7, day_length=3600.0, patrons=4, walkers=2)
    assert a.stats.new_requests == b.stats.new_requests
    assert a.stats.handoff_attempts == b.stats.handoff_attempts
    assert a.handoffs == b.handoffs


def test_office_week_replay_through_live_system():
    from repro.sim import run_office_week

    result = run_office_week(seed=1996)
    tracked = result.reservation_hits + result.reservation_misses
    assert tracked > 3000
    # The predictor-driven reservations are right most of the time...
    assert result.hit_rate > 0.6
    # ...and at 1.6 Mbps cells the week passes without a single drop.
    assert result.drops == 0
    assert result.stats.handoff_attempts >= tracked
