"""Pure×native identity matrix: the compiled DES core changes nothing.

The contract of ``repro.des._speedups`` is *bit identity*: every workload
must produce byte-for-byte the same output on the compiled kernel as on
the pure-Python one, under every hash seed.  These tests run each
scenario in subprocesses across the full ``core × PYTHONHASHSEED``
matrix and require a single distinct output.

Each subprocess also asserts (without printing, so the comparison stays
meaningful) that the kernel it *actually* selected matches the one the
matrix requested — a silently wrong selection seam would otherwise make
the identity check vacuous.

On hosts without a compiler the native legs are skipped; the pure legs
of these workloads are covered by ``test_hashseed_determinism.py``.
"""

import itertools
import os
import pathlib
import subprocess
import sys

import pytest

from repro.des.engine import NATIVE_ENV, native_available

HASH_SEEDS = ("0", "1", "31337")
CORES = ("pure", "native")

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

requires_native = pytest.mark.skipif(
    not native_available(),
    reason="repro.des._speedups not built (python setup.py build_ext --inplace)",
)

#: Prepended to every snippet: fail the subprocess outright if the
#: requested kernel is not the one make_environment() would build.
_CORE_GUARD = f"""
import os
from repro.des.engine import selected_core
assert selected_core() == os.environ["{NATIVE_ENV}"], (
    "selection seam picked %r, matrix requested %r"
    % (selected_core(), os.environ["{NATIVE_ENV}"])
)
"""


def _run_snippet(snippet: str, core: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    env[NATIVE_ENV] = core
    env.pop("REPRO_DES_RECYCLE", None)  # recycling would veto the native leg
    proc = subprocess.run(
        [sys.executable, "-c", _CORE_GUARD + snippet],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def _assert_core_matrix_identical(snippet: str) -> None:
    outputs = {
        (core, seed): _run_snippet(snippet, core, seed)
        for core, seed in itertools.product(CORES, HASH_SEEDS)
    }
    assert all(outputs.values()), "workload printed nothing"
    distinct = set(outputs.values())
    assert len(distinct) == 1, (
        "output differs across core/hash-seed matrix:\n"
        + "\n---\n".join(sorted(distinct))
    )


@requires_native
def test_twocell_bit_identical_pure_vs_native():
    """Figure 6 two-cell run: stats and in-kernel event tally agree."""
    _assert_core_matrix_identical(
        """
import dataclasses
from repro.des.engine import events_processed_total
from repro.sim import TwoCellSimulator, figure6_config

before = events_processed_total()
result = TwoCellSimulator(
    figure6_config(policy="probabilistic", horizon=60.0, seed=11)
).run()
print((dataclasses.astuple(result.stats), events_processed_total() - before))
"""
    )


@requires_native
def test_campus_day_bit_identical_pure_vs_native():
    """Campus day-in-the-life: every cell class, handoffs, upgrades."""
    _assert_core_matrix_identical(
        """
import dataclasses
from repro.sim.scenarios import run_campus_day

result = run_campus_day(seed=11, day_length=3600.0, walkers=3, patrons=8)
print((
    dataclasses.astuple(result.stats),
    result.handoffs,
    result.static_upgrades,
    sorted((str(k), repr(v)) for k, v in result.final_rates.items()),
))
"""
    )


@requires_native
def test_fault_injection_sweep_bit_identical_pure_vs_native():
    """A fault-tolerant sweep (retries + partial failures) merges the same
    surviving results and counts the same in-kernel events on both cores."""
    _assert_core_matrix_identical(
        """
import dataclasses
from repro.runtime import ExperimentRunner, FailedResult
from repro.sim import TwoCellSimulator, figure6_config


def _worker(config):
    if config["seed"] == 3:
        raise ValueError("injected fault for seed 3")
    return dataclasses.astuple(
        TwoCellSimulator(
            figure6_config(policy="plain", horizon=30.0, seed=config["seed"])
        ).run().stats
    )


runner = ExperimentRunner(jobs=1, max_retries=1, partial=True, sleep=lambda s: None)
results = runner.run_many(_worker, [{"seed": s} for s in (1, 2, 3, 4)])
canon = [
    ("failed", r.error) if isinstance(r, FailedResult) else ("ok", r)
    for r in results
]
t = runner.telemetry
print((canon, t.replications, t.retries, t.failures, t.des_events))
"""
    )
