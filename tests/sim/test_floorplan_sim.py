"""Tests for the full floorplan simulator wiring."""

import pytest

from repro.core import audio_request
from repro.mobility import campus_floorplan
from repro.profiles import BookingCalendar, CellClass, Meeting
from repro.sim import FloorplanSimulator


def build(**kw):
    return FloorplanSimulator(campus_floorplan(), capacity=1600.0, **kw)


def test_cells_mirror_floorplan():
    sim = build()
    plan = campus_floorplan()
    assert set(sim.cells) == set(plan.cells)
    for cell_id, cell in sim.cells.items():
        assert cell.cell_class is plan.cell_class(cell_id)
        assert cell.neighbors == plan.neighbors(cell_id)
    assert "alice" in sim.cells["office-1"].occupants


def test_lounge_processes_started_per_class():
    sim = build(calendars={"meeting": BookingCalendar([Meeting(100.0, 200.0, 3)])})
    assert set(sim.lounge_processes) == {"meeting", "cafeteria", "lounge"}


def test_add_portable_and_connection():
    sim = build()
    sim.add_portable("u", "cor-1")
    conn = sim.request_connection("u", audio_request())
    assert conn is not None
    assert sim.stats.new_requests == 1
    assert sim.stats.admitted == 1


def test_move_records_handoff_stats_and_slot_counters():
    sim = build()
    sim.add_portable("u", "cor-4")
    sim.request_connection("u", audio_request())
    outcome = sim.move("u", "lounge")
    assert outcome.clean
    assert sim.stats.handoff_attempts == 1
    # The default-lounge slot counter saw an incoming handoff.
    assert sim.lounge_processes["lounge"].incoming.current == 1
    sim.move("u", "cor-4")
    assert sim.lounge_processes["lounge"].outgoing.current == 1


def test_meeting_calendar_drives_reservations():
    meeting = Meeting(start=2000.0, end=5000.0, attendees=4)
    sim = build(
        calendars={"meeting": BookingCalendar([meeting])},
        per_user_bandwidth=16.0,
    )
    sim.run(until=meeting.start - 300.0)
    tag = ("meeting", "meeting")
    assert sim.cells["meeting"].reservations.aggregate_for(tag) == pytest.approx(
        4 * 16.0
    )
    # An attendee handing in shrinks the pool.
    sim.add_portable("a", "cor-3")
    sim.request_connection("a", audio_request())
    sim.move("a", "meeting")
    assert sim.cells["meeting"].reservations.aggregate_for(tag) == pytest.approx(
        3 * 16.0
    )


def test_run_advances_clock_and_returns_stats():
    sim = build()
    stats = sim.run(until=100.0)
    assert sim.env.now == 100.0
    assert stats is sim.stats


def test_unknown_cells_get_learners_and_adopt_labels():
    from repro.mobility import FloorPlan

    plan = FloorPlan(name="learn")
    plan.add_cell("mystery", CellClass.UNKNOWN)
    plan.add_cell("west", CellClass.CORRIDOR)
    plan.add_cell("east", CellClass.CORRIDOR)
    plan.connect("west", "mystery")
    plan.connect("mystery", "east")
    plan.connect("west", "east")
    sim = FloorplanSimulator(plan, capacity=1600.0, slot_duration=30.0)
    assert set(sim.learners) == {"mystery"}

    # Directional pass-through traffic: the learner should call it a
    # corridor.
    for i in range(60):
        pid = f"w{i}"
        sim.add_portable(pid, "west")
        sim.request_connection(pid, audio_request())
        sim.move(pid, "mystery")
        sim.env.run(until=sim.env.now + 5.0)
        sim.move(pid, "east")
        sim.env.run(until=sim.env.now + 10.0)
    sim.env.run(until=sim.env.now + 31.0)
    assert sim.cells["mystery"].cell_class is CellClass.CORRIDOR
    assert sim.manager.server.cell_profile("mystery").cell_class is (
        CellClass.CORRIDOR
    )


def test_known_cells_have_no_learners():
    sim = build()
    assert sim.learners == {}
