"""Tests for the Figure 5 replay harness internals."""

import pytest

from repro.experiments.figure5 import (
    Figure5Config,
    _ReplayHarness,
    _bandwidth_quota,
)
import random


def test_bandwidth_quota_deterministic_mix():
    config = Figure5Config(students=40)
    quota = _bandwidth_quota(config, random.Random(1))
    assert len(quota) == 40
    assert quota.count(config.bw_high) == 10   # exactly 25%
    assert quota.count(config.bw_low) == 30
    # Aggregate load is deterministic regardless of shuffle order.
    assert sum(quota) == 10 * 64.0 + 30 * 16.0


def test_offered_load_formula():
    config = Figure5Config(students=35)
    # 35 users at mean 28 kbps on 1600 kbps.
    assert config.offered_load == pytest.approx(35 * 28.0 / 1600.0)


def test_harness_reservation_capping():
    config = Figure5Config(students=5)
    harness = _ReplayHarness(config)
    cell = harness.cells["class"]
    # Uncapped booking may exceed headroom (the brute-force behavior).
    booked = harness.place_reservation("p1", "class", 10_000.0)
    assert booked == 10_000.0
    harness.clear_reservations("p1")
    # Capped booking respects the link headroom.
    booked = harness.place_reservation("p2", "class", 10_000.0, cap=True)
    assert booked <= cell.link.capacity
    assert booked > 0


def test_harness_retires_departed_portables():
    config = Figure5Config(students=0, walkby_rate=0.05)
    harness = _ReplayHarness(config)
    portable = harness.ensure_portable("walker-1", now=0.0)
    assert "walker-1" in harness.portables
    outcome = harness.engine.execute(portable, "hall", now=1.0)
    assert outcome.clean
    outcome = harness.engine.execute(portable, "outside", now=2.0)
    harness._retire(portable)
    assert "walker-1" not in harness.portables
    # Everything released.
    for cell in harness.cells.values():
        assert not cell.link.allocations


def test_student_bandwidths_follow_quota_order():
    config = Figure5Config(students=4)
    harness = _ReplayHarness(config)
    bws = [harness._bandwidth_for(f"attendee-{i}") for i in range(4)]
    assert sorted(bws) == sorted(harness._bw_pool)
