"""Campus-scale scenario: generator shape, determinism, and the hot-path
equivalence contracts behind the per-cell indexing rework.

The incremental maintenance path (dirty-cell refresh + connected-occupant
index + pending-static timers) and batched handoffs are *optimisations*,
not policies: every externally visible number — stats counters, connection
rates, per-cell pools, reservation ledgers, link state — must be
bit-identical to the full-scan / one-at-a-time code they replace.  These
tests pin that contract on a small campus where both paths are cheap to
run, alongside PYTHONHASHSEED invariance of the generator itself.
"""

import dataclasses

from repro.core import audio_request
from repro.mobility import campus_plan
from repro.sim import (
    CampusScaleConfig,
    FloorplanSimulator,
    run_campus_scale,
)
from repro.traffic.connection import reset_conn_ids

from tests.sim.test_hashseed_determinism import _assert_hashseed_invariant


# -- generator shape ---------------------------------------------------------------


def test_campus_plan_cell_count_formula():
    for buildings, floors, corridor, offices in [
        (1, 1, 2, 3),
        (2, 2, 4, 8),
        (3, 4, 5, 10),
    ]:
        plan = campus_plan(
            buildings=buildings,
            floors=floors,
            corridor_cells=corridor,
            offices_per_floor=offices,
        )
        expected = (
            buildings * (floors * (corridor + offices) + 3) + (buildings - 1)
        )
        assert len(plan.cells) == expected
        plan.validate()


def test_campus_plan_is_connected():
    """Stairwells join floors and walkways join buildings: every cell must
    be reachable from every other (a partitioned campus would strand
    portables and silently skew handoff statistics)."""
    plan = campus_plan(buildings=3, floors=2, corridor_cells=3, offices_per_floor=4)
    seen = {plan.cells[0]}
    frontier = [plan.cells[0]]
    while frontier:
        cell = frontier.pop()
        for neighbor in plan.neighbors(cell):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    assert seen == set(plan.cells)


def test_campus_plan_rejects_degenerate_shapes():
    import pytest

    for kwargs in [
        {"buildings": 0},
        {"floors": 0},
        {"corridor_cells": 0},
        {"offices_per_floor": -1},
    ]:
        with pytest.raises(ValueError):
            campus_plan(**kwargs)


# -- determinism -------------------------------------------------------------------


def test_campus_scale_bit_identical_across_hash_seeds():
    """The generator threads string cell-ids through dicts and neighbor
    sets; a small run's full result tuple must not move with the hash
    seed (workers in a pool each have their own)."""
    _assert_hashseed_invariant(
        """
import dataclasses
from repro.sim import CampusScaleConfig, run_campus_scale

result = run_campus_scale(CampusScaleConfig(
    seed=13, buildings=2, floors=2, corridor_cells=3, offices_per_floor=4,
    portables=400, active_fraction=0.1, horizon=900.0,
))
print(repr(dataclasses.astuple(result)))
"""
    )


def test_campus_scale_reruns_identically_in_process():
    config = CampusScaleConfig(portables=300, active_fraction=0.1, horizon=600.0)
    first = run_campus_scale(config)
    second = run_campus_scale(config)
    assert dataclasses.astuple(first) == dataclasses.astuple(second)


# -- incremental == full scan ------------------------------------------------------


def test_campus_scale_incremental_matches_full_scan():
    """The headline equivalence: the scenario's compact result (stats,
    counters, float aggregates summed in fixed order) is bit-identical
    with the incremental maintenance path on and off."""
    base = dict(
        seed=29,
        buildings=2,
        floors=2,
        corridor_cells=3,
        offices_per_floor=5,
        portables=500,
        active_fraction=0.1,
        horizon=1200.0,
        static_threshold=300.0,
        maintenance_period=150.0,
    )
    fast = run_campus_scale(CampusScaleConfig(incremental=True, **base))
    slow = run_campus_scale(CampusScaleConfig(incremental=False, **base))
    assert dataclasses.astuple(fast) == dataclasses.astuple(slow)


def _state_fingerprint(sim: FloorplanSimulator):
    """Every externally visible float and counter, repr'd so the comparison
    is bit-exact, in deterministic (sorted) order."""
    cells = {}
    for cell_id, cell in sorted(sim.cells.items(), key=lambda kv: repr(kv[0])):
        cells[str(cell_id)] = (
            repr(cell.reservations.pool),
            repr(cell.reservations.targeted_total),
            repr(cell.reservations.aggregate_total),
            repr(cell.reservations.total),
            repr(cell.link.reserved),
            repr(cell.link.excess_available),
        )
    conns = {}
    for pid, portable in sorted(sim.portables.items(), key=lambda kv: repr(kv[0])):
        conns[str(pid)] = [
            (conn.conn_id, repr(conn.rate), conn.state.name)
            for conn in portable.connections
        ]
    stats = dataclasses.asdict(sim.stats)
    stats["extra"] = sorted(stats["extra"].items())
    counters = (sim.manager.blocked, sim.manager.admitted, sim.manager.dropped)
    return (cells, conns, sorted(stats.items()), counters)


def _drive(incremental: bool, batched: bool):
    """A dense little workload: attaches, admissions, batched + sequential
    waves, a termination mid-run, and maintenance ticks that cross the
    static threshold."""
    reset_conn_ids()
    plan = campus_plan(buildings=2, floors=2, corridor_cells=3, offices_per_floor=4)
    sim = FloorplanSimulator(
        plan, capacity=1600.0, static_threshold=400.0, seed=5,
        incremental=incremental,
    )
    cells = plan.cells
    for i in range(60):
        sim.add_portable(f"u{i}", cells[i % len(cells)])
    for i in range(0, 60, 4):
        sim.request_connection(f"u{i}", audio_request())

    def wave(moves):
        if batched:
            sim.move_many(moves)
        else:
            for pid, to_cell in moves:
                sim.move(pid, to_cell)

    def neighbors_of(pid):
        cell = sim.portables[pid].current_cell
        return sorted(plan.neighbors(cell), key=repr)

    sim.run(until=200.0)
    wave([(f"u{i}", neighbors_of(f"u{i}")[0]) for i in range(0, 24, 4)])
    sim.run(until=500.0)
    sim.manager.refresh_static_states()
    wave([(f"u{i}", neighbors_of(f"u{i}")[-1]) for i in range(24, 48, 4)])
    conn = sim.portables["u8"].connections[0]
    sim.manager.terminate_connection(conn)
    sim.run(until=900.0)
    sim.manager.refresh_static_states()
    wave([(f"u{i}", neighbors_of(f"u{i}")[0]) for i in range(0, 60, 12)])
    sim.run(until=1300.0)
    sim.manager.refresh_static_states()
    return _state_fingerprint(sim)


def test_incremental_full_state_matches_full_scan():
    """Beyond the compact aggregates: pools, ledgers, link state, and every
    connection's rate must agree cell-by-cell between the two paths."""
    assert _drive(incremental=True, batched=True) == _drive(
        incremental=False, batched=True
    )


def test_batched_handoffs_match_sequential():
    """``move_portables`` coalesces rebalances (one per affected cell per
    wave) but must land on the exact state the one-at-a-time path does."""
    assert _drive(incremental=True, batched=True) == _drive(
        incremental=True, batched=False
    )


def test_batched_and_incremental_compose():
    """Cross-check the remaining pairing so no combination drifts."""
    assert _drive(incremental=True, batched=False) == _drive(
        incremental=False, batched=False
    )
