"""Regression tests: simulation results must not depend on PYTHONHASHSEED.

PR 1 made "parallel is bit-identical to serial" a hard contract, and pool
workers are separate interpreters with their own hash seeds.  Any code path
that lets ``set`` iteration order (hash-randomized for strings) leak into
float accumulation or container insertion order breaks that contract.
These tests re-run small scenarios under several explicit hash seeds in
subprocesses and require bit-identical output.

Each test pins a concrete fix:

* ``compute_advertised_rate`` summed ``recorded[c] for c in restricted``
  (a set) — float addition order varied with the hash seed;
* ``maxmin_allocation`` iterated its ``active`` set while mutating float
  state;
* ``FloorplanSimulator`` built ``neighbor_ledgers`` dicts and
  ``default_neighbors`` lists straight from ``Cell.neighbors`` (a set), so
  downstream reservation spreading saw hash-ordered containers, and
  ``CellularResourceManager.update_pools`` walked neighbors unsorted.
"""

import os
import pathlib
import subprocess
import sys

HASH_SEEDS = ("0", "1", "31337")

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _run_snippet(snippet: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def _assert_hashseed_invariant(snippet: str) -> None:
    outputs = {_run_snippet(snippet, seed) for seed in HASH_SEEDS}
    assert len(outputs) == 1, (
        "output depends on PYTHONHASHSEED:\n" + "\n---\n".join(sorted(outputs))
    )


# Recorded rates spanning eleven orders of magnitude: summing them in
# different orders rounds differently.  With the pre-fix code (sum over a
# hash-ordered set) this scenario provably returned three distinct
# advertised rates across PYTHONHASHSEED in {0, 1, 7, 99, 31337}.
_RESTRICTED_RATES = [
    1.1910670915023905e-08, 1.547440911328424e-08, 1.6183689966753317e-08,
    1.7197046864039542e-08, 1.8988382879679937e-08, 0.008475399302126417,
    0.009264654264014635, 0.009407120000849237, 0.009705790790018088,
    0.009941398178342898, 0.011372975279455922, 0.011441643263533656,
    0.011500549571783, 0.01191367182004937, 0.013844099648771724,
    0.014646677818384787, 0.014753157498748013, 0.015267448165489928,
    0.10987633446591479, 0.11397457849666788, 0.11838687225385854,
    0.1243910876887132, 0.1444989026275516, 0.15756510141648886,
    0.15833820394550313, 0.17036425461655202, 0.18750872873361457,
    0.19677999949201716, 0.19872592010330128, 128.45403939268607,
    134.7171567960644, 136.91984542727036, 162.49237973613785,
    211.14104666858955, 217.030018769398, 417893.4279975286,
    510591.887658775, 600989.6394741648, 150468685.58173904,
    180317946.927987,
]
_CAPACITY = 582317100.0512879


def test_advertised_rate_bit_identical_across_hash_seeds():
    _assert_hashseed_invariant(
        f"""
from repro.core.adaptation import compute_advertised_rate
small = {_RESTRICTED_RATES!r}
recorded = {{f"conn-{{i}}": v for i, v in enumerate(small)}}
recorded["big"] = 1e12
print(repr(compute_advertised_rate({_CAPACITY!r}, recorded, mu_prev=5e8)))
"""
    )


def test_maxmin_allocation_bit_identical_across_hash_seeds():
    _assert_hashseed_invariant(
        """
from repro.core.maxmin import MaxMinProblem, maxmin_allocation
problem = MaxMinProblem()
for i in range(6):
    problem.add_link(f"link-{i}", capacity=10.0 + 0.1 * i)
for i in range(40):
    problem.add_connection(
        f"conn-{i}",
        demand=0.9 + 0.037 * i,
        path=[f"link-{i % 6}", f"link-{(i + 1) % 6}"],
    )
allocation = maxmin_allocation(problem)
print(sorted((k, repr(v)) for k, v in allocation.items()))
"""
    )


def test_cell_reservations_bit_identical_across_hash_seeds():
    """``CellReservations`` sums targeted/aggregate dicts and syncs the
    result into the link ledger; replaying a scripted operation mix with
    string keys must round identically under every hash seed."""
    _assert_hashseed_invariant(
        """
from repro.core import CellReservations
from repro.network import Link

link = Link("bs", "air", capacity=1600.0)
resv = CellReservations(link, min_pool_fraction=0.05, max_pool_fraction=0.20)
portables = [f"portable-{i}" for i in range(9)]
tags = ["lounge", "cafeteria", "meeting-room", "lecture-hall"]
for i, pid in enumerate(portables):
    resv.reserve_for_portable(pid, 16.0 + 0.37 * i)
for j, tag in enumerate(tags):
    resv.reserve_aggregate(tag, 48.0 + 1.13 * j)
resv.claim_portable("portable-3")
resv.release_portable("portable-5")
resv.draw_aggregate("lounge", 17.3)
resv.draw_aggregate("cafeteria", 200.0)
resv.set_pool(120.0)
resv.draw_pool(33.3)
resv.adapt_pool_for_static_neighbors(max_static_rate=64.0)
print(repr((
    resv.pool,
    resv.targeted_total,
    resv.aggregate_total,
    resv.total,
    link.reserved,
    link.excess_available,
)))
"""
    )


def test_prediction_cascade_bit_identical_across_hash_seeds():
    """The three-level predictor walks neighbor *sets* and per-cell history
    dicts; predictions for a scripted movement history must not depend on
    hash-randomized iteration order."""
    _assert_hashseed_invariant(
        """
from repro.core.prediction import ProfileAwarePredictor
from repro.profiles.records import CellClass
from repro.profiles.server import ProfileServer

server = ProfileServer(zone_id="wing")
cells = {
    "corridor": (CellClass.CORRIDOR, {"office_a", "office_b", "lounge", "lab"}),
    "office_a": (CellClass.OFFICE, {"corridor"}),
    "office_b": (CellClass.OFFICE, {"corridor"}),
    "lounge": (CellClass.MEETING_ROOM, {"corridor", "lab"}),
    "lab": (CellClass.DEFAULT, {"corridor", "lounge"}),
}
for cell_id, (cls, neighbors) in cells.items():
    profile = server.register_cell(cell_id, cls, neighbors=neighbors)
    if cls is CellClass.OFFICE:
        profile.occupants |= {f"owner_{cell_id}"}

moves = [
    ("owner_office_a", "lounge", "corridor"),
    ("owner_office_a", "corridor", "office_a"),
    ("visitor-1", "lab", "corridor"),
    ("visitor-1", "corridor", "lounge"),
    ("visitor-2", "lab", "corridor"),
    ("visitor-2", "corridor", "lounge"),
    ("visitor-3", "office_b", "corridor"),
    ("visitor-3", "corridor", "lab"),
] * 3
for portable, from_cell, to_cell in moves:
    server.report_handoff(portable, from_cell, to_cell)

predictor = ProfileAwarePredictor(server)
out = []
for portable in ("owner_office_a", "owner_office_b", "visitor-1", "stranger"):
    for previous in (None, "lab", "lounge"):
        p = predictor.predict_for(portable, "corridor", previous)
        out.append((portable, str(previous), str(p.cell), p.level.name))
print(out)
"""
    )


def test_cache_eviction_metadata_stable_across_hash_seeds():
    """LRU eviction metadata (content keys, sizes, eviction order) must be
    identical across hash seeds: configs containing sets are canonicalized
    before hashing and recency comes from explicit file timestamps, so a
    prune in one process evicts the same entries any process would."""
    _assert_hashseed_invariant(
        """
import os
import tempfile

from repro.runtime import ResultCache, config_key

root = tempfile.mkdtemp()
cache = ResultCache(root=root)
configs = [
    {"seed": 1, "cells": frozenset({"office_a", "lounge", "lab"})},
    {"seed": 2, "cells": frozenset({"cafeteria", "corridor"})},
    {"seed": 3, "cells": frozenset({"office_b"})},
    {"seed": 4, "cells": frozenset({"office_a", "office_b"})},
]
for rank, config in enumerate(configs):
    path = cache.put("worker.ns", config, sorted(config["cells"]))
    stamp = 1_000_000_000 + 60 * rank
    os.utime(path, (stamp, stamp))

before = [(e.namespace, e.key, e.size) for e in cache.entries()]
evicted, freed = cache.prune(max_entries=2)
after = [(e.namespace, e.key, e.size) for e in cache.entries()]
print((
    [config_key(c) for c in configs],
    before,
    (evicted, freed),
    after,
))
"""
    )


def test_floorplan_simulation_bit_identical_across_hash_seeds():
    _assert_hashseed_invariant(
        """
from repro.core import audio_request
from repro.mobility import campus_floorplan
from repro.sim import FloorplanSimulator

sim = FloorplanSimulator(campus_floorplan(), capacity=1600.0, seed=7)
sim.add_portable("u1", "cor-4")
sim.add_portable("u2", "cor-4")
sim.request_connection("u1", audio_request())
sim.request_connection("u2", audio_request())
sim.run(until=500.0)
sim.move("u1", "lounge")
sim.move("u2", "lounge")
sim.run(until=1000.0)
sim.move("u2", "cor-4")
sim.run(until=1500.0)
import dataclasses
ledgers = {
    str(cid): list(map(str, proc.neighbor_ledgers))
    for cid, proc in sorted(sim.lounge_processes.items(), key=repr)
}
reserved = {
    str(cid): (repr(cell.reservations.pool), repr(cell.reservations.total))
    for cid, cell in sorted(sim.cells.items(), key=repr)
}
stats = dataclasses.asdict(sim.stats)
stats["extra"] = sorted(stats["extra"].items())
print((sorted(stats.items()), ledgers, reserved))
"""
    )


def test_metrics_registry_export_bit_identical_across_hash_seeds():
    """The metrics registry keys instruments by (name, sorted labels) and
    exports in sorted order; the same operations performed in different
    insertion orders must produce byte-identical JSON under any seed."""
    _assert_hashseed_invariant(
        """
from repro.obs import MetricsRegistry

reg = MetricsRegistry()
names = [f"metric-{i % 7}" for i in range(21)]
for i, name in enumerate(names):
    reg.counter(name, cell=f"cell-{i % 3}", kind=f"k{i % 2}").inc(0.1 + i)
for i in range(5):
    reg.gauge("occupancy", cell=f"cell-{i}").set(3.3 * i)
for i in range(9):
    reg.histogram("latency", buckets=(0.1, 1.0, 10.0), hop=f"h{i % 4}").observe(0.07 * i)
print(reg.to_json(indent=2))
"""
    )


def test_traced_simulation_output_bit_identical_across_hash_seeds():
    """A traced run's *simulation output* (and the trace's domain records)
    must not vary with the hash seed: trace fields are built from sorted
    containers, never raw set/dict iteration."""
    _assert_hashseed_invariant(
        """
import dataclasses, json
from repro.obs import RingBufferSink, Tracer, use_tracer
from repro.sim import TwoCellSimulator, figure6_config

sink = RingBufferSink()
with use_tracer(Tracer(sink)):
    result = TwoCellSimulator(
        figure6_config(policy="probabilistic", horizon=60.0, seed=11)
    ).run()
domain = [
    json.dumps(r, default=repr)
    for r in sink.records()
    if not r["kind"].startswith("des.")
]
print((dataclasses.astuple(result.stats), len(sink.records()), domain[:50]))
"""
    )
