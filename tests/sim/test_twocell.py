"""Tests for the two-cell teletraffic simulator (Figure 6 substrate)."""

import pytest

from repro.sim import TwoCellConfig, TwoCellSimulator, figure6_config


def run(policy="plain", horizon=120.0, seed=3, **kw):
    config = figure6_config(policy=policy, horizon=horizon, seed=seed, **kw)
    return TwoCellSimulator(config).run()


def test_config_validation():
    with pytest.raises(ValueError):
        TwoCellConfig(capacity=0.0)
    with pytest.raises(ValueError):
        TwoCellConfig(policy="bogus")
    with pytest.raises(ValueError):
        TwoCellConfig(horizon=10.0, warmup=20.0)


def test_reproducible_with_seed():
    a = run(seed=5)
    b = run(seed=5)
    assert a.stats.new_requests == b.stats.new_requests
    assert a.stats.handoff_drops == b.stats.handoff_drops
    c = run(seed=6)
    assert (
        c.stats.new_requests != a.stats.new_requests
        or c.stats.handoff_attempts != a.stats.handoff_attempts
    )


def test_workload_statistics_plausible():
    result = run(horizon=120.0)
    stats = result.stats
    # lambda_total = 31 per cell, two cells, minus warmup.
    expected = 2 * 31 * (120.0 - 20.0)
    assert stats.new_requests == pytest.approx(expected, rel=0.1)
    # With h = 0.7, handoff attempts are a substantial share of admissions.
    assert stats.handoff_attempts > stats.admitted
    assert stats.completed > 0


def test_bandwidth_never_exceeds_capacity():
    config = figure6_config(policy="plain", horizon=60.0, seed=2)
    sim = TwoCellSimulator(config)

    violations = []

    def monitor():
        while True:
            yield sim.env.timeout(0.05)
            for cell in sim.CELLS:
                if sim._bandwidth_used(cell) > config.capacity + 1e-9:
                    violations.append(sim.env.now)

    sim.env.process(monitor())
    sim.run()
    assert violations == []


def test_static_policy_blocks_more_drops_less_than_plain():
    plain = run(policy="plain", horizon=250.0)
    static = run(policy="static", static_reserve=6.0, horizon=250.0)
    assert static.blocking_probability > plain.blocking_probability
    assert static.dropping_probability <= plain.dropping_probability


def test_probabilistic_policy_trades_blocking_for_dropping():
    strict = run(policy="probabilistic", window=0.05, p_qos=0.001, horizon=250.0)
    loose = run(policy="probabilistic", window=0.05, p_qos=0.5, horizon=250.0)
    assert strict.blocking_probability >= loose.blocking_probability
    assert strict.dropping_probability <= loose.dropping_probability


def test_loose_pqos_approaches_plain_admission():
    loose = run(policy="probabilistic", window=0.05, p_qos=0.9999, horizon=250.0)
    plain = run(policy="plain", horizon=250.0)
    assert loose.blocking_probability == pytest.approx(
        plain.blocking_probability, abs=0.01
    )
    assert loose.dropping_probability == pytest.approx(
        plain.dropping_probability, abs=0.01
    )


def test_warmup_excluded_from_counts():
    short = run(policy="plain", horizon=60.0, warmup=50.0)
    long = run(policy="plain", horizon=60.0, warmup=5.0)
    assert short.stats.new_requests < long.stats.new_requests
