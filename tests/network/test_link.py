"""Tests for Link bandwidth/buffer bookkeeping."""

import pytest

from repro.network import Link


@pytest.fixture
def link():
    return Link("a", "b", capacity=100.0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        Link("a", "b", capacity=0)
    with pytest.raises(ValueError):
        Link("a", "b", capacity=10, error_prob=1.0)
    with pytest.raises(ValueError):
        Link("a", "b", capacity=10, prop_delay=-1)
    with pytest.raises(ValueError):
        Link("a", "b", capacity=10, buffer_capacity=0)


def test_key_is_endpoint_pair(link):
    assert link.key == ("a", "b")


def test_admit_tracks_minimum_and_excess(link):
    link.admit("c1", minimum=30.0, excess=10.0)
    assert link.min_committed == 30.0
    assert link.allocated == 40.0
    assert link.rate_of("c1") == 40.0


def test_excess_available_formula(link):
    """b'_av = C - b_resv - sum(b_min) per Section 5.2."""
    link.reserve(20.0)
    link.admit("c1", minimum=30.0, excess=15.0)
    assert link.excess_available == pytest.approx(100.0 - 20.0 - 30.0)
    # Excess grants do not reduce the floor-level headroom.
    assert link.unassigned == pytest.approx(100.0 - 20.0 - 45.0)


def test_double_admit_rejected(link):
    link.admit("c1", 10.0)
    with pytest.raises(KeyError):
        link.admit("c1", 10.0)


def test_release_returns_allocation_and_frees_buffer(link):
    link.admit("c1", 10.0, excess=5.0)
    link.reserve_buffer("c1", 42.0)
    allocation = link.release("c1")
    assert allocation.total == 15.0
    assert link.buffer_committed == 0.0


def test_release_unknown_raises(link):
    with pytest.raises(KeyError):
        link.release("ghost")


def test_set_excess_updates_rate(link):
    link.admit("c1", 10.0)
    link.set_excess("c1", 25.0)
    assert link.rate_of("c1") == 35.0
    with pytest.raises(ValueError):
        link.set_excess("c1", -5.0)


def test_set_excess_clamps_tiny_negative(link):
    link.admit("c1", 10.0)
    link.set_excess("c1", -1e-15)  # numerical dust from maxmin
    assert link.rate_of("c1") == 10.0


def test_reserve_unreserve_cycle(link):
    link.reserve(30.0)
    assert link.reserved == 30.0
    link.unreserve(10.0)
    assert link.reserved == 20.0
    link.unreserve(100.0)  # clamped at zero
    assert link.reserved == 0.0
    with pytest.raises(ValueError):
        link.reserve(-1.0)
    with pytest.raises(ValueError):
        link.unreserve(-1.0)


def test_utilization(link):
    link.reserve(10.0)
    link.admit("c1", 40.0)
    assert link.utilization == pytest.approx(0.5)


def test_buffer_accounting(link):
    assert link.buffer_available == float("inf")
    bounded = Link("a", "b", capacity=10.0, buffer_capacity=100.0)
    bounded.reserve_buffer("c1", 60.0)
    assert bounded.buffer_available == 40.0
    bounded.reserve_buffer("c1", 30.0)  # replacement, not accumulation
    assert bounded.buffer_committed == 30.0
    assert bounded.release_buffer("c1") == 30.0
    assert bounded.release_buffer("ghost") == 0.0
    with pytest.raises(ValueError):
        bounded.reserve_buffer("c2", -1.0)
