"""Tests for routing: Dijkstra, QoS pruning, widest path."""

import pytest

from repro.network import (
    NoRouteError,
    Topology,
    delay_metric,
    line_topology,
    qos_route,
    shortest_path,
    widest_path,
)


def grid_topology():
    """Two parallel routes a->d: short-fat and long-thin."""
    topo = Topology()
    topo.add_link("a", "b", capacity=100.0, prop_delay=0.010)
    topo.add_link("b", "d", capacity=100.0, prop_delay=0.010)
    topo.add_link("a", "x", capacity=10.0, prop_delay=0.001)
    topo.add_link("x", "y", capacity=10.0, prop_delay=0.001)
    topo.add_link("y", "d", capacity=10.0, prop_delay=0.001)
    return topo


def test_shortest_path_by_hops():
    topo = grid_topology()
    assert shortest_path(topo, "a", "d") == ["a", "b", "d"]


def test_shortest_path_by_delay_prefers_long_thin():
    topo = grid_topology()
    assert shortest_path(topo, "a", "d", metric=delay_metric) == [
        "a", "x", "y", "d",
    ]


def test_trivial_path():
    topo = line_topology(3)
    assert shortest_path(topo, "s1", "s1") == ["s1"]


def test_no_route_raises():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(NoRouteError):
        shortest_path(topo, "a", "b")


def test_unknown_endpoints_raise():
    topo = line_topology(3)
    with pytest.raises(NoRouteError):
        shortest_path(topo, "ghost", "s1")
    with pytest.raises(NoRouteError):
        shortest_path(topo, "s0", "ghost")


def test_usable_filter_prunes_links():
    topo = grid_topology()
    path = shortest_path(topo, "a", "d", usable=lambda link: link.capacity >= 50.0)
    assert path == ["a", "b", "d"]
    with pytest.raises(NoRouteError):
        shortest_path(topo, "a", "d", usable=lambda link: False)


def test_qos_route_respects_reservations():
    topo = grid_topology()
    # Choke the fat route at the floor level.
    topo.link("a", "b").reserve(95.0)
    assert qos_route(topo, "a", "d", b_min=8.0) == ["a", "x", "y", "d"]
    with pytest.raises(NoRouteError):
        qos_route(topo, "a", "d", b_min=50.0)


def test_widest_path_maximizes_bottleneck():
    topo = grid_topology()
    assert widest_path(topo, "a", "d") == ["a", "b", "d"]
    # Consume most of the fat route; the thin route becomes wider.
    topo.link("b", "d").admit("big", minimum=95.0)
    assert widest_path(topo, "a", "d") == ["a", "x", "y", "d"]


def test_negative_metric_rejected():
    topo = line_topology(3)
    with pytest.raises(ValueError):
        shortest_path(topo, "s0", "s2", metric=lambda link: -1.0)


def test_shortest_path_agrees_with_networkx():
    """Cross-check the Dijkstra implementation on a richer graph."""
    import networkx as nx

    topo = Topology()
    edges = [
        ("a", "b", 0.003), ("b", "c", 0.001), ("a", "c", 0.009),
        ("c", "d", 0.002), ("b", "d", 0.008), ("a", "d", 0.02),
    ]
    for u, v, d in edges:
        topo.add_duplex_link(u, v, capacity=10.0, prop_delay=d)
    ours = shortest_path(topo, "a", "d", metric=delay_metric)
    graph = topo.to_networkx()
    reference = nx.shortest_path(graph, "a", "d", weight="prop_delay")
    ours_cost = sum(
        topo.link(u, v).prop_delay for u, v in zip(ours, ours[1:])
    )
    ref_cost = sum(
        topo.link(u, v).prop_delay for u, v in zip(reference, reference[1:])
    )
    assert ours_cost == pytest.approx(ref_cost)
