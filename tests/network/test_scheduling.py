"""Tests for the WFQ / RCSP per-hop bound formulas (Table 2 rows)."""

import pytest
from hypothesis import given, strategies as st

from repro.network import (
    cumulative_jitter,
    e2e_delay_lower_bound,
    path_loss_probability,
    per_hop_delay,
    rcsp_buffer,
    relaxed_per_hop_delay,
    wfq_buffer,
)


def test_per_hop_delay_formula():
    # d = L/b + L/C
    assert per_hop_delay(b_min=10.0, capacity=100.0, l_max=1.0) == pytest.approx(
        1 / 10 + 1 / 100
    )
    with pytest.raises(ValueError):
        per_hop_delay(0, 100, 1)


def test_e2e_delay_lower_bound_formula():
    # (sigma + n L)/b + sum L/C_i
    d = e2e_delay_lower_bound(sigma=5.0, b_min=10.0, l_max=1.0,
                              capacities=[100.0, 200.0])
    assert d == pytest.approx((5 + 2) / 10 + 1 / 100 + 1 / 200)
    with pytest.raises(ValueError):
        e2e_delay_lower_bound(5, 10, 1, [])


def test_e2e_bound_consistent_with_per_hop_sum():
    """The e2e bound equals per-hop sums plus one burst-drain term: the
    burst penalty sigma/b is paid once end-to-end, never per hop."""
    sigma, b, l_max = 8.0, 10.0, 1.0
    caps = [100.0, 100.0, 100.0]
    e2e = e2e_delay_lower_bound(sigma, b, l_max, caps)
    per_hop_sum = sum(per_hop_delay(b, c, l_max) for c in caps)
    assert e2e == pytest.approx(per_hop_sum + sigma / b)


def test_relaxed_delay_spreads_slack_uniformly():
    d_local = 0.1
    relaxed = relaxed_per_hop_delay(
        d_local, d_budget=1.0, d_min=0.4, sigma=2.0, b_min=10.0, hops=3
    )
    assert relaxed == pytest.approx(0.1 + 0.6 / 3 + 2.0 / (3 * 10.0))
    with pytest.raises(ValueError):
        relaxed_per_hop_delay(0.1, 0.3, 0.4, 2.0, 10.0, 3)  # negative slack
    with pytest.raises(ValueError):
        relaxed_per_hop_delay(0.1, 1.0, 0.4, 2.0, 10.0, 0)


def test_cumulative_jitter_grows_with_hops():
    j1 = cumulative_jitter(sigma=4.0, b_min=16.0, l_max=1.0, hop_index=1)
    j3 = cumulative_jitter(sigma=4.0, b_min=16.0, l_max=1.0, hop_index=3)
    assert j1 == pytest.approx(5 / 16)
    assert j3 == pytest.approx(7 / 16)
    assert j3 > j1
    with pytest.raises(ValueError):
        cumulative_jitter(4, 16, 1, 0)


def test_wfq_buffer_accumulates_per_hop():
    assert wfq_buffer(sigma=4.0, l_max=1.0, hop_index=1) == 5.0
    assert wfq_buffer(sigma=4.0, l_max=1.0, hop_index=5) == 9.0
    with pytest.raises(ValueError):
        wfq_buffer(4, 1, 0)


def test_rcsp_buffer_first_vs_later_hops():
    first = rcsp_buffer(sigma=4.0, l_max=1.0, rate=16.0, d_current=0.1)
    assert first == pytest.approx(4 + 1 + 16 * 0.1)
    later = rcsp_buffer(sigma=4.0, l_max=1.0, rate=16.0, d_current=0.1,
                        d_previous=0.2)
    assert later == pytest.approx(4 + 1 + 16 * 0.3)


def test_rcsp_buffer_does_not_accumulate_with_path_length():
    """Regulators reshape per hop: buffer depends on local delays only."""
    buf_hop2 = rcsp_buffer(4.0, 1.0, 16.0, 0.1, 0.1)
    buf_hop9 = rcsp_buffer(4.0, 1.0, 16.0, 0.1, 0.1)
    assert buf_hop2 == buf_hop9


def test_path_loss_probability():
    assert path_loss_probability([]) == 0.0
    assert path_loss_probability([0.5]) == pytest.approx(0.5)
    assert path_loss_probability([0.1, 0.1]) == pytest.approx(1 - 0.81)
    with pytest.raises(ValueError):
        path_loss_probability([1.5])


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=8))
def test_path_loss_is_probability(probs):
    loss = path_loss_probability(probs)
    assert 0.0 <= loss <= 1.0
    if probs:
        # Adding a lossy link never decreases end-to-end loss.
        assert path_loss_probability(probs + [0.2]) >= loss - 1e-12


@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=1.0, max_value=1000.0),
    st.integers(min_value=1, max_value=10),
)
def test_jitter_monotone_in_hops(sigma, b_min, hops):
    values = [
        cumulative_jitter(sigma, b_min, 1.0, h) for h in range(1, hops + 1)
    ]
    assert values == sorted(values)
