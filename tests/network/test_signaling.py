"""Tests for the control-plane signaling network."""

import pytest

from repro.des import Environment
from repro.network import (
    ControlPacket,
    PacketKind,
    SignalingNetwork,
    line_topology,
)


def make_packet(**overrides):
    defaults = dict(
        kind=PacketKind.ADVERTISE,
        conn_id="c1",
        stamped_rate=10.0,
        direction=1,
        originator="s0",
        global_id=("s0", 1),
    )
    defaults.update(overrides)
    return ControlPacket(**defaults)


def test_send_delivers_after_prop_delay():
    env = Environment()
    topo = line_topology(3, prop_delay=0.25)
    net = SignalingNetwork(env, topo)
    received = []
    net.register("s1", lambda pkt, frm: received.append((env.now, pkt, frm)))
    net.send("s0", "s1", make_packet())
    env.run()
    assert len(received) == 1
    t, pkt, frm = received[0]
    assert t == pytest.approx(0.25)
    assert frm == "s0"
    assert pkt.conn_id == "c1"


def test_hop_overhead_added():
    env = Environment()
    topo = line_topology(3, prop_delay=0.1)
    net = SignalingNetwork(env, topo, hop_overhead=0.05)
    times = []
    net.register("s1", lambda pkt, frm: times.append(env.now))
    net.send("s0", "s1", make_packet())
    env.run()
    assert times == [pytest.approx(0.15)]


def test_unregistered_destination_raises():
    env = Environment()
    topo = line_topology(3)
    net = SignalingNetwork(env, topo)
    with pytest.raises(KeyError):
        net.send("s0", "s1", make_packet())


def test_message_counters_by_kind():
    env = Environment()
    topo = line_topology(3)
    net = SignalingNetwork(env, topo)
    net.register("s1", lambda pkt, frm: None)
    net.send("s0", "s1", make_packet())
    net.send("s0", "s1", make_packet(kind=PacketKind.UPDATE))
    net.send("s0", "s1", make_packet())
    assert net.messages_sent == 3
    assert net.messages_by_kind[PacketKind.ADVERTISE] == 2
    assert net.messages_by_kind[PacketKind.UPDATE] == 1


def test_deliver_local_is_synchronous():
    env = Environment()
    topo = line_topology(2)
    net = SignalingNetwork(env, topo)
    got = []
    net.register("s0", lambda pkt, frm: got.append(frm))
    net.deliver_local("s0", make_packet(), from_node="self")
    assert got == ["self"]
    assert net.messages_sent == 0  # local delivery is not a transmission


def test_packet_copy_with_overrides():
    pkt = make_packet()
    clone = pkt.copy_with(stamped_rate=5.0, meta={"returning": True})
    assert clone.stamped_rate == 5.0
    assert clone.meta["returning"] is True
    assert pkt.stamped_rate == 10.0  # original untouched
    assert pkt.meta == {}
    assert clone.conn_id == pkt.conn_id


def test_fifo_ordering_per_link():
    env = Environment()
    topo = line_topology(2, prop_delay=0.1)
    net = SignalingNetwork(env, topo)
    order = []
    net.register("s1", lambda pkt, frm: order.append(pkt.global_id))
    for i in range(4):
        net.send("s0", "s1", make_packet(global_id=("s0", i)))
    env.run()
    assert order == [("s0", 0), ("s0", 1), ("s0", 2), ("s0", 3)]
