"""Tests for neighbor multicast tree construction."""

from repro.network import Topology, build_neighbor_multicast, campus_backbone


def test_tree_covers_reachable_leaves():
    topo = campus_backbone(["A", "B", "C"])
    tree = build_neighbor_multicast(topo, "bs:A", ["bs:B", "bs:C"])
    assert set(tree.leaves) == {"bs:B", "bs:C"}
    assert tree.covers("bs:B")
    assert tree.branches["bs:B"] == ["bs:A", "router", "bs:B"]


def test_tree_links_are_deduplicated():
    topo = campus_backbone(["A", "B", "C"])
    tree = build_neighbor_multicast(topo, "bs:A", ["bs:B", "bs:C"])
    # The shared bs:A -> router hop appears once.
    assert ("bs:A", "router") in tree.links
    shared = [k for k in tree.links if k == ("bs:A", "router")]
    assert len(shared) == 1
    assert len(tree.links) == 3  # shared hop + one hop per leaf


def test_unreachable_leaf_recorded_not_raised():
    topo = Topology()
    topo.add_duplex_link("a", "b", capacity=10.0)
    topo.add_node("island")
    tree = build_neighbor_multicast(topo, "a", ["b", "island"])
    assert tree.covers("b")
    assert not tree.covers("island")
    assert "island" in tree.failed_leaves


def test_empty_leaf_list():
    topo = Topology()
    topo.add_duplex_link("a", "b", capacity=10.0)
    tree = build_neighbor_multicast(topo, "a", [])
    assert tree.leaves == []
    assert tree.links == set()
