"""Tests for network nodes."""

from repro.network import Node, NodeKind


def test_node_kinds():
    assert Node("s", NodeKind.SWITCH).kind is NodeKind.SWITCH
    assert Node("b", NodeKind.BASE_STATION).is_base_station
    assert not Node("h", NodeKind.HOST).is_base_station


def test_node_identity_by_id():
    a = Node("x", NodeKind.SWITCH)
    b = Node("x", NodeKind.HOST)  # same id, different kind
    assert a == b
    assert hash(a) == hash(b)
    assert a != Node("y")
    assert (a == "not-a-node") is NotImplemented or a != "not-a-node"


def test_node_meta_annotations():
    node = Node("bs:A", NodeKind.BASE_STATION, {"cell": "A"})
    assert node.meta["cell"] == "A"


def test_node_repr_contains_kind():
    assert "base_station" in repr(Node("b", NodeKind.BASE_STATION))
