"""Tests for the Topology graph and its builders."""

import pytest

from repro.network import (
    NodeKind,
    Topology,
    campus_backbone,
    line_topology,
    star_topology,
)


def test_add_link_autocreates_nodes():
    topo = Topology()
    topo.add_link("a", "b", capacity=10.0)
    assert topo.has_node("a") and topo.has_node("b")
    assert topo.node("a").kind is NodeKind.SWITCH


def test_duplicate_link_rejected():
    topo = Topology()
    topo.add_link("a", "b", capacity=10.0)
    with pytest.raises(ValueError):
        topo.add_link("a", "b", capacity=10.0)


def test_duplex_link_creates_both_directions():
    topo = Topology()
    ab, ba = topo.add_duplex_link("a", "b", capacity=10.0)
    assert ab.key == ("a", "b")
    assert ba.key == ("b", "a")
    assert topo.link_count == 2


def test_add_node_idempotent_keeps_first():
    topo = Topology()
    first = topo.add_node("x", NodeKind.HOST)
    second = topo.add_node("x")
    assert first is second
    assert topo.node("x").kind is NodeKind.HOST


def test_successors_are_directed():
    topo = Topology()
    topo.add_link("a", "b", capacity=1.0)
    assert topo.successors("a") == ["b"]
    assert topo.successors("b") == []


def test_path_links_resolution():
    topo = line_topology(4)
    links = topo.path_links(["s0", "s1", "s2"])
    assert [link.key for link in links] == [("s0", "s1"), ("s1", "s2")]
    assert topo.path_links(["s0"]) == []


def test_path_links_unknown_hop_raises():
    topo = line_topology(3)
    with pytest.raises(KeyError):
        topo.path_links(["s0", "s2"])  # not adjacent


def test_line_topology_shape():
    topo = line_topology(5, capacity=123.0)
    assert topo.node_count == 5
    assert topo.link_count == 8  # 4 duplex pairs
    assert topo.link("s0", "s1").capacity == 123.0
    with pytest.raises(ValueError):
        line_topology(1)


def test_star_topology_shape():
    topo = star_topology(3)
    assert topo.node_count == 4
    assert set(topo.successors("hub")) == {"leaf0", "leaf1", "leaf2"}
    with pytest.raises(ValueError):
        star_topology(0)


def test_campus_backbone_structure():
    topo = campus_backbone(["A", "B"], servers=["files"])
    # router + 2x(bs + air) + server
    assert topo.node_count == 6
    assert topo.node("bs:A").kind is NodeKind.BASE_STATION
    assert topo.node("bs:A").meta["cell"] == "A"
    wireless = topo.link("bs:A", "air:A")
    assert wireless.capacity == 1600.0
    assert wireless.error_prob == 0.01
    assert topo.has_link("router", "files")


def test_networkx_export_roundtrip():
    topo = line_topology(3)
    graph = topo.to_networkx()
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 4
    assert graph["s0"]["s1"]["capacity"] == topo.link("s0", "s1").capacity
