"""Command-line entry point: regenerate any of the paper's results.

Usage::

    python -m repro list                 # available experiments
    python -m repro table2               # run one experiment, print it
    python -m repro figure5
    python -m repro --jobs 4 figure6     # parallel sweep execution
    python -m repro all                  # run everything (slow)

Sweep-style experiments dispatch through
:class:`repro.runtime.ExperimentRunner`; ``--jobs N`` (or the
``REPRO_JOBS`` environment variable) fans replications out over a process
pool, and ``--cache`` persists per-config results under
``benchmarks/.cache/`` so re-runs only simulate new points.  Results are
bit-identical regardless of the worker count.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .runtime import ExperimentRunner, ResultCache


def _table2(runner: ExperimentRunner) -> str:
    from .experiments import render_table2, run_table2

    return render_table2(run_table2(runner=runner))


def _figure2(runner: ExperimentRunner) -> str:
    from .experiments.common import format_series
    from .mobility import class_session_trace
    from .stats import BinnedSeries

    series = BinnedSeries(bin_width=600.0)
    for seed, students, start, end in (
        (101, 24, 9 * 3600.0, 10 * 3600.0),
        (102, 40, 11 * 3600.0, 12.5 * 3600.0),
        (103, 15, 15 * 3600.0, 16 * 3600.0),
    ):
        trace = class_session_trace(
            seed=seed, students=students, start_time=start, end_time=end,
            walkby_rate=0.0,
        )
        for event in trace:
            if "class" in (event.from_cell, event.to_cell):
                series.add(event.time)
    return (
        "Figure 2: handoff activity in a lounge (10-minute bins)\n"
        + format_series(
            "meeting-room handoffs", series.series(8 * 3600.0, 17 * 3600.0)
        )
    )


def _figure4(runner: ExperimentRunner) -> str:
    from .experiments import render_figure4, run_figure4_sweep

    return render_figure4(run_figure4_sweep(runner=runner)[0])


def _figure5(runner: ExperimentRunner) -> str:
    from .experiments import render_figure5, run_figure5_comparison

    return render_figure5(run_figure5_comparison(runner=runner))


def _figure6(runner: ExperimentRunner) -> str:
    from .experiments import render_figure6, run_figure6, run_plain_baseline

    points = run_figure6(seeds=(1, 2), horizon=200.0, runner=runner)
    baseline = run_plain_baseline(seeds=(1, 2), horizon=200.0, runner=runner)
    return render_figure6(points, baseline)


def _ablations(runner: ExperimentRunner) -> str:
    from .experiments import (
        mlist_overhead,
        pool_fraction_sweep,
        prediction_levels,
        render_mlist_overhead,
        render_pool_fraction,
        render_prediction_levels,
        render_static_vs_predictive,
        static_vs_predictive,
    )

    parts = [
        render_mlist_overhead(mlist_overhead(runner=runner)),
        render_prediction_levels(prediction_levels(runner=runner)),
        render_pool_fraction(pool_fraction_sweep(trials=200, runner=runner)),
        render_static_vs_predictive(
            static_vs_predictive(seeds=(1, 2), horizon=200.0, runner=runner)
        ),
    ]
    return "\n\n".join(parts)


def _adaptation_value(runner: ExperimentRunner) -> str:
    from .experiments import render_adaptation_value, run_adaptation_value

    return render_adaptation_value(
        run_adaptation_value(duration=200.0, runner=runner)
    )


def _campus_day(runner: ExperimentRunner) -> str:
    from .experiments.common import format_table
    from .sim import run_campus_day

    result = run_campus_day()
    stats = result.stats
    return format_table(
        ["metric", "value"],
        [
            ("requests", stats.new_requests),
            ("admitted", stats.admitted),
            ("P_b", stats.blocking_probability),
            ("handoffs", stats.handoff_attempts),
            ("P_d", stats.dropping_probability),
            ("static upgrades", result.static_upgrades),
        ],
        title="Campus day (Figure 1 pipeline)",
    )


EXPERIMENTS: Dict[str, Callable[[ExperimentRunner], str]] = {
    "table2": _table2,
    "figure2": _figure2,
    "figure4": _figure4,
    "figure5": _figure5,
    "figure6": _figure6,
    "ablations": _ablations,
    "campus-day": _campus_day,
    "adaptation-value": _adaptation_value,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate results from Lu & Bharghavan (SIGCOMM 1996).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="which experiment to run ('list' to enumerate, 'all' for every one)",
    )
    parser.add_argument(
        "--jobs", "-j", default=None, metavar="N",
        help="worker processes for sweeps (0 or 'auto' = all cores; "
        "default: $REPRO_JOBS, else 1)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="reuse previously simulated sweep points from benchmarks/.cache/",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    runner = ExperimentRunner(
        jobs=args.jobs, cache=ResultCache() if args.cache else None
    )
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} ===")
        print(EXPERIMENTS[name](runner))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
