"""Command-line entry point: regenerate any of the paper's results.

Usage::

    python -m repro list                 # available experiments
    python -m repro table2               # run one experiment, print it
    python -m repro figure5
    python -m repro --jobs 4 figure6     # parallel sweep execution
    python -m repro figure4 --backend distributed --nodes 4  # multi-node sweep
    python -m repro all                  # run everything (slow)
    python -m repro campus --portables 100000   # campus-scale stress run
    python -m repro cache stats          # inspect the result cache
    python -m repro cache prune --max-size 500M
    python -m repro --trace trace.jsonl table2   # record a DES/domain trace
    python -m repro trace summarize trace.jsonl  # aggregate a recorded trace
    python -m repro --metrics-json m.json table2 # export the metrics registry
    python -m repro --stats figure5              # print run telemetry
    python -m repro --spans spans.jsonl.gz figure4  # record runtime spans
    python -m repro trace spans spans.jsonl.gz      # render the span tree
    python -m repro --profile prof.pstats.gz table2 # profile the workers
    python -m repro trace profile prof.pstats.gz    # aggregated hotspots
    python -m repro monitor RUN_DIR --follow        # watch a distributed run

Sweep-style experiments dispatch through
:class:`repro.runtime.ExperimentRunner`; ``--jobs N`` (or the
``REPRO_JOBS`` environment variable) fans replications out over a process
pool, and ``--cache`` persists per-config results under
``benchmarks/.cache/`` so re-runs only simulate new points.  Results are
bit-identical regardless of the worker count.

Fault tolerance: ``--max-retries N`` re-attempts failing replications
with exponential backoff, ``--timeout S`` cancels and reschedules
replications exceeding a wall-clock budget, and ``--partial`` lets a
sweep survive exhausted points (they are dropped from the merged output
with a warning instead of aborting the run).

Observability (``repro.obs``): ``--trace [PATH]`` records DES and domain
trace points (JSONL when a path is given, an in-memory summary
otherwise), ``--metrics-json PATH`` exports the metrics registry (``-``
writes to stdout), and ``--stats`` / ``--stats-json PATH`` report runner
telemetry.  All of them compose with ``--jobs N``: pool workers capture
their replication's records and metrics locally and the coordinator
merges the snapshots deterministically, so observed output is identical
at any worker count.

Runtime observability: ``--spans PATH`` records hierarchical wall-clock
spans (sweep → node → chunk → replication → attempt) whose *structure*
is byte-identical at any ``--jobs``/``--nodes`` placement, and
``--profile PATH`` runs every replication under cProfile and aggregates
the stats deterministically across workers and nodes.  ``python -m
repro monitor RUN_DIR`` watches a distributed run directory live.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from .runtime import ExperimentRunner, ResultCache, parse_size


def _add_des_core_flag(parser: argparse.ArgumentParser) -> None:
    """The ``--des-core`` selector shared by the experiment parsers."""
    parser.add_argument(
        "--des-core", choices=("auto", "native", "pure"), default=None,
        help="simulation kernel core: 'native' requires the compiled "
        "repro.des._speedups extension (errors if absent), 'pure' forces "
        "the Python kernel, 'auto' picks native when available (default: "
        "$REPRO_DES_NATIVE, else auto)",
    )


def _apply_des_core(args: argparse.Namespace) -> None:
    """Publish ``--des-core`` through ``REPRO_DES_NATIVE`` so every
    ``make_environment()`` — in this process, pool workers, and
    distributed node workers alike — sees the same selection."""
    if getattr(args, "des_core", None) is not None:
        from .des import NATIVE_ENV

        os.environ[NATIVE_ENV] = args.des_core


def _table2(runner: ExperimentRunner) -> str:
    from .experiments import render_table2, run_table2

    return render_table2(run_table2(runner=runner))


def _figure2(runner: ExperimentRunner) -> str:
    from .experiments.common import format_series
    from .mobility import class_session_trace
    from .stats import BinnedSeries

    series = BinnedSeries(bin_width=600.0)
    for seed, students, start, end in (
        (101, 24, 9 * 3600.0, 10 * 3600.0),
        (102, 40, 11 * 3600.0, 12.5 * 3600.0),
        (103, 15, 15 * 3600.0, 16 * 3600.0),
    ):
        trace = class_session_trace(
            seed=seed, students=students, start_time=start, end_time=end,
            walkby_rate=0.0,
        )
        for event in trace:
            if "class" in (event.from_cell, event.to_cell):
                series.add(event.time)
    return (
        "Figure 2: handoff activity in a lounge (10-minute bins)\n"
        + format_series(
            "meeting-room handoffs", series.series(8 * 3600.0, 17 * 3600.0)
        )
    )


def _figure4(runner: ExperimentRunner) -> str:
    from .experiments import render_figure4, run_figure4_sweep

    return render_figure4(run_figure4_sweep(runner=runner)[0])


def _figure5(runner: ExperimentRunner) -> str:
    from .experiments import render_figure5, run_figure5_comparison

    return render_figure5(run_figure5_comparison(runner=runner))


def _figure6(runner: ExperimentRunner) -> str:
    from .experiments import render_figure6, run_figure6, run_plain_baseline

    points = run_figure6(seeds=(1, 2), horizon=200.0, runner=runner)
    baseline = run_plain_baseline(seeds=(1, 2), horizon=200.0, runner=runner)
    return render_figure6(points, baseline)


def _ablations(runner: ExperimentRunner) -> str:
    from .experiments import (
        mlist_overhead,
        pool_fraction_sweep,
        prediction_levels,
        render_mlist_overhead,
        render_pool_fraction,
        render_prediction_levels,
        render_static_vs_predictive,
        static_vs_predictive,
    )

    parts = [
        render_mlist_overhead(mlist_overhead(runner=runner)),
        render_prediction_levels(prediction_levels(runner=runner)),
        render_pool_fraction(pool_fraction_sweep(trials=200, runner=runner)),
        render_static_vs_predictive(
            static_vs_predictive(seeds=(1, 2), horizon=200.0, runner=runner)
        ),
    ]
    return "\n\n".join(parts)


def _adaptation_value(runner: ExperimentRunner) -> str:
    from .experiments import render_adaptation_value, run_adaptation_value

    return render_adaptation_value(
        run_adaptation_value(duration=200.0, runner=runner)
    )


def _campus_day(runner: ExperimentRunner) -> str:
    from .experiments.common import format_table
    from .sim import run_campus_day

    result = run_campus_day()
    stats = result.stats
    return format_table(
        ["metric", "value"],
        [
            ("requests", stats.new_requests),
            ("admitted", stats.admitted),
            ("P_b", stats.blocking_probability),
            ("handoffs", stats.handoff_attempts),
            ("P_d", stats.dropping_probability),
            ("static upgrades", result.static_upgrades),
        ],
        title="Campus day (Figure 1 pipeline)",
    )


EXPERIMENTS: Dict[str, Callable[[ExperimentRunner], str]] = {
    "table2": _table2,
    "figure2": _figure2,
    "figure4": _figure4,
    "figure5": _figure5,
    "figure6": _figure6,
    "ablations": _ablations,
    "campus-day": _campus_day,
    "adaptation-value": _adaptation_value,
}


def _cache_main(argv: List[str]) -> int:
    """``python -m repro cache stats|clear|prune`` — manage the result cache."""
    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect and manage the on-disk sweep result cache.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    p_stats = sub.add_parser("stats", help="entry counts, bytes, hit/miss state")
    p_clear = sub.add_parser("clear", help="drop every entry for the current version")
    p_prune = sub.add_parser(
        "prune", help="evict least-recently-used entries down to the given caps"
    )
    p_prune.add_argument(
        "--max-size", default=None, metavar="SIZE",
        help="byte cap, e.g. 2048, 500M, or 1.5G (binary suffixes)",
    )
    p_prune.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="entry-count cap",
    )
    for sp in (p_stats, p_clear, p_prune):
        sp.add_argument(
            "--dir", default=None, metavar="PATH",
            help="cache root (default: benchmarks/.cache or $REPRO_CACHE_DIR)",
        )
    args = parser.parse_args(argv)

    cache = ResultCache(root=args.dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache root: {stats.root} (v{stats.version})")
        print(f"entries:    {stats.entries}")
        print(f"bytes:      {stats.total_bytes}")
        for namespace, count, size in stats.by_namespace:
            print(f"  {namespace}: {count} entries, {size} bytes")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries")
        return 0
    # prune
    if args.max_size is None and args.max_entries is None:
        parser.error("prune requires --max-size and/or --max-entries")
    max_bytes = parse_size(args.max_size) if args.max_size is not None else None
    evicted, freed = cache.prune(max_bytes=max_bytes, max_entries=args.max_entries)
    print(f"evicted {evicted} entries ({freed} bytes)")
    return 0


def _campus_main(argv: List[str]) -> int:
    """``python -m repro campus`` — run the campus-scale stress scenario.

    Unlike the paper experiments this is a synthetic scaling workload: a
    parametric multi-building campus with a large, mostly-idle population
    and a small active minority crossing cells in batched diurnal waves.
    Replications differ only in seed and dispatch through
    :class:`repro.runtime.ExperimentRunner`, so ``--jobs N`` and the
    telemetry flags compose the same way as for the experiments.
    """
    from .experiments.common import format_table
    from .sim import simulate_campus_scale

    parser = argparse.ArgumentParser(
        prog="python -m repro campus",
        description="Campus-scale stress scenario: thousands of cells, "
        "10^4-10^6 portables, batched diurnal handoff waves.",
    )
    parser.add_argument(
        "--portables", type=int, default=100_000, metavar="N",
        help="total attached population (default 100000)",
    )
    parser.add_argument(
        "--active-fraction", type=float, default=0.01, metavar="F",
        help="fraction of the population holding connections and moving "
        "(default 0.01)",
    )
    parser.add_argument(
        "--buildings", type=int, default=4, metavar="N",
        help="buildings on the campus (default 4)",
    )
    parser.add_argument(
        "--floors", type=int, default=3, metavar="N",
        help="floors per building (default 3)",
    )
    parser.add_argument(
        "--horizon", type=float, default=1800.0, metavar="SECONDS",
        help="simulated time (default 1800)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, metavar="N",
        help="base seed; replication i runs with seed+i (default 7)",
    )
    parser.add_argument(
        "--replications", type=int, default=1, metavar="N",
        help="independent runs at consecutive seeds (default 1)",
    )
    parser.add_argument(
        "--full-scan", action="store_true",
        help="disable the incremental per-cell maintenance path (slow; "
        "results are bit-identical either way)",
    )
    parser.add_argument(
        "--jobs", "-j", default=None, metavar="N",
        help="worker processes for replications (0 or 'auto' = all cores; "
        "default: $REPRO_JOBS, else 1)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "process", "distributed"), default=None,
        help="execution backend (default: serial for --jobs 1, else process)",
    )
    parser.add_argument(
        "--nodes", type=int, default=2, metavar="N",
        help="node workers for --backend distributed (default 2)",
    )
    parser.add_argument(
        "--node-jobs", default=1, metavar="N",
        help="worker processes inside each distributed node (default 1)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print run telemetry (wall times, in-worker DES events/sec, "
        "active kernel core)",
    )
    parser.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="write run telemetry as JSON to PATH (implies --stats output)",
    )
    _add_des_core_flag(parser)
    args = parser.parse_args(argv)
    _apply_des_core(args)

    runner = ExperimentRunner(
        jobs=args.jobs,
        backend=args.backend,
        nodes=args.nodes,
        node_jobs=args.node_jobs,
    )
    configs = [
        {
            "seed": args.seed + i,
            "portables": args.portables,
            "active_fraction": args.active_fraction,
            "buildings": args.buildings,
            "floors": args.floors,
            "horizon": args.horizon,
            "incremental": not args.full_scan,
        }
        for i in range(args.replications)
    ]
    results = runner.run_many(simulate_campus_scale, configs, label="campus")
    for config, result in zip(configs, results):
        print(
            format_table(
                ["metric", "value"],
                [
                    ("cells", result.cells),
                    ("portables", result.portables),
                    ("active", result.active),
                    ("handoffs", result.handoffs),
                    ("drops", result.drops),
                    ("blocked", result.blocked),
                    ("admitted", result.admitted),
                    ("P_b", result.stats.blocking_probability),
                    ("P_d", result.stats.dropping_probability),
                    ("total rate (bps)", result.total_rate),
                    ("pool total (bps)", result.pool_total),
                    ("reserved total (bps)", result.reserved_total),
                ],
                title=f"Campus scale (seed {config['seed']})",
            )
        )
        print()
    if args.stats_json is not None:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            fh.write(runner.telemetry.to_json(indent=2) + "\n")
    if args.stats or args.stats_json is not None:
        print(runner.telemetry.summary())
    return 0


def _trace_main(argv: List[str]) -> int:
    """``python -m repro trace summarize|spans|profile`` — analyze artifacts."""
    from .obs import read_jsonl, summarize_records

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Analyze traces, spans, and profiles recorded by "
        "--trace/--spans/--profile (plain or gzipped).",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    p_sum = sub.add_parser(
        "summarize", help="per-kind counts/time spans and domain aggregates"
    )
    p_sum.add_argument(
        "path", help="JSONL trace file written by --trace PATH (.gz ok)"
    )
    p_spans = sub.add_parser(
        "spans", help="render the span tree recorded with --spans PATH"
    )
    p_spans.add_argument(
        "path", help="span JSONL file written by --spans PATH (.gz ok)"
    )
    p_spans.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the raw span records instead of the rendered tree",
    )
    p_prof = sub.add_parser(
        "profile", help="aggregated cProfile hotspots recorded with --profile"
    )
    p_prof.add_argument(
        "path", help="pstats file written by --profile PATH (.gz ok)"
    )
    p_prof.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows to show (default 20)",
    )
    p_prof.add_argument(
        "--sort", choices=("cumulative", "tottime", "calls"),
        default="cumulative", help="ranking column (default cumulative)",
    )
    p_prof.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the hotspot rows as JSON",
    )
    args = parser.parse_args(argv)

    if args.action == "summarize":
        records = read_jsonl(args.path)
        print(json.dumps(summarize_records(records), indent=2))
        return 0
    if args.action == "spans":
        from .obs import format_span_tree, read_spans_jsonl

        spans = read_spans_jsonl(args.path)
        if args.as_json:
            from .obs.spans import span_to_record

            print(json.dumps([span_to_record(s) for s in spans], indent=2))
        else:
            print(format_span_tree(spans))
        return 0
    # profile
    from .obs import hotspots, read_pstats, render_hotspots

    raw = read_pstats(args.path)
    rows = hotspots(raw, top=args.top, sort=args.sort)
    if args.as_json:
        print(json.dumps(rows, indent=2))
    else:
        print(render_hotspots(rows, args.sort))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "campus":
        return _campus_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "monitor":
        from .obs.monitor import main as monitor_main

        return monitor_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate results from Lu & Bharghavan (SIGCOMM 1996).",
        epilog="Cache management lives under 'python -m repro cache "
        "stats|clear|prune'.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="which experiment to run ('list' to enumerate, 'all' for every one)",
    )
    parser.add_argument(
        "--jobs", "-j", default=None, metavar="N",
        help="worker processes for sweeps (0 or 'auto' = all cores; "
        "default: $REPRO_JOBS, else 1)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "process", "distributed"), default=None,
        help="execution backend (default: serial for --jobs 1, else process; "
        "'distributed' shards sweeps across --nodes node workers with "
        "resumable job manifests — see docs/DISTRIBUTED.md)",
    )
    parser.add_argument(
        "--nodes", type=int, default=2, metavar="N",
        help="node workers for --backend distributed (default 2)",
    )
    parser.add_argument(
        "--node-jobs", default=1, metavar="N",
        help="worker processes inside each distributed node (default 1)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="reuse previously simulated sweep points from benchmarks/.cache/",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="re-attempt each failing replication up to N times with "
        "exponential backoff (default 0: fail hard)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-replication wall-clock budget; hung workers are cancelled "
        "and rescheduled",
    )
    parser.add_argument(
        "--partial", action="store_true",
        help="survive exhausted sweep points: they are dropped from merged "
        "output with a warning instead of aborting the run",
    )
    parser.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="PATH",
        help="record DES + domain trace points: to a JSONL file when PATH "
        "is given, else to memory with a printed summary (works at any "
        "--jobs N; traced output stays bit-identical to an untraced run)",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="collect the metrics registry during the run and write its "
        "JSON snapshot to PATH ('-' for stdout; works at any --jobs N)",
    )
    parser.add_argument(
        "--spans", default=None, metavar="PATH",
        help="record hierarchical runtime spans (sweep → node → chunk → "
        "replication → attempt) to a JSONL file ('.gz' compresses); span "
        "structure is identical at any --jobs/--nodes placement",
    )
    parser.add_argument(
        "--profile", default=None, metavar="PATH",
        help="run each replication under cProfile and write the "
        "deterministically aggregated stats to PATH ('.gz' compresses; "
        "inspect with 'python -m repro trace profile PATH')",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print run telemetry (replication wall times, faults, cache "
        "hit rate, active DES kernel core) after the experiments",
    )
    parser.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="write run telemetry as JSON to PATH (implies --stats output)",
    )
    _add_des_core_flag(parser)
    args = parser.parse_args(argv)
    _apply_des_core(args)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    runner = ExperimentRunner(
        jobs=args.jobs,
        backend=args.backend,
        nodes=args.nodes,
        node_jobs=args.node_jobs,
        cache=ResultCache() if args.cache else None,
        max_retries=args.max_retries,
        timeout=args.timeout,
        partial=args.partial,
        retry_backoff=0.5 if args.max_retries else 0.0,
        profile=args.profile is not None,
    )

    from .obs import (
        JsonlSink,
        MetricsRegistry,
        RingBufferSink,
        SpanCollector,
        Tracer,
        set_registry,
        set_span_collector,
        set_tracer,
        summarize_records,
        write_spans_jsonl,
    )

    tracer: Optional[Tracer] = None
    if args.trace is not None:
        sink = JsonlSink(args.trace) if args.trace else RingBufferSink()
        tracer = Tracer(sink)
        set_tracer(tracer)
    if args.metrics_json is not None:
        set_registry(MetricsRegistry())
    collector: Optional[SpanCollector] = None
    if args.spans is not None:
        collector = SpanCollector()
        set_span_collector(collector)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        for name in names:
            print(f"=== {name} ===")
            print(EXPERIMENTS[name](runner))
            print()
    finally:
        if tracer is not None:
            set_tracer(None)
            tracer.close()
        if collector is not None:
            set_span_collector(None)
            write_spans_jsonl(args.spans, collector.spans())
            print(
                f"spans written to {args.spans} "
                f"({len(collector.spans())} records)"
            )
        if args.profile is not None and runner.profile_stats:
            from .obs import write_pstats

            write_pstats(args.profile, runner.profile_stats)
            print(f"profile written to {args.profile}")
        if args.metrics_json is not None:
            registry = set_registry(None)
            if args.metrics_json == "-":
                sys.stdout.write(registry.to_json(indent=2) + "\n")
            else:
                with open(args.metrics_json, "w", encoding="utf-8") as fh:
                    fh.write(registry.to_json(indent=2) + "\n")
                print(f"metrics written to {args.metrics_json}")

    if tracer is not None:
        if isinstance(tracer.sink, RingBufferSink):
            summary = summarize_records(tracer.sink.records())
            if tracer.sink.dropped:
                summary["dropped"] = tracer.sink.dropped
            print("trace summary:")
            print(json.dumps(summary, indent=2))
        else:
            print(
                f"trace written to {args.trace} "
                f"({tracer.sink.written} records)"
            )
    if args.stats_json is not None:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            fh.write(runner.telemetry.to_json(indent=2) + "\n")
    if args.stats or args.stats_json is not None:
        print(runner.telemetry.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
