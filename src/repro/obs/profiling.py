"""Deterministic cProfile aggregation across workers and nodes.

``--profile`` runs each replication under :mod:`cProfile` *inside the
worker* and ships the raw stats dict back with the replication's
observation snapshot — the same channel traces and metrics already use,
so the coordinator folds profiles in submission order regardless of how
the work was placed (serial, process pool, or distributed nodes).  Two
runs of the same sweep therefore aggregate the same call sites with the
same call counts; only the timings differ.

The merged dict is the native ``cProfile`` representation::

    {(file, line, func): (cc, nc, tt, ct, callers)}

``write_pstats`` marshals it to disk in the standard pstats dump format
(gzip-compressed when the path ends in ``.gz``), so an uncompressed
output loads straight into ``pstats.Stats`` or ``snakeviz``; the
``python -m repro trace profile`` CLI renders a top-N hotspot table.
"""

from __future__ import annotations

import gzip
import marshal
from typing import Any, Dict, List, Tuple

__all__ = [
    "hotspots",
    "merge_profile_stats",
    "profile_to_pstats",
    "read_pstats",
    "render_hotspots",
    "write_pstats",
]

#: ``{(file, line, func): (cc, nc, tt, ct, callers)}`` as produced by
#: ``cProfile.Profile.stats`` after ``create_stats()``.
ProfileStats = Dict[Any, Any]

#: Column name → index into the (cc, nc, tt, ct) tuple.
_SORT_COLUMNS = {"calls": 1, "tottime": 2, "cumulative": 3}


def merge_profile_stats(acc: ProfileStats, other: ProfileStats) -> ProfileStats:
    """Fold ``other`` into ``acc`` in place (and return ``acc``).

    Call counts and times sum per call site; caller edges merge
    element-wise.  This mirrors ``pstats.Stats.add`` but works on the
    raw dicts, so snapshots can be folded as they arrive without
    constructing a ``Stats`` object per replication.
    """
    for func, (cc, nc, tt, ct, callers) in other.items():
        if func in acc:
            acc_cc, acc_nc, acc_tt, acc_ct, acc_callers = acc[func]
            merged_callers = dict(acc_callers)
            for caller, stat in callers.items():
                if caller in merged_callers:
                    merged_callers[caller] = tuple(
                        a + b for a, b in zip(merged_callers[caller], stat)
                    )
                else:
                    merged_callers[caller] = stat
            acc[func] = (
                acc_cc + cc,
                acc_nc + nc,
                acc_tt + tt,
                acc_ct + ct,
                merged_callers,
            )
        else:
            acc[func] = (cc, nc, tt, ct, dict(callers))
    return acc


class _StatsCarrier:
    """Duck-typed profiler: just enough for ``pstats.Stats(...)``.

    ``pstats.Stats`` accepts any object with a ``stats`` dict and a
    ``create_stats`` method; this wraps an already-merged raw dict.
    """

    def __init__(self, stats: ProfileStats) -> None:
        self.stats = stats

    def create_stats(self) -> None:
        pass


def profile_to_pstats(raw: ProfileStats) -> Any:
    """Wrap merged raw stats in a ``pstats.Stats`` for standard tooling."""
    import pstats

    return pstats.Stats(_StatsCarrier(raw))


def write_pstats(path: str, raw: ProfileStats) -> None:
    """Dump merged stats in the standard pstats format.

    An uncompressed output is a valid ``python -m pstats`` /
    ``pstats.Stats(path)`` input; a ``.gz`` path gzips the same bytes.
    """
    data = marshal.dumps(raw)
    if str(path).endswith(".gz"):
        with gzip.open(path, "wb") as fh:
            fh.write(data)
    else:
        with open(path, "wb") as fh:
            fh.write(data)


def read_pstats(path: str) -> ProfileStats:
    """Load a (possibly gzipped) pstats dump back into the raw dict."""
    if str(path).endswith(".gz"):
        with gzip.open(path, "rb") as fh:
            data = fh.read()
    else:
        with open(path, "rb") as fh:
            data = fh.read()
    stats = marshal.loads(data)
    if not isinstance(stats, dict):
        raise ValueError(f"{path}: not a pstats dump")
    return stats


def hotspots(
    raw: ProfileStats, top: int = 20, sort: str = "cumulative"
) -> List[Dict[str, Any]]:
    """The ``top`` call sites by ``sort`` (calls | tottime | cumulative).

    Ties break on the ``file:line(func)`` label so the report is
    deterministic across hash seeds and merge orders.
    """
    if sort not in _SORT_COLUMNS:
        raise ValueError(
            f"sort must be one of {sorted(_SORT_COLUMNS)}, got {sort!r}"
        )
    column = _SORT_COLUMNS[sort]
    rows: List[Tuple[float, str, Dict[str, Any]]] = []
    for func, stat in raw.items():
        file, line, name = func
        label = f"{file}:{line}({name})"
        cc, nc, tt, ct = stat[0], stat[1], stat[2], stat[3]
        rows.append(
            (
                -float(stat[column]),
                label,
                {
                    "function": label,
                    "primitive_calls": cc,
                    "calls": nc,
                    "tottime": tt,
                    "cumulative": ct,
                },
            )
        )
    rows.sort(key=lambda row: (row[0], row[1]))
    return [entry for _, _, entry in rows[:top]]


def render_hotspots(rows: List[Dict[str, Any]], sort: str = "cumulative") -> str:
    """Format a hotspot table for terminal output."""
    lines = [
        f"{'ncalls':>10}  {'tottime':>9}  {'cumtime':>9}  function  (sorted by {sort})"
    ]
    for row in rows:
        calls = row["calls"]
        primitive = row["primitive_calls"]
        ncalls = str(calls) if calls == primitive else f"{calls}/{primitive}"
        lines.append(
            f"{ncalls:>10}  {row['tottime']:>9.4f}  {row['cumulative']:>9.4f}"
            f"  {row['function']}"
        )
    return "\n".join(lines)
