"""Metrics registry: Counter / Gauge / Histogram keyed by name + labels.

Design goals, in priority order:

1. **Free when off.**  The process-wide default registry is a
   :class:`NullRegistry` whose instruments are shared no-op singletons, so
   an instrumented call site (``get_registry().counter("x").inc()``) costs
   a dict-free lookup and an empty method call when metrics are disabled.
2. **Deterministic.**  Instruments are keyed by ``(name, sorted(labels))``
   and every export walks them in sorted order, so two processes that
   perform the same instrument operations produce byte-identical JSON
   regardless of ``PYTHONHASHSEED`` or insertion order.
3. **Read-only with respect to the simulation.**  Instruments never touch
   RNG state, the event queue, or simulation values — recording a metric
   cannot perturb a run (the serial/parallel bit-identity contract).

The registry itself is process-local, but per-simulation metrics survive
the pool: the experiment runtime runs each replication under a private
worker-side registry and folds the snapshots back into the coordinator's
registry via :meth:`MetricsRegistry.merge_snapshot`, in replication order,
so exports are byte-identical at any worker count.  Harness-level
aggregates (wall times, retries, cache hits) live in
:class:`~repro.obs.telemetry.RunTelemetry` instead.
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: ((label, value), ...) sorted by label name — the canonical label key.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonical, hash-order-independent form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


#: Default histogram bucket upper bounds (seconds-flavored, but unitless).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)


class Histogram:
    """Cumulative-bucket histogram (observation counts per upper bound)."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "total", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: counts[i] observations fell in (bounds[i-1], bounds[i]];
        #: the final slot counts observations above the last bound.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.bounds, self.bucket_counts)
            ]
            + [{"le": "inf", "count": self.bucket_counts[-1]}],
        }


class MetricsRegistry:
    """Instrument factory and export surface.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create: repeated calls
    with the same name and labels return the same instrument, and a name
    re-used with a different instrument kind raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}

    # -- instrument factories ---------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = Histogram(name, key[1], buckets or DEFAULT_BUCKETS)
        self._metrics[key] = metric
        return metric

    def _get_or_create(self, cls: type, name: str, labels: Dict[str, Any]):
        key = (name, _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, key[1])
        self._metrics[key] = metric
        return metric

    # -- introspection / export -------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def instruments(self) -> List[Any]:
        """Every instrument, sorted by (name, labels) — deterministic."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def to_dict(self) -> Dict[str, Any]:
        """Deterministically ordered, JSON-ready snapshot."""
        return {
            "metrics": [
                {
                    "name": m.name,
                    "type": m.kind,
                    "labels": {k: v for k, v in m.labels},
                    **m.snapshot(),
                }
                for m in self.instruments()
            ]
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    # -- cross-process folding ---------------------------------------------

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`to_dict` snapshot from another registry into this one.

        This is how per-replication registries collected *inside* pool
        workers aggregate on the coordinator: counters and histogram
        buckets add, gauges adopt the snapshot's value (so folding
        snapshots in replication-index order reproduces the final value a
        single registry shared across a serial run would hold).  Folding
        the same snapshots in the same order is deterministic by
        construction — instruments are keyed by name + sorted labels and
        exports are sorted — so merged ``--metrics-json`` output is
        byte-identical at any worker count.  Returns ``self``.
        """
        for entry in snapshot.get("metrics", []):
            name, labels = entry["name"], entry["labels"]
            kind = entry["type"]
            if kind == "counter":
                self.counter(name, **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).set(entry["value"])
            elif kind == "histogram":
                bounds = [b["le"] for b in entry["buckets"] if b["le"] != "inf"]
                hist = self.histogram(name, buckets=bounds, **labels)
                if len(bounds) != len(hist.bounds):
                    raise ValueError(
                        f"histogram {name!r} bucket layout mismatch while "
                        f"merging ({len(bounds)} vs {len(hist.bounds)} bounds)"
                    )
                counts = [b["count"] for b in entry["buckets"]]
                for i, n in enumerate(counts):
                    hist.bucket_counts[i] += n
                hist.total += entry["sum"]
                hist.count += entry["count"]
            else:
                raise ValueError(f"unknown instrument kind {kind!r} in snapshot")
        return self


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled-metrics default: hands out shared no-op instruments.

    Call sites do not need to branch on "is metrics enabled" — asking the
    null registry for an instrument allocates nothing and the instrument's
    recording methods are empty.
    """

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null", ())
        self._gauge = _NullGauge("null", ())
        self._histogram = _NullHistogram("null", (), (1.0,))

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._gauge

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        return self._histogram

    def to_dict(self) -> Dict[str, Any]:
        return {"metrics": []}


#: Shared no-op registry; the process-wide default.
NULL_REGISTRY = NullRegistry()

_registry: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide registry (the no-op default unless installed)."""
    return _registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` process-wide (None restores the no-op default).

    Returns the previously installed registry so callers can restore it.
    """
    global _registry
    previous = _registry
    _registry = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_registry` — restores the previous one on exit."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
