"""DES event tracing: sim-time-stamped structured records.

A :class:`Tracer` turns trace points scattered through the simulator into
records — plain dicts with a deterministic key order — and hands them to a
sink: an in-memory :class:`RingBufferSink` for tests and interactive use,
or a :class:`JsonlSink` writing one JSON object per line for offline
analysis (``python -m repro trace summarize``).

Enabling is opt-in and process-wide: :func:`set_tracer` installs a tracer
that :class:`~repro.des.Environment` picks up at construction and that the
domain trace points (admission, adaptation, handoff, reservations) consult
at emit time.  When no tracer is installed, :func:`get_tracer` returns
``None`` and every trace point reduces to a single ``is None`` branch —
the DES hot path additionally swaps in an untraced event pump so the
disabled cost there is zero.

**Tracing never perturbs the simulation**: trace points only *read* sim
state (they draw no random numbers, schedule no events, and mutate no
model objects), so a traced run is bit-identical to an untraced one — a
contract the test suite asserts end-to-end.
"""

from __future__ import annotations

import gzip
import json
import os
from collections import deque
from contextlib import contextmanager
from typing import (
    IO,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Union,
)

__all__ = [
    "Tracer",
    "RingBufferSink",
    "JsonlSink",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "open_text",
    "read_jsonl",
    "replay_records",
    "summarize_records",
]

#: A trace record: {"t": sim-time-or-None, "kind": str, <sorted fields>}.
TraceRecord = Dict[str, Any]


def open_text(path: str, mode: str) -> IO[str]:
    """Open a text file, transparently gzipped when the path ends in ``.gz``.

    Long distributed sweeps produce multi-gigabyte JSONL traces; every
    reader in this layer (``read_jsonl``, the span file reader, the
    ``trace`` CLI) and the :class:`JsonlSink` writer route through this so
    ``.jsonl.gz`` works everywhere a ``.jsonl`` does.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


class RingBufferSink:
    """Keeps the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)
        #: Records discarded because the buffer was full.
        self.dropped = 0

    def emit(self, record: TraceRecord) -> None:
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)

    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def close(self) -> None:
        pass


class JsonlSink:
    """Writes each record as one JSON line to a path or file object.

    ``compress`` opts into gzip output; left at ``None`` it is inferred
    from the path suffix, so ``--trace sweep.jsonl.gz`` just works.
    """

    def __init__(
        self, target: Union[str, "os.PathLike[str]", IO[str]],
        compress: Optional[bool] = None,
    ):
        if isinstance(target, (str, os.PathLike)):
            target = os.fspath(target)
            if compress is None:
                compress = target.endswith(".gz")
            if compress:
                self._fh: IO[str] = gzip.open(  # type: ignore[assignment]
                    target, "wt", encoding="utf-8"
                )
            else:
                self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
            self.path: Optional[str] = target
        else:
            self._fh = target
            self._owns = False
            self.path = getattr(target, "name", None)
        self.written = 0

    def emit(self, record: TraceRecord) -> None:
        # default=repr: trace fields are usually scalars/strings, but a
        # stray Hashable id must degrade to text, not crash the run.
        self._fh.write(json.dumps(record, default=repr) + "\n")
        self.written += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class Tracer:
    """Routes trace points to a sink, stamping sim time and counting kinds.

    Parameters
    ----------
    sink:
        Destination for records (ring buffer or JSONL).
    clock:
        Optional ``() -> float`` supplying the sim-time stamp when a trace
        point does not pass one explicitly.  Creating a traced
        :class:`~repro.des.Environment` binds this to that environment's
        clock (the most recently created environment wins).
    kinds:
        Optional allow-list of record kinds; anything else is discarded at
        the emit call (useful to keep per-event DES records out of a trace
        focused on domain decisions).
    """

    def __init__(
        self,
        sink: Any,
        clock: Optional[Callable[[], float]] = None,
        kinds: Optional[Set[str]] = None,
    ):
        self.sink = sink
        self.clock = clock
        self.kinds = set(kinds) if kinds is not None else None
        #: Per-kind record counts (deterministic insertion order by first
        #: emission; exports sort by kind anyway).
        self.counts: Dict[str, int] = {}

    def emit(self, kind: str, t: Optional[float] = None, **fields: Any) -> None:
        """Record one trace point.  Never raises into simulation code."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if t is None and self.clock is not None:
            t = self.clock()
        record: TraceRecord = {"t": t, "kind": kind}
        for key in sorted(fields):
            record[key] = fields[key]
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.sink.emit(record)

    def close(self) -> None:
        self.sink.close()


_tracer: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The installed process-wide tracer, or None when tracing is off."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with None, remove) the process-wide tracer.

    Returns the previously installed tracer so callers can restore it.
    Environments created *after* installation pick the tracer up
    automatically; an existing environment attaches via
    :meth:`~repro.des.Environment.set_tracer`.
    """
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`set_tracer` — restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def replay_records(
    tracer: Tracer,
    records: List[TraceRecord],
    replication: Optional[int] = None,
) -> int:
    """Re-emit already-built records into ``tracer``'s sink verbatim.

    This is the coordinator half of in-worker tracing: each pool worker
    captures its replication's records in a private ring buffer, the
    snapshot rides back with the result, and the coordinator replays the
    snapshots in replication-index order.  ``replication`` (the config's
    submission index) is stamped onto every record right after ``kind``,
    so interleaved provenance survives; the remaining fields keep the
    sorted order the worker-side :meth:`Tracer.emit` gave them.  The
    tracer's per-kind counts are updated as if it had emitted the records
    itself.  Returns the number of records replayed.
    """
    counts = tracer.counts
    emit = tracer.sink.emit
    for record in records:
        kind = record["kind"]
        out: TraceRecord = {"t": record["t"], "kind": kind}
        if replication is not None:
            out["replication"] = replication
        for key, value in record.items():
            if key != "t" and key != "kind":
                out[key] = value
        counts[kind] = counts.get(kind, 0) + 1
        emit(out)
    return len(records)


# -- offline analysis -------------------------------------------------------


def read_jsonl(path: str) -> List[TraceRecord]:
    """Load a JSONL trace, validating the minimal schema.

    Every line must parse as a JSON object with a string ``kind`` and a
    ``t`` that is a number or null; anything else raises ``ValueError``
    naming the offending line (the CI smoke step relies on this).
    Gzipped traces (``.jsonl.gz``) are decompressed transparently.
    """
    records: List[TraceRecord] = []
    with open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: record is not an object")
            if not isinstance(record.get("kind"), str):
                raise ValueError(f"{path}:{lineno}: missing string 'kind'")
            if "t" not in record or not (
                record["t"] is None or isinstance(record["t"], (int, float))
            ):
                raise ValueError(f"{path}:{lineno}: 't' must be a number or null")
            records.append(record)
    return records


def summarize_records(records: List[TraceRecord]) -> Dict[str, Any]:
    """Aggregate a trace into the ``trace summarize`` report structure."""
    kinds: Dict[str, Dict[str, Any]] = {}
    for record in records:
        entry = kinds.setdefault(
            record["kind"], {"count": 0, "t_first": None, "t_last": None}
        )
        entry["count"] += 1
        t = record["t"]
        if t is not None:
            if entry["t_first"] is None:
                entry["t_first"] = t
            entry["t_last"] = t

    admissions = [r for r in records if r["kind"] == "admission.decision"]
    rejected: Dict[str, int] = {}
    for r in admissions:
        if not r.get("accepted"):
            reason = str(r.get("reason"))
            rejected[reason] = rejected.get(reason, 0) + 1
    handoffs = [r for r in records if r["kind"] == "handoff.executed"]
    rounds = [r for r in records if r["kind"] == "adaptation.round.commit"]

    summary: Dict[str, Any] = {
        "records": len(records),
        "kinds": {k: kinds[k] for k in sorted(kinds)},
    }
    if admissions:
        summary["admission"] = {
            "decisions": len(admissions),
            "accepted": sum(1 for r in admissions if r.get("accepted")),
            "rejected_by_reason": {k: rejected[k] for k in sorted(rejected)},
        }
    if handoffs:
        summary["handoff"] = {
            "executed": len(handoffs),
            "connections_moved": sum(int(r.get("moved", 0)) for r in handoffs),
            "connections_dropped": sum(int(r.get("dropped", 0)) for r in handoffs),
        }
    if rounds:
        trips = [int(r.get("trips", 0)) for r in rounds]
        summary["adaptation"] = {
            "rounds_committed": len(rounds),
            "mean_trips": sum(trips) / len(trips) if trips else 0.0,
        }
    return summary
