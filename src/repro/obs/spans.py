"""Hierarchical span tracing for the experiment runtime.

Where :mod:`repro.obs.trace` records what happens *inside* a simulation
(sim-time-stamped domain events), spans record where *wall-clock* time
goes while the runtime executes a sweep: one span per sweep, per
replication, per retry attempt — and, when the distributed backend is
active, per node round and per chunk.  Every span carries a parent id,
a monotonic-clock duration, a status, and a small attribute dict, so a
finished run renders as a tree (``python -m repro trace spans``).

Spans split into two families:

* **structural** spans (``sweep`` → ``replication`` → ``attempt``)
  describe the logical work.  Their ids derive from submission indices
  and attempt counters only, so the structural projection
  (:func:`canonical_structure`) is byte-identical across serial,
  ``--jobs N``, and ``--backend distributed --nodes N`` for the same
  config + seed — the same guarantee the trace/metrics layers make.
* **topology** spans (``node``, ``chunk``) describe how the work was
  physically placed.  They exist only where the placement exists (a
  serial run has no chunks) and are excluded from the canonical
  projection.

Collection is opt-in and process-wide, mirroring the tracer:
:func:`set_span_collector` installs a collector that the runner backends
consult at settle time.  Without a collector every emission site reduces
to an ``is None`` branch — the DES kernel itself is never touched, so
the untraced hot path keeps its existing overhead budget.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .trace import open_text

__all__ = [
    "KIND_ATTEMPT",
    "KIND_CHUNK",
    "KIND_NODE",
    "KIND_REPLICATION",
    "KIND_SWEEP",
    "STRUCTURAL_KINDS",
    "TOPOLOGY_KINDS",
    "Span",
    "SpanCollector",
    "SpanLedger",
    "attempt_span_id",
    "canonical_structure",
    "chunk_span_id",
    "format_span_tree",
    "get_span_collector",
    "node_span_id",
    "read_spans_jsonl",
    "rebase_span_record",
    "replication_span_id",
    "set_span_collector",
    "span_from_record",
    "span_to_record",
    "sweep_span_id",
    "use_span_collector",
    "write_spans_jsonl",
]

KIND_SWEEP = "sweep"
KIND_REPLICATION = "replication"
KIND_ATTEMPT = "attempt"
KIND_NODE = "node"
KIND_CHUNK = "chunk"

#: Kinds whose ids/parentage are placement-independent — the canonical
#: structure projects exactly these.
STRUCTURAL_KINDS = (KIND_SWEEP, KIND_REPLICATION, KIND_ATTEMPT)

#: Kinds describing physical placement (distributed runs only).
TOPOLOGY_KINDS = (KIND_NODE, KIND_CHUNK)

#: A span serialized for JSONL transport — fixed key order, sorted attrs.
SpanRecord = Dict[str, Any]


def sweep_span_id(batch: int) -> str:
    """Root span id for the ``batch``-th ``run_many`` call of a runner."""
    return f"sweep-{batch:03d}"


def replication_span_id(position: int) -> str:
    """Span id for the replication at submission index ``position``."""
    return f"rep-{position:05d}"


def attempt_span_id(position: int, attempt: int) -> str:
    """Span id for try number ``attempt`` (1-based) of a replication."""
    return f"rep-{position:05d}.a{attempt}"


def chunk_span_id(chunk_id: int) -> str:
    return f"chunk-{chunk_id:05d}"


def node_span_id(node_id: int, round_: int) -> str:
    return f"node-{node_id}.r{round_}"


@dataclass
class Span:
    """One timed unit of runtime work.

    ``start`` is a monotonic-clock reading (``time.perf_counter`` by
    default) — meaningful for ordering and duration arithmetic within a
    process, deliberately *not* a wall-clock timestamp.
    """

    span_id: str
    parent_id: Optional[str]
    name: str
    kind: str
    status: str
    start: float
    duration: float
    attrs: Dict[str, Any] = field(default_factory=dict)


def span_to_record(span: Span) -> SpanRecord:
    """Serialize with a fixed key order and sorted attrs (stable JSONL)."""
    return {
        "span": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "kind": span.kind,
        "status": span.status,
        "start": span.start,
        "duration": span.duration,
        "attrs": {key: span.attrs[key] for key in sorted(span.attrs)},
    }


def span_from_record(record: SpanRecord) -> Span:
    return Span(
        span_id=record["span"],
        parent_id=record.get("parent"),
        name=record.get("name", record["span"]),
        kind=record["kind"],
        status=record.get("status", "ok"),
        start=float(record.get("start", 0.0)),
        duration=float(record.get("duration", 0.0)),
        attrs=dict(record.get("attrs", {})),
    )


class SpanCollector:
    """Accumulates finished spans in emission order, counting per kind."""

    def __init__(self) -> None:
        self._spans: List[Span] = []
        #: Per-kind span counts (insertion order by first emission).
        self.counts: Dict[str, int] = {}

    def emit(self, span: Span) -> None:
        self._spans.append(span)
        self.counts[span.kind] = self.counts.get(span.kind, 0) + 1

    def spans(self) -> List[Span]:
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.counts.clear()


_collector: Optional[SpanCollector] = None


def get_span_collector() -> Optional[SpanCollector]:
    """The installed process-wide collector, or None when spans are off."""
    return _collector


def set_span_collector(
    collector: Optional[SpanCollector],
) -> Optional[SpanCollector]:
    """Install (or with None, remove) the process-wide span collector.

    Returns the previously installed collector so callers can restore it.
    """
    global _collector
    previous = _collector
    _collector = collector
    return previous


@contextmanager
def use_span_collector(collector: SpanCollector) -> Iterator[SpanCollector]:
    """Scoped :func:`set_span_collector` — restores the previous on exit."""
    previous = set_span_collector(collector)
    try:
        yield collector
    finally:
        set_span_collector(previous)


class SpanLedger:
    """Per-sweep bookkeeping the runner backends emit spans through.

    A ledger is created once per ``_execute`` call with the sweep span id
    as parent.  Backends report each try via :meth:`attempt` and the
    final outcome via :meth:`settle`; the ledger assembles the
    replication span (status, total duration, attempt count) so the four
    execution paths don't each reimplement the parentage rules.
    """

    def __init__(
        self,
        collector: SpanCollector,
        parent_id: str,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.collector = collector
        self.parent_id = parent_id
        self._clock = clock
        #: position -> list of (attempt status, seconds)
        self._attempts: Dict[int, List[Tuple[str, float]]] = {}

    def attempt(self, position: int, status: str, seconds: float) -> None:
        """Record one try of the replication at submission ``position``.

        ``status``: ``ok``, ``error``, ``timeout``, or ``crash``.
        """
        tries = self._attempts.setdefault(position, [])
        tries.append((status, seconds))
        number = len(tries)
        now = self._clock()
        self.collector.emit(
            Span(
                span_id=attempt_span_id(position, number),
                parent_id=replication_span_id(position),
                name=f"attempt {number}",
                kind=KIND_ATTEMPT,
                status=status,
                start=now - seconds,
                duration=seconds,
                attrs={"attempt": number, "position": position},
            )
        )

    def settle(self, position: int, status: str) -> None:
        """Close the replication span: ``status`` is ``ok`` or ``failed``."""
        tries = self._attempts.pop(position, [])
        total = sum(seconds for _, seconds in tries)
        now = self._clock()
        self.collector.emit(
            Span(
                span_id=replication_span_id(position),
                parent_id=self.parent_id,
                name=f"replication {position}",
                kind=KIND_REPLICATION,
                status=status,
                start=now - total,
                duration=total,
                attrs={"attempts": max(len(tries), 1), "position": position},
            )
        )


def canonical_structure(spans: List[Span]) -> bytes:
    """Project the placement-independent structure of a span set.

    Keeps only structural kinds, drops every timing field, sorts by
    (kind, span id), and appends per-kind counts.  Two runs of the same
    sweep — serial, pooled, or distributed at any node count — must
    produce byte-identical output; the identity tests compare exactly
    these bytes.
    """
    structural = [s for s in spans if s.kind in STRUCTURAL_KINDS]
    projected = sorted(
        (
            {
                "span": s.span_id,
                "parent": s.parent_id,
                "kind": s.kind,
                "name": s.name,
                "status": s.status,
            }
            for s in structural
        ),
        key=lambda item: (item["kind"], item["span"]),
    )
    counts: Dict[str, int] = {}
    for s in structural:
        counts[s.kind] = counts.get(s.kind, 0) + 1
    doc = {"spans": projected, "counts": {k: counts[k] for k in sorted(counts)}}
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("ascii")


def write_spans_jsonl(path: str, spans: List[Span]) -> int:
    """Write spans as JSONL, sorted by span id for deterministic files.

    Gzip-compresses transparently when ``path`` ends in ``.gz``.
    Returns the number of spans written.
    """
    ordered = sorted(spans, key=lambda s: s.span_id)
    with open_text(path, "w") as fh:
        for span in ordered:
            fh.write(json.dumps(span_to_record(span), sort_keys=False) + "\n")
    return len(ordered)


def read_spans_jsonl(path: str) -> List[Span]:
    """Load spans from a (possibly gzipped) JSONL file."""
    spans: List[Span] = []
    with open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            if not isinstance(record, dict) or not isinstance(record.get("span"), str):
                raise ValueError(f"{path}:{lineno}: not a span record")
            spans.append(span_from_record(record))
    return spans


def rebase_span_record(
    record: SpanRecord,
    position_map: Dict[int, int],
    sweep_parent: str,
) -> SpanRecord:
    """Translate a node-local span record into coordinator coordinates.

    Node workers index replications by *manifest position*; the
    coordinator's submission may be a cache-filtered subset, so
    replication/attempt ids are rewritten through ``position_map``
    (manifest position → submission index).  The replication parent is
    always reset to ``sweep_parent`` — a resumed chunk carries spans
    minted under the *first* submission's sweep id, and they must
    re-parent under the current one so the merged tree stays connected.
    """
    out = dict(record)
    out["attrs"] = dict(record.get("attrs", {}))
    kind = record.get("kind")
    if kind in (KIND_REPLICATION, KIND_ATTEMPT):
        old_pos = out["attrs"].get("position")
        if old_pos is not None and old_pos in position_map:
            new_pos = position_map[old_pos]
            old_rep = replication_span_id(old_pos)
            new_rep = replication_span_id(new_pos)
            out["attrs"]["position"] = new_pos
            if isinstance(out.get("span"), str) and out["span"].startswith(old_rep):
                out["span"] = new_rep + out["span"][len(old_rep):]
            if isinstance(out.get("parent"), str) and out["parent"].startswith(old_rep):
                out["parent"] = new_rep + out["parent"][len(old_rep):]
        if kind == KIND_REPLICATION:
            out["parent"] = sweep_parent
            out["name"] = f"replication {out['attrs'].get('position')}"
    return out


def format_span_tree(spans: List[Span]) -> str:
    """Render spans as an indented tree, children sorted by span id."""
    by_parent: Dict[Optional[str], List[Span]] = {}
    ids = {s.span_id for s in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.span_id)

    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{span.span_id} [{span.kind}] {span.status}"
            f" {span.duration * 1000.0:.2f}ms"
        )
        for child in by_parent.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in by_parent.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)
