"""Runtime telemetry: what the experiment harness did, aggregated.

:class:`RunTelemetry` is the coordinator-side ledger the
:class:`~repro.runtime.ExperimentRunner` fills while dispatching a sweep:
per-replication wall times (measured inside the worker and shipped back
with the result, so they survive process pools), retry / timeout / crash
counts from the fault-tolerant paths, and result-cache hit/miss counts.

Unlike metrics and traces — which are process-local and therefore blind to
pool workers — telemetry is aggregated across workers by construction:
every number lands on the coordinator with the replication's result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["RunTelemetry"]


@dataclass
class RunTelemetry:
    """Aggregated accounting for one or more ``run_many`` batches."""

    #: Replications that produced a result (cache hits not included).
    replications: int = 0
    #: Configs that exhausted their attempts (partial-mode failures).
    failures: int = 0
    #: Extra attempts beyond each config's first.
    retries: int = 0
    #: Attempts cancelled/interrupted at the wall-clock deadline.
    timeouts: int = 0
    #: Worker processes that died without reporting a result.
    crashes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: ``run_many`` invocations folded into this ledger.
    batches: int = 0
    #: Coordinator wall-clock seconds across those batches.
    elapsed: float = 0.0
    #: Results whose bulk payload rode a shared-memory segment.
    shm_results: int = 0
    #: Raw bytes moved through shared memory instead of the result pipe.
    shm_bytes: int = 0
    #: Trace records captured inside workers and merged by the coordinator.
    trace_records: int = 0
    #: Worker-side trace records lost to ring-buffer overflow.
    trace_dropped: int = 0
    #: Per-replication wall seconds (successful attempts only).
    wall_times: List[float] = field(default_factory=list)
    #: DES events processed inside successful replications (summed across
    #: workers; counted by the simulation kernel, shipped with the result).
    des_events: int = 0
    #: DES events broken down by kernel core (``"pure"`` / ``"native"``).
    #: A sweep must never silently mix cores — some workers picking up the
    #: compiled extension while others fall back would still be
    #: bit-identical, but it voids the perf numbers and hides a broken
    #: install — so folding a second distinct core into this ledger raises.
    des_cores: Dict[str, int] = field(default_factory=dict)
    #: Node processes launched by the distributed backend (all rounds).
    nodes: int = 0
    #: Node relaunch rounds forced by crashed/hung nodes.
    node_restarts: int = 0
    #: Manifest chunks executed by nodes during this run.
    chunks: int = 0
    #: Manifest chunks whose results were adopted from a previous
    #: submission's result files instead of being re-executed.
    chunks_resumed: int = 0
    #: Wall seconds each node round spent from launch to exit.
    node_wall_times: List[float] = field(default_factory=list)

    # -- recording --------------------------------------------------------

    def record_replication(
        self,
        seconds: float,
        events: int = 0,
        cores: Optional[Dict[str, int]] = None,
    ) -> None:
        self.replications += 1
        self.wall_times.append(seconds)
        self.des_events += events
        if cores:
            self.record_core_events(cores)

    def record_core_events(self, cores: Dict[str, int]) -> None:
        """Fold per-core DES event counts in; refuse mixed-core runs.

        Raises :class:`RuntimeError` when a second distinct kernel core
        shows up in one ledger — replications of a sweep must all run on
        the same core (see :attr:`des_cores`).
        """
        for core, events in sorted(cores.items()):
            if events:
                self.des_cores[core] = self.des_cores.get(core, 0) + events
        if len(self.des_cores) > 1:
            detail = ", ".join(
                f"{core}={events}" for core, events in sorted(self.des_cores.items())
            )
            raise RuntimeError(
                f"mixed DES cores in one run ({detail}); all replications "
                "of a sweep must use the same kernel — pin one with "
                "REPRO_DES_NATIVE/--des-core"
            )

    # -- derived ----------------------------------------------------------

    @property
    def des_core(self) -> Optional[str]:
        """The kernel core this run's events executed on, if any ran."""
        for core in self.des_cores:
            return core
        return None

    @property
    def events_per_second(self) -> float:
        """Aggregate DES throughput: kernel events over in-worker seconds.

        Wall time is already measured inside the workers, so this is the
        simulation core's own pace, unaffected by pool scheduling gaps.
        """
        total = self.wall_time_total
        return self.des_events / total if total > 0 else 0.0

    @property
    def wall_time_total(self) -> float:
        return sum(self.wall_times)

    @property
    def wall_time_mean(self) -> float:
        return self.wall_time_total / len(self.wall_times) if self.wall_times else 0.0

    @property
    def wall_time_max(self) -> float:
        return max(self.wall_times) if self.wall_times else 0.0

    @property
    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    @property
    def speedup(self) -> Optional[float]:
        """Worker-seconds over coordinator-seconds (> 1 means the pool won)."""
        if self.elapsed <= 0 or not self.wall_times:
            return None
        return self.wall_time_total / self.elapsed

    # -- folding / export -------------------------------------------------

    def merge(self, other: "RunTelemetry") -> "RunTelemetry":
        """Fold another ledger into this one (returns self)."""
        self.replications += other.replications
        self.failures += other.failures
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.crashes += other.crashes
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.batches += other.batches
        self.elapsed += other.elapsed
        self.shm_results += other.shm_results
        self.shm_bytes += other.shm_bytes
        self.trace_records += other.trace_records
        self.trace_dropped += other.trace_dropped
        self.wall_times.extend(other.wall_times)
        self.des_events += other.des_events
        if other.des_cores:
            self.record_core_events(other.des_cores)
        self.nodes += other.nodes
        self.node_restarts += other.node_restarts
        self.chunks += other.chunks
        self.chunks_resumed += other.chunks_resumed
        self.node_wall_times.extend(other.node_wall_times)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "batches": self.batches,
            "replications": self.replications,
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
            },
            "shm": {
                "results": self.shm_results,
                "bytes": self.shm_bytes,
            },
            "trace": {
                "records": self.trace_records,
                "dropped": self.trace_dropped,
            },
            "des": {
                "events": self.des_events,
                "events_per_second": self.events_per_second,
                "core": self.des_core,
                "cores": dict(self.des_cores),
            },
            "distributed": {
                "nodes": self.nodes,
                "node_restarts": self.node_restarts,
                "chunks": self.chunks,
                "chunks_resumed": self.chunks_resumed,
                "node_wall_total": sum(self.node_wall_times),
            },
            "wall_time": {
                "elapsed": self.elapsed,
                "replication_total": self.wall_time_total,
                "replication_mean": self.wall_time_mean,
                "replication_max": self.wall_time_max,
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """Human-readable run summary (the CLI prints this)."""
        lines = [
            "run telemetry:",
            f"  batches:       {self.batches}",
            f"  replications:  {self.replications}"
            + (f" ({self.failures} failed)" if self.failures else ""),
        ]
        if self.retries or self.timeouts or self.crashes:
            lines.append(
                f"  faults:        {self.retries} retries, "
                f"{self.timeouts} timeouts, {self.crashes} crashes"
            )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"  cache:         {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"({self.cache_hit_rate * 100.0:.1f}% hit rate)"
            )
        if self.nodes:
            lines.append(
                f"  distributed:   {self.nodes} node launches, "
                f"{self.chunks} chunks executed"
                + (f", {self.chunks_resumed} resumed" if self.chunks_resumed else "")
                + (f", {self.node_restarts} restarts" if self.node_restarts else "")
            )
        if self.shm_results:
            lines.append(
                f"  shm transport: {self.shm_results} results, "
                f"{self.shm_bytes} bytes zero-copied"
            )
        if self.trace_records or self.trace_dropped:
            lines.append(
                f"  worker traces: {self.trace_records} records merged"
                + (f", {self.trace_dropped} dropped" if self.trace_dropped else "")
            )
        if self.des_events:
            core = self.des_core
            lines.append(
                f"  des events:    {self.des_events} processed "
                f"({self.events_per_second:,.0f} events/s in-worker)"
                + (f" [{core} core]" if core else "")
            )
        lines.append(
            f"  wall time:     {self.elapsed:.3f}s elapsed, "
            f"{self.wall_time_total:.3f}s in replications "
            f"(mean {self.wall_time_mean * 1000.0:.1f}ms, "
            f"max {self.wall_time_max * 1000.0:.1f}ms)"
        )
        speedup = self.speedup
        if speedup is not None and speedup > 1.05:
            lines.append(f"  parallelism:   {speedup:.2f}x worker-time/elapsed")
        return "\n".join(lines)
