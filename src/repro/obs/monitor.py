"""Live run monitor: a view over a distributed run directory.

``python -m repro monitor RUN_DIR`` reads only what the runtime already
publishes — the manifest, the chunk result files, and the atomic
heartbeat documents under ``progress/`` — so it can watch a sweep from
any process (or machine sharing the run directory) without talking to
the coordinator.  ``--follow`` refreshes a terminal view until the run
finishes; ``--once --json`` emits one machine-readable status document
for CI assertions.

Staleness is judged from the heartbeats' wall-clock ``updated_at``
stamps: a node that has not rewritten its document within
``--stale-after`` seconds is reported ``stale`` and excluded from the
in-flight replication estimate, and a run whose coordinator heartbeat
went quiet mid-run is reported ``stalled``.  The ETA extrapolates the
mean per-replication wall time the nodes have measured so far (the same
numbers that land in :class:`~repro.obs.telemetry.RunTelemetry`) over
the remaining replications and the currently-active worker slots.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["load_run_status", "main", "render_status", "resolve_run_dir"]


def resolve_run_dir(path: Union[str, Path]) -> Path:
    """``path`` itself when it holds a manifest, else its newest run dir.

    Lets ``repro monitor`` take either a specific run directory or a run
    *root* (``$REPRO_DISTRIBUTED_DIR``) holding one directory per sweep.
    """
    path = Path(path)
    if (path / "manifest.json").is_file():
        return path
    candidates = [
        child
        for child in path.iterdir()
        if (child / "manifest.json").is_file()
    ] if path.is_dir() else []
    if not candidates:
        raise FileNotFoundError(
            f"{path}: no manifest.json here or in any subdirectory"
        )
    return max(candidates, key=lambda c: (c / "manifest.json").stat().st_mtime)


def load_run_status(
    run_dir: Union[str, Path], stale_after: float = 10.0
) -> Dict[str, Any]:
    """One status document for a run directory (see module docstring)."""
    from ..runtime.distributed import (
        chunk_result_path,
        load_manifest,
        read_progress_docs,
    )

    run_dir = Path(run_dir)
    plan = load_manifest(run_dir)
    if plan is None:
        raise FileNotFoundError(f"{run_dir}: manifest missing or unreadable")
    docs = read_progress_docs(run_dir)
    now = time.time()

    chunks_done = [
        c.chunk_id
        for c in plan.chunks
        if chunk_result_path(run_dir, c.chunk_id).exists()
    ]
    positions_done = sum(
        len(c.indices) for c in plan.chunks if c.chunk_id in set(chunks_done)
    )

    coordinator = docs.get("coordinator")
    nodes: List[Dict[str, Any]] = []
    faults = {"retries": 0, "timeouts": 0, "crashes": 0, "failures": 0}
    inflight = 0
    active_jobs = 0
    wall_time_total = 0.0
    replications_timed = 0
    des_events = 0
    des_cores: Dict[str, int] = {}
    for name in sorted(docs):
        doc = docs[name]
        if doc.get("kind") != "node":
            continue
        age = now - float(doc.get("updated_at", 0.0))  # repro-lint: ignore[REP304]
        fresh = age <= stale_after
        running = doc.get("state") in ("starting", "running")
        node_state = doc.get("state", "unknown")
        if running and not fresh:
            node_state = "stale"
        if running and fresh:
            inflight += int(doc.get("current_done", 0))
            active_jobs += max(int(doc.get("jobs", 1)), 1)
        for key in faults:
            faults[key] += int(doc.get(key, 0))
        wall_time_total += float(doc.get("wall_time_total", 0.0))
        replications_timed += int(doc.get("replications", 0))
        des_events += int(doc.get("des_events", 0))
        for core, count in (doc.get("des_cores") or {}).items():
            des_cores[core] = des_cores.get(core, 0) + int(count)
        nodes.append(
            {
                "node": doc.get("node"),
                "round": doc.get("round"),
                "state": node_state,
                "chunks_done": doc.get("chunks_done", 0),
                "chunks_assigned": doc.get("chunks_assigned", 0),
                "replications": doc.get("replications", 0),
                "current_chunk": doc.get("current_chunk"),
                "age_seconds": max(age, 0.0),
            }
        )

    replications_total = plan.positions
    replications_done = min(positions_done + inflight, replications_total)

    if coordinator is not None:
        state = str(coordinator.get("state", "unknown"))
        coord_age = now - float(  # repro-lint: ignore[REP304]
            coordinator.get("updated_at", 0.0)
        )
        if state == "running" and coord_age > stale_after:
            state = "stalled"
    elif len(chunks_done) == len(plan.chunks):
        state, coord_age = "done", None
    else:
        state, coord_age = "unknown", None

    events_per_second = (
        des_events / wall_time_total if wall_time_total > 0 else 0.0
    )
    eta_seconds: Optional[float] = None
    remaining = replications_total - replications_done
    if state in ("running", "stalled") and replications_timed and remaining:
        mean = wall_time_total / replications_timed
        eta_seconds = remaining * mean / max(active_jobs, 1)

    return {
        "run_dir": str(run_dir),
        "sweep_id": plan.sweep_id,
        "label": plan.label,
        "state": state,
        "coordinator_age_seconds": coord_age,
        "chunks": {
            "done": len(chunks_done),
            "total": len(plan.chunks),
            "resumed": (
                int(coordinator.get("chunks_resumed", 0))
                if coordinator is not None
                else 0
            ),
        },
        "replications": {
            "done": replications_done,
            "total": replications_total,
        },
        "events_per_second": events_per_second,
        # All nodes must agree on the kernel core; more than one key here
        # means a misconfigured fleet (RunTelemetry refuses the same mix).
        "des_cores": des_cores,
        "des_core": next(iter(des_cores)) if len(des_cores) == 1 else None,
        "faults": faults,
        "eta_seconds": eta_seconds,
        "nodes": nodes,
    }


def render_status(status: Dict[str, Any]) -> str:
    """Human-readable status block (what ``--follow`` repaints)."""
    chunks = status["chunks"]
    reps = status["replications"]
    lines = [
        f"sweep {status['sweep_id'][:16]}"
        + (f" ({status['label']})" if status.get("label") else "")
        + f" — {status['state']}",
        f"  chunks:        {chunks['done']}/{chunks['total']}"
        + (f" ({chunks['resumed']} resumed)" if chunks.get("resumed") else ""),
        f"  replications:  {reps['done']}/{reps['total']}",
    ]
    if status["events_per_second"]:
        cores = status.get("des_cores") or {}
        if status.get("des_core"):
            core_note = f" [{status['des_core']} core]"
        elif len(cores) > 1:
            mix = ", ".join(f"{c}={n}" for c, n in sorted(cores.items()))
            core_note = f" [MIXED CORES: {mix}]"
        else:
            core_note = ""
        lines.append(
            f"  des events/s:  {status['events_per_second']:,.0f} (in-worker)"
            + core_note
        )
    faults = status["faults"]
    if any(faults.values()):
        lines.append(
            f"  faults:        {faults['retries']} retries, "
            f"{faults['timeouts']} timeouts, {faults['crashes']} crashes, "
            f"{faults['failures']} failures"
        )
    if status.get("eta_seconds") is not None:
        lines.append(f"  eta:           ~{status['eta_seconds']:.1f}s")
    for node in status["nodes"]:
        current = (
            f", on chunk {node['current_chunk']}"
            if node.get("current_chunk") is not None
            else ""
        )
        lines.append(
            f"  node {node['node']} (round {node['round']}): {node['state']}, "
            f"{node['chunks_done']}/{node['chunks_assigned']} chunks, "
            f"{node['replications']} replications{current} "
            f"[heartbeat {node['age_seconds']:.1f}s ago]"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro monitor",
        description="Watch a distributed run directory's progress.",
    )
    parser.add_argument(
        "run_dir",
        help="a run directory (contains manifest.json) or a run root "
        "holding one directory per sweep (newest is picked)",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="refresh until the run reaches done/failed",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print one status snapshot and exit (the default)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the status as JSON instead of the human view",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between --follow refreshes (default 1.0)",
    )
    parser.add_argument(
        "--stale-after", type=float, default=10.0,
        help="seconds without a heartbeat before a node/run counts as "
        "stale/stalled (default 10)",
    )
    args = parser.parse_args(argv)
    if args.follow and args.once:
        parser.error("--follow and --once are mutually exclusive")

    try:
        run_dir = resolve_run_dir(args.run_dir)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    def snapshot() -> Dict[str, Any]:
        return load_run_status(run_dir, stale_after=args.stale_after)

    def show(status: Dict[str, Any]) -> None:
        if args.as_json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(render_status(status))

    if not args.follow:
        try:
            show(snapshot())
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        return 0

    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    while True:
        status = snapshot()
        if clear:
            sys.stdout.write(clear)
        show(status)
        if not args.as_json and not clear:
            print("---")
        sys.stdout.flush()
        if status["state"] in ("done", "failed"):
            return 0 if status["state"] == "done" else 1
        time.sleep(args.interval)


if __name__ == "__main__":
    sys.exit(main())
