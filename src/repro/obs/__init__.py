"""Unified observability layer: metrics, DES event tracing, run telemetry.

Three legs, all free when off and structured when on:

* :mod:`repro.obs.metrics` — a process-wide registry of Counter / Gauge /
  Histogram instruments keyed by name + labels, with a no-op default so
  instrumented call sites cost ~nothing while metrics are disabled, and a
  deterministically ordered JSON export (``--metrics-json``).
* :mod:`repro.obs.trace` — opt-in, sim-time-stamped structured records
  from the DES kernel (schedule / fire / process-resume) and the paper's
  decision points (admission outcomes, adaptation rounds, handoffs,
  advance-reservation claims), sunk to a ring buffer or JSONL file
  (``--trace[=PATH]``, ``python -m repro trace summarize``).
* :mod:`repro.obs.telemetry` — coordinator-side aggregation of what the
  experiment runtime did: per-replication wall times, retry / timeout /
  crash counts, cache hit rates (``--stats-json``).

Two more legs cover the runtime itself rather than the simulation:

* :mod:`repro.obs.spans` — hierarchical wall-clock spans over sweep →
  node → chunk → replication → attempt, with a placement-independent
  canonical structure (``--spans``, ``python -m repro trace spans``).
* :mod:`repro.obs.profiling` — deterministic cProfile aggregation across
  workers and nodes (``--profile``, ``python -m repro trace profile``).
* :mod:`repro.obs.monitor` — live view over a distributed run directory's
  heartbeat files (``python -m repro monitor RUN_DIR``).

Invariant: observability *reads* simulation state and never perturbs RNG
draws or event order, so enabling any of it leaves experiment outputs
bit-identical to an unobserved run.  See ``docs/OBSERVABILITY.md``.
"""

from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .profiling import (
    hotspots,
    merge_profile_stats,
    profile_to_pstats,
    read_pstats,
    render_hotspots,
    write_pstats,
)
from .spans import (
    Span,
    SpanCollector,
    SpanLedger,
    canonical_structure,
    format_span_tree,
    get_span_collector,
    read_spans_jsonl,
    set_span_collector,
    use_span_collector,
    write_spans_jsonl,
)
from .telemetry import RunTelemetry
from .trace import (
    JsonlSink,
    RingBufferSink,
    Tracer,
    get_tracer,
    open_text,
    read_jsonl,
    set_tracer,
    summarize_records,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "RunTelemetry",
    "Tracer",
    "RingBufferSink",
    "JsonlSink",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "open_text",
    "read_jsonl",
    "summarize_records",
    "Span",
    "SpanCollector",
    "SpanLedger",
    "canonical_structure",
    "format_span_tree",
    "get_span_collector",
    "set_span_collector",
    "use_span_collector",
    "read_spans_jsonl",
    "write_spans_jsonl",
    "hotspots",
    "merge_profile_stats",
    "profile_to_pstats",
    "read_pstats",
    "render_hotspots",
    "write_pstats",
]
