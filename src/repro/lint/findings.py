"""The :class:`Finding` record emitted by every checker."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored with forward slashes relative to the lint invocation's
    working directory so findings (and baseline entries) are portable across
    machines and operating systems.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON shape — covered by a schema test, change with care."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
