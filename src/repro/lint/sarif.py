"""SARIF 2.1.0 serialization for GitHub code scanning.

One run, one tool driver (``repro-lint``), the full rule catalogue in
``tool.driver.rules`` so the code-scanning UI can show rule help, and one
``result`` per finding.  Output is fully deterministic: findings arrive
pre-sorted and the JSON is dumped with stable key order, so the CI
byte-identity check covers this format too.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .findings import Finding
from .registry import all_rules

__all__ = ["sarif_payload", "write_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_payload(findings: List[Finding]) -> Dict[str, object]:
    rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules()
    ]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in sorted(findings, key=Finding.sort_key)
    ]
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(findings: List[Finding], out) -> None:
    json.dump(sarif_payload(findings), out, indent=2, sort_keys=False)
    out.write("\n")
