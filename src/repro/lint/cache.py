"""Content-hash-keyed incremental cache for lint results.

Same keying discipline as :mod:`repro.runtime.cache`: entries live under a
versioned directory (``<root>/v<N>/``), keys are SHA-256 digests of a
canonical-JSON structure, and corrupt entries are unlinked and treated as
misses.  What goes *into* a key is what makes warm runs trustworthy:

* the **engine digest** — a hash over every source file of the
  ``repro.lint`` package itself, so editing any checker, the dataflow
  engine, or this module invalidates the whole cache;
* the **configuration** (canonical dataclass dump) and the enabled rules;
* the **project-facts digest** — the facts *value*, not its inputs.
  Editing one module re-lints that module, but modules whose facts view
  did not change stay cached — that is the incremental part;
* the **file content digest** for per-file entries, or the sorted
  ``(path, content-digest)`` list of the whole index for the project-pass
  entry.

Cached values are findings *before* baseline filtering (suppression is a
pure function of file content, so it is safely cached), which keeps the
baseline's stateful occurrence counting in the coordinator and the warm
output byte-identical to cold.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["LINT_CACHE_VERSION", "LintCache", "engine_digest", "digest_of"]

#: Bump when the cached value shape changes.
LINT_CACHE_VERSION = 1

#: Default cache root (repo-relative; override with --cache-dir).
DEFAULT_CACHE_DIR = ".lint-cache"


def _canonical(value: Any) -> Any:
    """Reduce to a JSON-stable structure (runtime/cache.py discipline)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {
            "__mapping__": sorted(
                (str(k), _canonical(v)) for k, v in value.items()
            )
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": sorted(
                (_canonical(v) for v in value),
                key=lambda item: json.dumps(item, sort_keys=True),
            )
        }
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": repr(value)}
    raise TypeError(f"cannot canonicalize {type(value).__name__} for cache key")


def digest_of(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``value``."""
    blob = json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


_ENGINE_DIGEST: Optional[str] = None


def engine_digest() -> str:
    """Digest over the lint package's own sources (cached per process)."""
    global _ENGINE_DIGEST
    if _ENGINE_DIGEST is None:
        package_dir = Path(__file__).resolve().parent
        hasher = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            hasher.update(path.relative_to(package_dir).as_posix().encode())
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _ENGINE_DIGEST = hasher.hexdigest()
    return _ENGINE_DIGEST


class LintCache:
    """Directory-backed JSON cache with self-healing reads."""

    def __init__(self, root: Path):
        self.dir = Path(root) / f"v{LINT_CACHE_VERSION}"
        self.hits = 0
        self.misses = 0

    def _entry_path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings short on big repos.
        return self.dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._entry_path(key)
        try:
            value = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Corrupt or truncated: heal by unlinking, treat as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        if not isinstance(value, dict):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Dict[str, Any]) -> None:
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(value, sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        tmp.replace(path)  # atomic on POSIX: readers never see half a file
