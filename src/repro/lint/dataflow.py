"""Forward dataflow over the call graph: reaching taints + summaries.

The framework is a small abstract interpreter: each function body is
walked in source order with an environment mapping local names to *taint
sets*, and the per-function results are condensed into
:class:`FunctionSummary` objects (what a call returns, which parameters
flow to the return value, which parameters get ``close``/``unlink`` called
on them).  Summaries feed call sites, call sites feed parameter taints,
and the whole thing iterates to a fixpoint (bounded, monotone — taint sets
only grow) so a seeded RNG threaded through three helpers in three modules
still reaches the sink with its provenance intact.

Taint kinds:

``rng``
    a seeded ``random.Random(seed)`` / ``numpy.random.default_rng(seed)``
    instance — private replication state that must never reach module
    scope (REP401);
``set``
    a hash-ordered ``set``/``frozenset`` value — iterating one in a
    decision path diverges under ``PYTHONHASHSEED`` (REP402).  Dict views
    are insertion-ordered in every supported interpreter and deliberately
    *not* tainted;
``shm``
    a ``SharedMemory`` handle whose lifecycle REP403 audits.

Parameter *markers* (kind ``#p<i>``) ride the same lattice so aliasing
falls out for free: ``h = handle; h.close()`` still registers as closing
parameter ``i``.  Markers never escape the public query API.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph
from .project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    _expr_is_set,
)

__all__ = [
    "Taint",
    "FunctionSummary",
    "ShmEvent",
    "FunctionAnalysis",
    "ProjectDataflow",
]

TaintSet = FrozenSet["Taint"]
EMPTY: TaintSet = frozenset()

#: Constructors producing seeded RNG instances when called *with* a seed.
_RNG_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
}

#: Constructors producing shared-memory handles.
_SHM_CONSTRUCTORS = {
    "multiprocessing.shared_memory.SharedMemory",
    "shared_memory.SharedMemory",
}

#: Calls that return fresh, deterministically ordered data: taint dies.
_SANITIZERS = {"sorted", "len", "sum", "min", "max", "repr", "str", "id",
               "bool", "int", "float"}

#: Calls that preserve the (hash) order of their first argument.
_ORDER_PRESERVING = {"list", "tuple", "iter", "reversed", "enumerate"}

#: Docstring marker satisfying REP403's "documented owner transfer".
_OWNER_DOC = re.compile(r"own(?:er|ership)?|lifecycle|transfer", re.IGNORECASE)

_MAX_ROUNDS = 8


@dataclass(frozen=True)
class Taint:
    """One provenance-carrying taint atom."""

    kind: str      #: "rng" | "set" | "shm" | "#p<i>" (parameter marker)
    origin: str    #: dotted function (or class) where the value was born
    line: int      #: birth line in the origin module
    crossed: bool = False  #: has the value crossed a function boundary?

    def across(self) -> "Taint":
        if self.crossed:
            return self
        return Taint(self.kind, self.origin, self.line, True)

    @property
    def is_marker(self) -> bool:
        return self.kind.startswith("#p")

    @property
    def sort_key(self) -> Tuple[str, str, int, bool]:
        return (self.kind, self.origin, self.line, self.crossed)


def _cross(taints: TaintSet) -> TaintSet:
    return frozenset(t.across() for t in taints)


def _real(taints: TaintSet) -> TaintSet:
    return frozenset(t for t in taints if not t.is_marker)


@dataclass
class ShmEvent:
    """One ``SharedMemory(...)`` creation and its local lifecycle."""

    line: int
    var: Optional[str]          #: local name bound to the handle, if any
    closed: bool = False        #: .close() reached in the creating function
    unlinked: bool = False      #: .unlink() reached in the creating function
    escapes: bool = False       #: handle leaves the creating function


@dataclass
class FunctionSummary:
    """Condensed effect of calling one function."""

    key: Tuple[str, str]
    returns: TaintSet = EMPTY               #: taints of the return value
    param_to_return: FrozenSet[int] = frozenset()
    closes_params: FrozenSet[int] = frozenset()
    unlinks_params: FrozenSet[int] = frozenset()

    def state(self) -> Tuple:
        return (self.returns, self.param_to_return,
                self.closes_params, self.unlinks_params)

    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON shape for golden tests (markers elided)."""
        return {
            "function": ".".join(self.key),
            "returns": sorted(
                {f"{t.kind}@{t.origin}:{t.line}" for t in _real(self.returns)}
            ),
            "param_to_return": sorted(self.param_to_return),
            "closes_params": sorted(self.closes_params),
            "unlinks_params": sorted(self.unlinks_params),
        }


class FunctionAnalysis:
    """One forward pass over a function (or module) body.

    Exposes the per-node taint map the inter-procedural checkers query:
    ``taint_of(node)`` for expressions, ``name_taints(name)`` for the join
    of everything ever bound to a local, plus the structured side tables
    (global writes, module writes, default-argument taints, shm events).
    """

    def __init__(
        self,
        df: "ProjectDataflow",
        info: ModuleInfo,
        fi: Optional[FunctionInfo],
        param_taints: Dict[int, TaintSet],
    ):
        self.df = df
        self.info = info
        self.fi = fi
        self.qualname = fi.qualname if fi is not None else "<module>"
        self.owner = (
            f"{info.module}.{self.qualname}" if fi is not None else info.module
        )
        self.env: Dict[str, TaintSet] = {}
        #: join of every taint a name was ever bound to (lambda captures)
        self.name_ever: Dict[str, TaintSet] = {}
        self._node_taints: Dict[int, TaintSet] = {}
        self.returns: Set[Taint] = set()
        self.param_to_return: Set[int] = set()
        self.closes_params: Set[int] = set()
        self.unlinks_params: Set[int] = set()
        #: (name, line, taints) for ``global X`` rebinds in this function
        self.global_writes: List[Tuple[str, int, TaintSet]] = []
        #: (name, line, taints) for module-level assignments (module pass)
        self.module_writes: List[Tuple[str, int, TaintSet]] = []
        #: (funcname, argname, line, taints) for default-arg expressions
        self.default_taints: List[Tuple[str, str, int, TaintSet]] = []
        self.shm_events: List[ShmEvent] = []
        #: call-site argument taints pushed to callees during fixpoint
        self.callee_args: List[Tuple[Tuple[str, str], Dict[int, TaintSet]]] = []

        self._param_index: Dict[str, int] = {}
        self._globals: Set[str] = set()
        if fi is not None:
            node = fi.node
            for i, name in enumerate(fi.param_names()):
                self._param_index[name] = i
                seed: Set[Taint] = {Taint(f"#p{i}", self.owner, node.lineno)}
                seed.update(param_taints.get(i, EMPTY))
                self.env[name] = frozenset(seed)
            self._local_types = df.graph._local_constructions(info, fi)
            body: Sequence[ast.stmt] = node.body  # type: ignore[attr-defined]
        else:
            self._local_types = {}
            body = info.tree.body
        self._exec_block(body)
        for name, taints in self.env.items():
            self._remember(name, taints)

    # -- public queries -----------------------------------------------------

    def taint_of(self, node: ast.AST) -> TaintSet:
        """Real (marker-free) taints of an analyzed expression node."""
        return _real(self._node_taints.get(id(node), EMPTY))

    def name_taints(self, name: str) -> TaintSet:
        """Join of every real taint ever bound to ``name``."""
        return _real(self.name_ever.get(name, EMPTY))

    def summary(self) -> FunctionSummary:
        key = self.fi.key if self.fi is not None else (self.info.module,
                                                       "<module>")
        return FunctionSummary(
            key=key,
            returns=frozenset(self.returns),
            param_to_return=frozenset(self.param_to_return),
            closes_params=frozenset(self.closes_params),
            unlinks_params=frozenset(self.unlinks_params),
        )

    # -- statement execution ------------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = self.env.get(stmt.target.id, EMPTY) | taints
                self._bind(stmt.target, merged, stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taints = self._eval(stmt.value)
                for t in taints:
                    if t.is_marker and t.origin == self.owner:
                        self.param_to_return.add(int(t.kind[2:]))
                    elif not t.is_marker:
                        self.returns.add(t)
                self._mark_shm_escape(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Global):
            self._globals.update(stmt.names)
        elif isinstance(stmt, (ast.If,)):
            self._eval(stmt.test)
            before = dict(self.env)
            self._exec_block(stmt.body)
            after_body = dict(self.env)
            self.env = before
            self._exec_block(stmt.orelse)
            for name, taints in after_body.items():
                self.env[name] = self.env.get(name, EMPTY) | taints
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taints = self._eval(stmt.iter)
            self._bind(stmt.target, iter_taints, stmt)
            # Two passes so loop-carried taint reaches the first statement.
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints, stmt)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are analyzed via their own FunctionInfo (module
            # level) — here we only evaluate default-arg expressions, which
            # run in *this* scope at definition time.
            for arg, default in self._defaults_of(stmt):
                taints = self._eval(default)
                if taints:
                    self.default_taints.append(
                        (stmt.name, arg, default.lineno, taints)
                    )
        elif isinstance(stmt, ast.ClassDef):
            for child in stmt.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for arg, default in self._defaults_of(child):
                        taints = self._eval(default)
                        if taints:
                            self.default_taints.append(
                                (f"{stmt.name}.{child.name}", arg,
                                 default.lineno, taints)
                            )
        # remaining statement kinds carry no bindings we model

    @staticmethod
    def _defaults_of(
        node: ast.AST,
    ) -> List[Tuple[str, ast.expr]]:
        args = node.args  # type: ignore[attr-defined]
        out: List[Tuple[str, ast.expr]] = []
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            out.append((arg.arg, default))
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                out.append((arg.arg, default))
        return out

    def _bind(self, target: ast.AST, taints: TaintSet, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self._globals:
                self.global_writes.append((name, stmt.lineno, _real(taints)))
            if self.fi is None:
                self.module_writes.append((name, stmt.lineno, _real(taints)))
            self.env[name] = taints
            self._remember(name, taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taints, stmt)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # Storing into an object/container: the handle escapes.
            if isinstance(stmt, ast.Assign):
                self._mark_shm_escape(stmt.value)
        if isinstance(target, ast.Starred):
            self._bind(target.value, taints, stmt)

    def _remember(self, name: str, taints: TaintSet) -> None:
        self.name_ever[name] = self.name_ever.get(name, EMPTY) | taints

    # -- expression evaluation ----------------------------------------------

    def _eval(self, node: ast.expr) -> TaintSet:
        taints = self._eval_inner(node)
        if taints:
            self._node_taints[id(node)] = taints
        return taints

    def _eval_inner(self, node: ast.expr) -> TaintSet:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if _expr_is_set(node):
            # The literal itself is a source; operands may carry more.
            taints: Set[Taint] = {Taint("set", self.owner, node.lineno)}
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    taints.update(self._eval(child))
            return frozenset(taints)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.BoolOp):
            out: TaintSet = EMPTY
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            out = EMPTY
            for element in node.elts:
                out |= self._eval(element)
            return out
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            taints = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = taints
                self._remember(node.target.id, taints)
            return taints
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, (ast.SetComp,)):
            self._eval_comp(node)
            return frozenset({Taint("set", self.owner, node.lineno)})
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            return self._eval_comp(node)
        if isinstance(node, ast.Subscript):
            return self._eval(node.value)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comp in node.comparators:
                self._eval(comp)
            return EMPTY
        if isinstance(node, ast.UnaryOp):
            self._eval(node.operand)
            return EMPTY
        if isinstance(node, ast.Lambda):
            return EMPTY
        return EMPTY

    def _eval_comp(self, node: ast.expr) -> TaintSet:
        """Comprehensions: evaluate iterables so sinks inside are recorded."""
        out: TaintSet = EMPTY
        for gen in node.generators:  # type: ignore[attr-defined]
            out |= self._eval(gen.iter)
            self._bind(gen.target, EMPTY, ast.Pass(lineno=node.lineno))
            for cond in gen.ifs:
                self._eval(cond)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            self._eval(node.elt)
        elif isinstance(node, ast.DictComp):
            self._eval(node.key)
            self._eval(node.value)
        return EMPTY

    def _eval_attribute(self, node: ast.Attribute) -> TaintSet:
        base = self._eval(node.value)
        if node.attr in self.df.set_attributes:
            # A set-typed attribute read is a *cross-function* source: the
            # set was built in __init__, this code iterates it elsewhere.
            return base | frozenset(
                {Taint("set", self.owner, node.lineno, crossed=True)}
            )
        return base

    def _eval_call(self, node: ast.Call) -> TaintSet:
        arg_taints = [self._eval(a) for a in node.args]
        kw_taints = {
            kw.arg: self._eval(kw.value)
            for kw in node.keywords if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value)

        func = node.func
        simple = func.id if isinstance(func, ast.Name) else None
        if simple in _SANITIZERS:
            return EMPTY
        if simple in _ORDER_PRESERVING and node.args:
            return arg_taints[0]
        if simple in {"set", "frozenset"}:
            # The builtin constructors are sources just like set literals
            # (ast.Call dispatches here before _expr_is_set gets a look).
            source: Set[Taint] = {Taint("set", self.owner, node.lineno)}
            for taints in arg_taints:
                source.update(taints)
            return frozenset(source)

        dotted = self.info.resolve_dotted(func)
        if dotted in _RNG_CONSTRUCTORS and (node.args or node.keywords):
            return frozenset({Taint("rng", self.owner, node.lineno)})
        if dotted is not None and (
            dotted in _SHM_CONSTRUCTORS or dotted.endswith(".SharedMemory")
        ):
            event = ShmEvent(line=node.lineno, var=self._assigned_name(node))
            self.shm_events.append(event)
            return frozenset({Taint("shm", self.owner, node.lineno)})

        # .close()/.unlink() on a parameter-marked handle
        if isinstance(func, ast.Attribute) and not node.args:
            recv = self._eval(func.value)
            if func.attr in {"close", "unlink"}:
                for t in recv:
                    if t.is_marker and t.origin == self.owner:
                        idx = int(t.kind[2:])
                        if func.attr == "close":
                            self.closes_params.add(idx)
                        else:
                            self.unlinks_params.add(idx)
                self._note_shm_lifecycle(func.value, func.attr)

        callee = self.df.graph.resolve_callee(
            self.info, self.fi, node, self._local_types
        )
        if callee is None:
            self._mark_escaping_args(node, arg_taints)
            return EMPTY

        param_map = self._map_args(callee, node, arg_taints, kw_taints)
        self.callee_args.append((callee, param_map))
        summary = self.df.summaries.get(callee)
        if summary is None:
            return EMPTY
        result: Set[Taint] = set(_cross(_real(summary.returns)))
        for idx in summary.param_to_return:
            result.update(_cross(_real(param_map.get(idx, EMPTY))))
        self._apply_shm_summary(node, callee, summary)
        return frozenset(result)

    # -- call-site helpers --------------------------------------------------

    def _map_args(
        self,
        callee: Tuple[str, str],
        node: ast.Call,
        arg_taints: List[TaintSet],
        kw_taints: Dict[str, TaintSet],
    ) -> Dict[int, TaintSet]:
        """Call-site taints per callee parameter index (self included)."""
        offset = 0
        if "." in callee[1] and isinstance(node.func, ast.Attribute):
            # Bound method call: parameter 0 is the receiver.
            offset = 1
        param_map: Dict[int, TaintSet] = {}
        if offset == 1:
            param_map[0] = self._eval(node.func.value)  # type: ignore[union-attr]
        for i, taints in enumerate(arg_taints):
            if taints:
                param_map[i + offset] = taints
        callee_info = self.df.index.module_for(callee[0])
        if callee_info is not None and callee[1] in callee_info.functions:
            names = callee_info.functions[callee[1]].param_names()
            for name, taints in kw_taints.items():
                if taints and name in names:
                    param_map[names.index(name)] = (
                        param_map.get(names.index(name), EMPTY) | taints
                    )
        return param_map

    def _assigned_name(self, call: ast.Call) -> Optional[str]:
        parent = getattr(call, "parent", None)
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                return target.id
        if isinstance(parent, ast.withitem) and isinstance(
            parent.optional_vars, ast.Name
        ):
            return parent.optional_vars.id
        return None

    def _note_shm_lifecycle(self, receiver: ast.expr, op: str) -> None:
        if not isinstance(receiver, ast.Name):
            return
        for event in self.shm_events:
            if event.var == receiver.id:
                if op == "close":
                    event.closed = True
                else:
                    event.unlinked = True

    def _apply_shm_summary(
        self,
        node: ast.Call,
        callee: Tuple[str, str],
        summary: FunctionSummary,
    ) -> None:
        """Passing a handle to a callee that closes/unlinks it counts."""
        for i, arg in enumerate(node.args):
            if not isinstance(arg, ast.Name):
                continue
            for event in self.shm_events:
                if event.var != arg.id:
                    continue
                handled = False
                for idx in (i, i + 1):  # tolerate self-offset ambiguity
                    if idx in summary.closes_params:
                        event.closed = True
                        handled = True
                    if idx in summary.unlinks_params:
                        event.unlinked = True
                        handled = True
                if not handled:
                    event.escapes = True

    def _mark_escaping_args(
        self, node: ast.Call, arg_taints: List[TaintSet]
    ) -> None:
        """Handles passed to unresolved calls escape the creating function."""
        for arg in node.args:
            if isinstance(arg, ast.Name):
                self._mark_shm_escape(arg)

    def _mark_shm_escape(self, value: ast.expr) -> None:
        if isinstance(value, ast.Name):
            for event in self.shm_events:
                if event.var == value.id:
                    event.escapes = True


class ProjectDataflow:
    """Fixpoint driver + per-function analysis cache."""

    def __init__(
        self,
        index: ProjectIndex,
        graph: CallGraph,
        set_attributes: Sequence[str] = (),
    ):
        self.index = index
        self.graph = graph
        self.set_attributes = frozenset(set_attributes)
        self.summaries: Dict[Tuple[str, str], FunctionSummary] = {}
        self.param_taints: Dict[Tuple[str, str], Dict[int, TaintSet]] = {}
        self.analyses: Dict[Tuple[str, str], FunctionAnalysis] = {}
        self.module_analyses: Dict[str, FunctionAnalysis] = {}
        self._solve()

    @classmethod
    def build(
        cls,
        index: ProjectIndex,
        graph: CallGraph,
        set_attributes: Sequence[str] = (),
    ) -> "ProjectDataflow":
        return cls(index, graph, set_attributes)

    def _functions(self) -> List[Tuple[ModuleInfo, FunctionInfo]]:
        out: List[Tuple[ModuleInfo, FunctionInfo]] = []
        for path in sorted(self.index.modules):
            info = self.index.modules[path]
            for qualname in sorted(info.functions):
                out.append((info, info.functions[qualname]))
        return out

    def _solve(self) -> None:
        functions = self._functions()
        for _ in range(_MAX_ROUNDS):
            changed = False
            analyses: Dict[Tuple[str, str], FunctionAnalysis] = {}
            for info, fi in functions:
                analysis = FunctionAnalysis(
                    self, info, fi, self.param_taints.get(fi.key, {})
                )
                analyses[fi.key] = analysis
                summary = analysis.summary()
                previous = self.summaries.get(fi.key)
                if previous is None or previous.state() != summary.state():
                    changed = True
                self.summaries[fi.key] = summary
            # Push call-site taints into callee parameter joins.
            for analysis in analyses.values():
                for callee, param_map in analysis.callee_args:
                    slot = self.param_taints.setdefault(callee, {})
                    for idx, taints in param_map.items():
                        crossed = _cross(_real(taints))
                        if not crossed:
                            continue
                        merged = slot.get(idx, EMPTY) | crossed
                        if merged != slot.get(idx, EMPTY):
                            slot[idx] = merged
                            changed = True
            self.analyses = analyses
            if not changed:
                break
        # Module bodies run last so default args / module writes see final
        # function summaries.
        for path in sorted(self.index.modules):
            info = self.index.modules[path]
            self.module_analyses[info.module] = FunctionAnalysis(
                self, info, None, {}
            )

    # -- queries ------------------------------------------------------------

    def analysis_for(
        self, key: Tuple[str, str]
    ) -> Optional[FunctionAnalysis]:
        return self.analyses.get(key)

    def module_analysis(self, module: str) -> Optional[FunctionAnalysis]:
        return self.module_analyses.get(module)

    def summaries_dict(self) -> List[Dict[str, object]]:
        """Sorted, marker-free summary dump for golden tests."""
        out = []
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            entry = summary.to_dict()
            if (entry["returns"] or entry["param_to_return"]
                    or entry["closes_params"] or entry["unlinks_params"]):
                out.append(entry)
        return out


def owner_documented(fi: FunctionInfo) -> bool:
    """REP403's escape hatch: the creating function documents the owner."""
    doc = ast.get_docstring(fi.node)  # type: ignore[arg-type]
    if doc and _OWNER_DOC.search(doc):
        return True
    parent = getattr(fi.node, "parent", None)
    if isinstance(parent, ast.ClassDef):
        cls_doc = ast.get_docstring(parent)
        if cls_doc and _OWNER_DOC.search(cls_doc):
            return True
    return False
