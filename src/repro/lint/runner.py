"""File discovery and per-module checker execution."""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .baseline import Baseline
from .config import LintConfig
from .findings import Finding
from .registry import iter_checkers
from .suppressions import collect_suppressions, is_suppressed
from .checkers import ModuleContext, annotate_parents

__all__ = ["LintResult", "discover_files", "lint_paths", "lint_source"]

_SKIP_DIRS = {
    ".git", "__pycache__", ".cache", ".mypy_cache", ".ruff_cache",
    ".pytest_cache", ".venv", "venv", "node_modules", "build", "dist",
}


class LintResult:
    """Findings plus the bookkeeping the CLI needs."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.suppressed = 0
        self.baselined = 0
        self.parse_errors: List[Tuple[str, str]] = []
        #: (rule, path, line) -> stripped source line, for baseline writing.
        self.code_for: Dict[Tuple[str, str, int], str] = {}
        self.files_checked = 0

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings, key=Finding.sort_key)


def discover_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            found.append(path)
        elif path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(Path(dirpath) / name)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    # De-duplicate while keeping deterministic order.
    seen = set()
    unique = []
    for path in found:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _relpath(path: Path) -> str:
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return rel.as_posix()


def lint_source(
    source: str,
    path: str,
    config: Optional[LintConfig] = None,
    enabled: Optional[Iterable[str]] = None,
    result: Optional[LintResult] = None,
    baseline: Optional[Baseline] = None,
) -> List[Finding]:
    """Lint one module given as text; the unit-test entry point.

    ``path`` is virtual: it determines package membership (sim/engine) and
    appears in findings, but is never opened.
    """
    from .registry import all_rules

    config = config or LintConfig()
    result = result if result is not None else LintResult()
    if enabled is None:
        enabled = config.enabled_rules([r.id for r in all_rules()])

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.parse_errors.append((path, f"syntax error: {exc.msg} "
                                          f"(line {exc.lineno})"))
        return []
    annotate_parents(tree)
    ctx = ModuleContext(path=path, source=source, tree=tree, config=config)
    suppressions = collect_suppressions(source)

    module_findings: List[Finding] = []
    for checker_cls, active in iter_checkers(enabled):
        checker = checker_cls(ctx, active)
        checker.visit(tree)
        module_findings.extend(checker.findings)

    kept: List[Finding] = []
    for finding in module_findings:
        code = ctx.line_at(finding.line).strip()
        if is_suppressed(suppressions, finding.line, finding.rule):
            result.suppressed += 1
            continue
        if baseline is not None and baseline.matches(finding, code):
            result.baselined += 1
            continue
        result.code_for[(finding.rule, finding.path, finding.line)] = code
        kept.append(finding)

    result.findings.extend(kept)
    result.files_checked += 1
    return kept


def lint_paths(
    paths: Iterable[str],
    config: Optional[LintConfig] = None,
    enabled: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint files and directories; returns an aggregate :class:`LintResult`."""
    result = LintResult()
    for path in discover_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.parse_errors.append((_relpath(path), str(exc)))
            continue
        lint_source(
            source,
            _relpath(path),
            config=config,
            enabled=enabled,
            result=result,
            baseline=baseline,
        )
    return result
