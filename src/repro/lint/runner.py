"""File discovery, per-module and whole-program checker execution.

One ``lint_paths`` call makes three passes:

1. **index** — every discovered file is read once and fed to
   :class:`~repro.lint.context.ProjectContext`, which parses the project,
   builds the call graph, runs the dataflow fixpoint, and distills the
   picklable :class:`~repro.lint.context.ProjectFacts`;
2. **per-file** — each module is checked by the registered per-file
   checkers (REP0xx–REP3xx), serially, in a process pool (``jobs``), or
   straight from the incremental cache.  Workers receive ``(path, source,
   config, enabled, facts)`` — never the coordinator's ASTs — and facts
   are computed once up front, so the partitioning cannot influence any
   finding;
3. **project** — the whole-program checkers (REP4xx) run once in the
   coordinator over the full context (also cacheable: their input is the
   sorted file-digest list).

Suppression filtering is per-file-deterministic and happens with the
checking (so it caches); baseline matching is stateful
(occurrence-counted) and happens in the coordinator, in discovery order,
identically for every execution mode.  That ordering discipline is what
makes serial, parallel, and warm-cache outputs byte-identical.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .baseline import Baseline
from .cache import LintCache, digest_of, engine_digest
from .checkers import ModuleContext, annotate_parents
from .config import LintConfig
from .context import ProjectContext, ProjectFacts
from .findings import Finding
from .registry import iter_checkers, iter_project_checkers
from .suppressions import collect_suppressions, is_suppressed

__all__ = [
    "LintResult",
    "FileOutcome",
    "discover_files",
    "lint_paths",
    "lint_source",
    "resolve_jobs",
]

_SKIP_DIRS = {
    ".git", "__pycache__", ".cache", ".lint-cache", ".mypy_cache",
    ".ruff_cache", ".pytest_cache", ".venv", "venv", "node_modules",
    "build", "dist",
}


class LintResult:
    """Findings plus the bookkeeping the CLI needs."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.suppressed = 0
        self.baselined = 0
        self.parse_errors: List[Tuple[str, str]] = []
        #: (rule, path, line) -> stripped source line, for baseline writing.
        self.code_for: Dict[Tuple[str, str, int], str] = {}
        self.files_checked = 0
        #: cache telemetry (not part of any output schema)
        self.cache_hits = 0
        self.cache_misses = 0

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings, key=Finding.sort_key)


@dataclass
class FileOutcome:
    """Deterministic per-file check result (pre-baseline, post-suppression).

    This is the unit that travels: worker -> coordinator, and to/from the
    incremental cache.  Everything in it is a pure function of
    ``(source, path, config, enabled, facts)``.
    """

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    #: (rule, line) -> stripped source line for each kept finding
    codes: Dict[Tuple[str, int], str] = field(default_factory=dict)
    parse_error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "codes": [
                [rule, line, code]
                for (rule, line), code in sorted(self.codes.items())
            ],
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_dict(cls, path: str, data: Dict[str, object]) -> "FileOutcome":
        return cls(
            path=path,
            findings=[
                Finding(
                    rule=f["rule"], path=f["path"], line=f["line"],
                    col=f["col"], message=f["message"],
                )
                for f in data.get("findings", [])  # type: ignore[union-attr]
            ],
            suppressed=int(data.get("suppressed", 0)),  # type: ignore[arg-type]
            codes={
                (rule, line): code
                for rule, line, code in data.get("codes", [])  # type: ignore[union-attr]
            },
            parse_error=data.get("parse_error"),  # type: ignore[arg-type]
        )


def discover_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            found.append(path)
        elif path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(Path(dirpath) / name)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    # De-duplicate while keeping deterministic order.
    seen = set()
    unique = []
    for path in found:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _relpath(path: Path) -> str:
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return rel.as_posix()


def resolve_jobs(jobs: Optional[str]) -> int:
    """``--jobs`` value ("auto", "N", None) -> worker count (>= 1)."""
    if jobs is None:
        return 1
    if jobs == "auto":
        return max(1, (os.cpu_count() or 2) - 1)
    count = int(jobs)
    if count < 1:
        raise ValueError(f"--jobs must be >= 1 or 'auto', got {jobs!r}")
    return count


# -- the pure per-file check -------------------------------------------------


def check_source(
    source: str,
    path: str,
    config: LintConfig,
    enabled: Tuple[str, ...],
    facts: Optional[ProjectFacts] = None,
) -> FileOutcome:
    """Run the per-file checkers on one module; no baseline involved."""
    outcome = FileOutcome(path=path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        outcome.parse_error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return outcome
    annotate_parents(tree)
    ctx = ModuleContext(
        path=path, source=source, tree=tree, config=config, facts=facts
    )
    suppressions = collect_suppressions(source)

    module_findings: List[Finding] = []
    for checker_cls, active in iter_checkers(enabled):
        checker = checker_cls(ctx, active)
        checker.visit(tree)
        module_findings.extend(checker.findings)

    for finding in module_findings:
        if is_suppressed(suppressions, finding.line, finding.rule):
            outcome.suppressed += 1
            continue
        outcome.codes[(finding.rule, finding.line)] = (
            ctx.line_at(finding.line).strip()
        )
        outcome.findings.append(finding)
    return outcome


#: Per-worker shared state, installed once by ``_init_worker`` so that the
#: (large, identical) config/enabled/facts triple is pickled once per worker
#: instead of once per file — re-sending it per payload made the pool no
#: faster than the serial loop.
_WORKER_STATE: Optional[
    Tuple[LintConfig, Tuple[str, ...], Optional[ProjectFacts]]
] = None


def _init_worker(
    config: LintConfig,
    enabled: Tuple[str, ...],
    facts: Optional[ProjectFacts],
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (config, enabled, facts)


def _check_file_worker(payload: Tuple[str, str]) -> Dict[str, object]:
    """Pool entry point: unpack, check, return the serialized outcome."""
    path, source = payload
    assert _WORKER_STATE is not None
    config, enabled, facts = _WORKER_STATE
    return check_source(source, path, config, enabled, facts).to_dict()


# -- the public entry points -------------------------------------------------


def lint_source(
    source: str,
    path: str,
    config: Optional[LintConfig] = None,
    enabled: Optional[Iterable[str]] = None,
    result: Optional[LintResult] = None,
    baseline: Optional[Baseline] = None,
    facts: Optional[ProjectFacts] = None,
) -> List[Finding]:
    """Lint one module given as text; the unit-test entry point.

    ``path`` is virtual: it determines package membership (sim/engine) and
    appears in findings, but is never opened.  Only the per-file rules run
    — whole-program REP4xx rules need ``lint_paths`` (there is no cross-
    module story for a single string of source).
    """
    from .registry import all_rules

    config = config or LintConfig()
    result = result if result is not None else LintResult()
    if enabled is None:
        enabled = config.enabled_rules([r.id for r in all_rules()])

    outcome = check_source(source, path, config, tuple(enabled), facts)
    if outcome.parse_error is not None:
        result.parse_errors.append((path, outcome.parse_error))
        return []
    kept = _merge_outcome(result, outcome, baseline)
    result.files_checked += 1
    return kept


def _merge_outcome(
    result: LintResult,
    outcome: FileOutcome,
    baseline: Optional[Baseline],
) -> List[Finding]:
    """Apply the (stateful) baseline and fold an outcome into ``result``."""
    result.suppressed += outcome.suppressed
    kept: List[Finding] = []
    for finding in outcome.findings:
        code = outcome.codes.get((finding.rule, finding.line), "")
        if baseline is not None and baseline.matches(finding, code):
            result.baselined += 1
            continue
        result.code_for[(finding.rule, finding.path, finding.line)] = code
        kept.append(finding)
    result.findings.extend(kept)
    return kept


def lint_paths(
    paths: Iterable[str],
    config: Optional[LintConfig] = None,
    enabled: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
    jobs: int = 1,
    cache: Optional[LintCache] = None,
) -> LintResult:
    """Lint files and directories; returns an aggregate :class:`LintResult`."""
    from .registry import all_rules

    config = config or LintConfig()
    if enabled is None:
        enabled = config.enabled_rules([r.id for r in all_rules()])
    enabled = tuple(enabled)

    result = LintResult()
    files = discover_files(paths)
    sources: List[Tuple[str, str]] = []  # (relpath, source), discovery order
    for path in files:
        try:
            sources.append(
                (_relpath(path), path.read_text(encoding="utf-8"))
            )
        except (OSError, UnicodeDecodeError) as exc:
            result.parse_errors.append((_relpath(path), str(exc)))

    # Pass 1: the whole-program context (one parse of everything).
    project = ProjectContext.build(sources, config)
    facts = project.facts

    # Pass 2: per-file checks — cached, parallel, or serial.
    outcomes = _run_file_checks(
        sources, config, enabled, facts, jobs, cache, result
    )

    # Pass 3: whole-program checks in the coordinator.
    project_outcomes = _run_project_checks(
        project, sources, config, enabled, cache, result
    )

    # Deterministic merge: files in discovery order, then project findings
    # in finding order.  Baseline state is consumed in exactly this order
    # in every execution mode.
    for outcome in outcomes:
        if outcome.parse_error is not None:
            result.parse_errors.append((outcome.path, outcome.parse_error))
            continue
        _merge_outcome(result, outcome, baseline)
        result.files_checked += 1
    for outcome in project_outcomes:
        _merge_outcome(result, outcome, baseline)
    return result


def _run_file_checks(
    sources: List[Tuple[str, str]],
    config: LintConfig,
    enabled: Tuple[str, ...],
    facts: ProjectFacts,
    jobs: int,
    cache: Optional[LintCache],
    result: LintResult,
) -> List[FileOutcome]:
    base_key = None
    if cache is not None:
        base_key = {
            "engine": engine_digest(),
            "config": digest_of(config),
            "enabled": list(enabled),
            "facts": digest_of(facts),
        }

    outcomes: Dict[str, FileOutcome] = {}
    pending: List[Tuple[str, str, str]] = []  # (relpath, source, cache_key)
    for relpath, source in sources:
        key = ""
        if cache is not None and base_key is not None:
            key = digest_of({**base_key, "path": relpath, "source": source})
            hit = cache.get(key)
            if hit is not None:
                outcomes[relpath] = FileOutcome.from_dict(relpath, hit)
                result.cache_hits += 1
                continue
            result.cache_misses += 1
        pending.append((relpath, source, key))

    if pending:
        payloads = [(relpath, source) for relpath, source, _key in pending]
        if jobs > 1 and len(pending) > 1:
            chunksize = max(1, len(payloads) // (jobs * 4))
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_worker,
                initargs=(config, enabled, facts),
            ) as pool:
                raw_outcomes = list(
                    pool.map(_check_file_worker, payloads, chunksize=chunksize)
                )
        else:
            raw_outcomes = [
                check_source(source, path, config, enabled, facts).to_dict()
                for path, source in payloads
            ]
        for (relpath, _source, key), raw in zip(pending, raw_outcomes):
            outcomes[relpath] = FileOutcome.from_dict(relpath, raw)
            if cache is not None and key:
                cache.put(key, raw)

    return [outcomes[relpath] for relpath, _source in sources]


def _run_project_checks(
    project: ProjectContext,
    sources: List[Tuple[str, str]],
    config: LintConfig,
    enabled: Tuple[str, ...],
    cache: Optional[LintCache],
    result: LintResult,
) -> List[FileOutcome]:
    active_checkers = list(iter_project_checkers(enabled))
    if not active_checkers:
        return []

    key = ""
    if cache is not None:
        key = digest_of({
            "engine": engine_digest(),
            "config": digest_of(config),
            "enabled": list(enabled),
            "kind": "project-pass",
            "files": sorted(
                (relpath, digest_of(source)) for relpath, source in sources
            ),
        })
        hit = cache.get(key)
        if hit is not None:
            result.cache_hits += 1
            return _project_outcomes_from_findings(
                [
                    Finding(
                        rule=f["rule"], path=f["path"], line=f["line"],
                        col=f["col"], message=f["message"],
                    )
                    for f in hit.get("findings", [])
                ],
                sources,
            )
        result.cache_misses += 1

    findings: List[Finding] = []
    for checker_cls, active in active_checkers:
        findings.extend(checker_cls(project, active).run())
    findings.sort(key=Finding.sort_key)

    if cache is not None and key:
        cache.put(key, {"findings": [f.to_dict() for f in findings]})
    return _project_outcomes_from_findings(findings, sources)


def _project_outcomes_from_findings(
    findings: List[Finding],
    sources: List[Tuple[str, str]],
) -> List[FileOutcome]:
    """Wrap raw project findings as per-file outcomes (suppression applied).

    Project findings point at lines in regular modules, so the per-line
    ``# repro-lint: ignore[...]`` machinery applies to them the same way it
    does to per-file findings.
    """
    source_by_path = dict(sources)
    by_path: Dict[str, FileOutcome] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        outcome = by_path.get(finding.path)
        if outcome is None:
            outcome = by_path[finding.path] = FileOutcome(path=finding.path)
        source = source_by_path.get(finding.path)
        lines = source.splitlines() if source is not None else []
        suppressions = (
            collect_suppressions(source) if source is not None else {}
        )
        if is_suppressed(suppressions, finding.line, finding.rule):
            outcome.suppressed += 1
            continue
        code = (
            lines[finding.line - 1].strip()
            if 1 <= finding.line <= len(lines) else ""
        )
        outcome.codes[(finding.rule, finding.line)] = code
        outcome.findings.append(finding)
    return [by_path[p] for p in sorted(by_path)]
