"""Baseline file support: grandfathered findings that do not fail the run.

A baseline entry pins a finding by ``(rule, path, code)`` where ``code`` is
the stripped source line — not the line *number*, so unrelated edits above a
grandfathered site do not invalidate the entry, while any change to the
flagged line itself (including a fix) retires it.  ``--write-baseline``
regenerates the file from the current findings; stale entries (nothing
matches them any more) are reported so the baseline only ever shrinks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .findings import Finding

__all__ = ["Baseline", "BaselineError"]

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


@dataclass(frozen=True)
class _Entry:
    rule: str
    path: str
    code: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.code)


class Baseline:
    """An in-memory baseline, loadable from and writable to JSON."""

    def __init__(self, entries: Iterable[_Entry] = ()):
        self._entries: Dict[Tuple[str, str, str], _Entry] = {
            e.key(): e for e in entries
        }
        self._matched: Set[Tuple[str, str, str]] = set()

    def __len__(self) -> int:
        return len(self._entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: invalid JSON ({exc})") from None
        if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
            raise BaselineError(
                f"{path}: expected a baseline object with version "
                f"{_FORMAT_VERSION}"
            )
        entries = []
        for raw in data.get("entries", []):
            try:
                entries.append(
                    _Entry(rule=raw["rule"], path=raw["path"], code=raw["code"])
                )
            except (TypeError, KeyError):
                raise BaselineError(
                    f"{path}: malformed entry {raw!r} "
                    "(need rule/path/code)"
                ) from None
        return cls(entries)

    def matches(self, finding: Finding, code: str) -> bool:
        """True (and mark the entry used) if ``finding`` is grandfathered."""
        key = (finding.rule, finding.path, code.strip())
        if key in self._entries:
            self._matched.add(key)
            return True
        return False

    def stale_entries(self) -> List[_Entry]:
        """Entries that matched nothing in the run just performed."""
        return [
            self._entries[k]
            for k in sorted(set(self._entries) - self._matched)
        ]

    @staticmethod
    def write(path: Path, findings: Sequence[Finding],
              code_for: Dict[Tuple[str, str, int], str]) -> None:
        """Serialize ``findings`` as a fresh baseline.

        ``code_for`` maps ``(rule, path, line)`` to the stripped source line.
        Line and message are stored for human readers only; matching uses
        ``(rule, path, code)``.
        """
        entries = [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "code": code_for.get((f.rule, f.path, f.line), ""),
                "message": f.message,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ]
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
