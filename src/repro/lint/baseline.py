"""Baseline file support: grandfathered findings that do not fail the run.

A baseline entry pins a finding by ``(rule, path, code)`` where ``code`` is
the stripped source line — not the line *number*, so unrelated edits above a
grandfathered site do not invalidate the entry, while any change to the
flagged line itself (including a fix) retires it.

Matching is **occurrence-counted**: the file stores one row per finding, so
two identical flagged lines in one file contribute a budget of two to their
shared ``(rule, path, code)`` key.  A run may then grandfather at most that
many findings — fixing one of two identical lines leaves one baselined and
reports the freed budget as stale, instead of silently grandfathering
whatever new copy of the line appears next.  ``--write-baseline``
regenerates the file from the current findings; stale entries are reported
so the baseline only ever shrinks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from .findings import Finding

__all__ = ["Baseline", "BaselineError"]

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


@dataclass(frozen=True)
class _Entry:
    rule: str
    path: str
    code: str
    count: int = 1

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.code)


class Baseline:
    """An in-memory baseline, loadable from and writable to JSON."""

    def __init__(self, entries: Iterable[_Entry] = ()):
        #: key -> how many findings this key may grandfather
        self._budget: Dict[Tuple[str, str, str], int] = {}
        #: key -> how many findings it grandfathered in the current run
        self._used: Dict[Tuple[str, str, str], int] = {}
        for entry in entries:
            key = entry.key()
            self._budget[key] = self._budget.get(key, 0) + entry.count

    def __len__(self) -> int:
        return sum(self._budget.values())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: invalid JSON ({exc})") from None
        if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
            raise BaselineError(
                f"{path}: expected a baseline object with version "
                f"{_FORMAT_VERSION}"
            )
        entries = []
        for raw in data.get("entries", []):
            try:
                entries.append(
                    _Entry(
                        rule=raw["rule"], path=raw["path"], code=raw["code"],
                        count=int(raw.get("count", 1)),
                    )
                )
            except (TypeError, KeyError, ValueError):
                raise BaselineError(
                    f"{path}: malformed entry {raw!r} "
                    "(need rule/path/code)"
                ) from None
        return cls(entries)

    def matches(self, finding: Finding, code: str) -> bool:
        """True (consuming one unit of budget) if ``finding`` is
        grandfathered; False once the key's budget is exhausted."""
        key = (finding.rule, finding.path, code.strip())
        budget = self._budget.get(key, 0)
        used = self._used.get(key, 0)
        if used < budget:
            self._used[key] = used + 1
            return True
        return False

    def stale_entries(self) -> List[_Entry]:
        """Unused budget after the run just performed, one entry per key.

        ``count`` carries the *remaining* budget: a key whose two
        occurrences both got fixed comes back with count 2; fixing only
        one reports count 1.
        """
        stale = []
        for key in sorted(self._budget):
            remaining = self._budget[key] - self._used.get(key, 0)
            if remaining > 0:
                rule, path, code = key
                stale.append(
                    _Entry(rule=rule, path=path, code=code, count=remaining)
                )
        return stale

    @staticmethod
    def write(path: Path, findings: Sequence[Finding],
              code_for: Dict[Tuple[str, str, int], str]) -> None:
        """Serialize ``findings`` as a fresh baseline.

        ``code_for`` maps ``(rule, path, line)`` to the stripped source line.
        One row is written per finding — identical flagged lines yield
        identical rows, and their multiplicity *is* the occurrence budget.
        Line and message are stored for human readers only; matching uses
        ``(rule, path, code)``.
        """
        entries = [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "code": code_for.get((f.rule, f.path, f.line), ""),
                "message": f.message,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ]
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
