"""The whole-program analysis bundle handed to checkers.

``lint_paths`` builds one :class:`ProjectContext` per invocation — index,
call graph, dataflow — and distills the cheap, *picklable* part into
:class:`ProjectFacts` for the per-file checkers.  The split matters for the
parallel runner: workers receive only the facts (a few KB), never the AST
forest, and because the facts are computed once in the coordinator they are
byte-identical no matter how the files are later partitioned across
processes — which is what keeps serial, ``--jobs auto``, and warm-cache
findings bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Optional, Tuple

from .callgraph import CallGraph
from .config import LintConfig
from .dataflow import ProjectDataflow
from .project import ProjectIndex

__all__ = ["ProjectFacts", "ProjectContext"]


@dataclass(frozen=True)
class ProjectFacts:
    """Cross-module facts consumable by per-file checkers.

    Everything here is a plain tuple so the object pickles cheaply, hashes
    into cache keys canonically, and cannot drift between workers.
    """

    #: attribute names provably set-typed in *every* non-test class that
    #: assigns them (conflicting names are dropped — see
    #: ``ProjectIndex.inferred_set_attributes``)
    set_attributes: Tuple[str, ...] = ()
    #: sorted ``(dotted function name, "generator" | "function")`` pairs
    function_kinds: Tuple[Tuple[str, str], ...] = ()

    def kind_of(self, dotted: str) -> Optional[str]:
        """"generator"/"function" for a dotted module-level callable."""
        return _kind_map(self.function_kinds).get(dotted)


@lru_cache(maxsize=8)
def _kind_map(pairs: Tuple[Tuple[str, str], ...]) -> Dict[str, str]:
    return dict(pairs)


class ProjectContext:
    """Index + call graph + dataflow for one lint invocation."""

    def __init__(
        self,
        index: ProjectIndex,
        graph: CallGraph,
        dataflow: ProjectDataflow,
        config: LintConfig,
        facts: ProjectFacts,
    ):
        self.index = index
        self.graph = graph
        self.dataflow = dataflow
        self.config = config
        self.facts = facts

    @classmethod
    def build(
        cls,
        sources: Iterable[Tuple[str, str]],
        config: Optional[LintConfig] = None,
    ) -> "ProjectContext":
        """Index ``(path, source)`` pairs and run the dataflow fixpoint."""
        config = config or LintConfig()
        index = ProjectIndex.build(sources)
        graph = CallGraph.build(index)
        facts = ProjectFacts(
            set_attributes=index.inferred_set_attributes(),
            function_kinds=tuple(sorted(index.function_kinds().items())),
        )
        # The taint engine treats configured *and* inferred set attributes
        # as hash-ordered sources; REP402 later skips sinks the per-file
        # REP004 attribute tier already covers (the configured ones).
        attr_union = sorted(
            set(config.set_attributes) | set(facts.set_attributes)
        )
        dataflow = ProjectDataflow.build(index, graph, attr_union)
        return cls(index, graph, dataflow, config, facts)
