"""Rule metadata and the plugin-style checker registry.

A checker module declares its rules and registers one checker class per
family::

    REP999 = Rule("REP999", "no-frobnication", "frobnication is nondeterministic")

    @register(REP999)
    class FrobnicationChecker(Checker):
        ...

Registration is import-time; :mod:`repro.lint.checkers` imports every
built-in checker module so ``all_rules()`` is complete after a plain
``import repro.lint``.  Third-party checkers can call :func:`register`
themselves before invoking :func:`repro.lint.lint_paths`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

__all__ = [
    "Rule",
    "register",
    "register_project",
    "all_rules",
    "get_rule",
    "iter_checkers",
    "iter_project_checkers",
]


@dataclass(frozen=True)
class Rule:
    """Identity and one-line rationale of a lint rule."""

    id: str
    name: str
    summary: str


#: rule id -> Rule
_RULES: Dict[str, Rule] = {}
#: per-module checker class -> tuple of rule ids it may emit
_CHECKERS: Dict[type, Tuple[str, ...]] = {}
#: whole-program checker class -> tuple of rule ids it may emit
_PROJECT_CHECKERS: Dict[type, Tuple[str, ...]] = {}


def _register_rules(rules: Tuple[Rule, ...]) -> Tuple[str, ...]:
    ids = []
    for rule in rules:
        existing = _RULES.get(rule.id)
        if existing is not None and existing != rule:
            raise ValueError(f"conflicting registration for rule {rule.id}")
        _RULES[rule.id] = rule
        ids.append(rule.id)
    return tuple(ids)


def register(*rules: Rule):
    """Class decorator registering ``rules`` as emitted by the checker."""

    def decorate(checker_cls: type) -> type:
        _CHECKERS[checker_cls] = _register_rules(rules)
        return checker_cls

    return decorate


def register_project(*rules: Rule):
    """Class decorator for whole-program checkers (the REP4xx family).

    Project checkers run once per lint invocation over the
    :class:`~repro.lint.context.ProjectContext` instead of once per module
    — they see the call graph and dataflow summaries, so their rules can
    cross function and module boundaries.
    """

    def decorate(checker_cls: type) -> type:
        _PROJECT_CHECKERS[checker_cls] = _register_rules(rules)
        return checker_cls

    return decorate


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    return [_RULES[rid] for rid in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None


def iter_checkers(enabled: Iterable[str]) -> Iterator[Tuple[type, Tuple[str, ...]]]:
    """Yield ``(checker_cls, active_rule_ids)`` for checkers with at least
    one rule in ``enabled``; checkers whose every rule is disabled are
    skipped entirely (they never even visit the tree)."""
    want = set(enabled)
    for cls, ids in _CHECKERS.items():
        active = tuple(rid for rid in ids if rid in want)
        if active:
            yield cls, active


def iter_project_checkers(
    enabled: Iterable[str],
) -> Iterator[Tuple[type, Tuple[str, ...]]]:
    """Like :func:`iter_checkers`, over the whole-program checker table."""
    want = set(enabled)
    for cls, ids in _PROJECT_CHECKERS.items():
        active = tuple(rid for rid in ids if rid in want)
        if active:
            yield cls, active
