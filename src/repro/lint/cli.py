"""``python -m repro.lint`` — the command-line front end.

Exit codes (stable, asserted by tests):

* ``0`` — no findings (after suppressions and baseline),
* ``1`` — at least one finding, or a file failed to parse,
* ``2`` — usage error (unknown rule id, missing path, bad baseline file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import Baseline, BaselineError
from .cache import DEFAULT_CACHE_DIR, LintCache
from .config import LintConfig, load_config
from .registry import all_rules
from .runner import LintResult, lint_paths, resolve_jobs
from .sarif import write_sarif

__all__ = ["main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Bump only when the --format=json shape changes (schema-tested).
JSON_FORMAT_VERSION = 1


def _split_rules(values: Optional[List[str]]) -> List[str]:
    rules: List[str] = []
    for value in values or []:
        rules.extend(r.strip().upper() for r in value.split(",") if r.strip())
    return rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based simulation-correctness linter for the repro "
                    "codebase (determinism, DES protocol, pickle safety).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select", action="append", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="baseline JSON of grandfathered findings "
             "(default: [tool.repro-lint] baseline, if the file exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any configured baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--jobs", metavar="N", default=None,
        help="check files in N parallel processes ('auto' = cores - 1); "
             "findings are bit-identical to a serial run",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="enable the content-hash incremental cache "
             f"(default dir: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory (implies --cache)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _validate_rules(rules: Sequence[str]) -> Optional[str]:
    known = {r.id for r in all_rules()}
    for rule in rules:
        if rule not in known:
            return rule
    return None


def _print_text(result: LintResult, baseline: Optional[Baseline],
                out) -> None:
    findings = result.sorted_findings()
    for finding in findings:
        print(finding.render(), file=out)
    for path, message in result.parse_errors:
        print(f"{path}: error: {message}", file=out)
    if baseline is not None:
        for entry in baseline.stale_entries():
            print(
                f"note: stale baseline entry {entry.rule} @ {entry.path} "
                f"({entry.code!r}) — remove it",
                file=out,
            )
    summary = (
        f"{len(findings)} finding(s) in {result.files_checked} file(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    print(summary, file=out)


def _print_json(result: LintResult, out) -> None:
    findings = result.sorted_findings()
    counts: dict = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_FORMAT_VERSION,
        "findings": [f.to_dict() for f in findings],
        "counts": dict(sorted(counts.items())),
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "errors": [
            {"path": path, "message": message}
            for path, message in result.parse_errors
        ],
    }
    json.dump(payload, out, indent=2, sort_keys=False)
    out.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:<28} {rule.summary}")
        return EXIT_CLEAN

    try:
        config: LintConfig = load_config()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    select = _split_rules(args.select)
    ignore = _split_rules(args.ignore)
    bad = _validate_rules(select + ignore)
    if bad is not None:
        print(
            f"error: unknown rule id {bad!r} "
            "(see --list-rules for the catalogue)",
            file=sys.stderr,
        )
        return EXIT_USAGE

    config = config.with_overrides(
        select=select or None,
        ignore=ignore or None,
        baseline=args.baseline,
        no_baseline=args.no_baseline,
    )

    baseline: Optional[Baseline] = None
    baseline_path: Optional[Path] = None
    if config.baseline and not args.write_baseline:
        baseline_path = Path(config.baseline)
        if args.baseline and not baseline_path.is_file():
            print(
                f"error: baseline file not found: {baseline_path}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        if baseline_path.is_file():
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_USAGE

    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    cache: Optional[LintCache] = None
    if args.cache or args.cache_dir:
        cache = LintCache(Path(args.cache_dir or DEFAULT_CACHE_DIR))

    try:
        result = lint_paths(
            args.paths, config=config, baseline=baseline,
            jobs=jobs, cache=cache,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        target = Path(config.baseline or "lint-baseline.json")
        Baseline.write(target, result.findings, result.code_for)
        print(
            f"wrote {len(result.findings)} entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} to {target}",
        )
        return EXIT_CLEAN

    if args.format == "json":
        _print_json(result, sys.stdout)
    elif args.format == "sarif":
        write_sarif(result.sorted_findings(), sys.stdout)
    else:
        _print_text(result, baseline, sys.stdout)

    if result.findings or result.parse_errors:
        return EXIT_FINDINGS
    return EXIT_CLEAN
