"""Per-line ``# repro-lint: ignore[...]`` suppression comments.

Syntax, on the offending line::

    for n in cell.neighbors:  # repro-lint: ignore[REP004]
    risky()                   # repro-lint: ignore[REP001,REP003]
    anything()                # repro-lint: ignore

A bare ``ignore`` suppresses every rule on that line; the bracketed form
suppresses only the listed rule ids.  Comments are found with
:mod:`tokenize`, so strings containing the marker text are never
misinterpreted.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

__all__ = ["ALL_RULES", "collect_suppressions", "is_suppressed"]

#: Sentinel rule-set meaning "every rule is suppressed on this line".
ALL_RULES: FrozenSet[str] = frozenset({"*"})

_MARKER = re.compile(
    r"#\s*repro-lint\s*:\s*ignore\s*(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed rule ids for ``source``.

    Tokenization errors (the file will already have failed :func:`ast.parse`
    or is mid-edit) yield no suppressions rather than crashing the linter.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _MARKER.search(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                parsed = ALL_RULES
            else:
                parsed = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                ) or ALL_RULES
            line = tok.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | parsed
    except tokenize.TokenError:
        pass
    return suppressions


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], line: int, rule: str
) -> bool:
    rules = suppressions.get(line)
    if rules is None:
        return False
    return rules == ALL_RULES or "*" in rules or rule in rules
