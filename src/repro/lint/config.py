"""Lint configuration: defaults plus ``[tool.repro-lint]`` in pyproject.toml.

On Python >= 3.11 the table is read with :mod:`tomllib`; on older
interpreters (no ``tomllib``, and the container policy forbids new
dependencies) pyproject configuration is skipped and the built-in defaults
apply — the CLI flags still work everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on <= 3.10
    tomllib = None  # type: ignore[assignment]

__all__ = ["LintConfig", "load_config", "find_pyproject"]

#: Packages whose sources are simulation decision paths: wall-clock reads,
#: set iteration, and constant yields are hard errors here.
DEFAULT_SIM_PACKAGES: Tuple[str, ...] = (
    "repro/des",
    "repro/sim",
    "repro/wireless",
    "repro/network",
    "repro/core",
    "repro/traffic",
    "repro/mobility",
)

#: Packages counting as engine/runtime code for the hygiene family.
DEFAULT_ENGINE_PACKAGES: Tuple[str, ...] = (
    "repro/des",
    "repro/runtime",
    "repro/sim",
)

#: Function/module names in which ``random.seed`` is legitimate.
DEFAULT_ENTRY_POINTS: Tuple[str, ...] = ("main", "__main__")

#: Attributes known (project-wide) to be ``set``-typed; iterating them
#: unsorted is hash-order nondeterminism.  Extendable from pyproject.
DEFAULT_SET_ATTRIBUTES: Tuple[str, ...] = (
    "neighbors",
    "occupants",
    "bottleneck_set",
)


@dataclass(frozen=True)
class LintConfig:
    """Effective configuration for one lint run."""

    select: Optional[Tuple[str, ...]] = None  # None means "all registered"
    ignore: Tuple[str, ...] = ()
    sim_packages: Tuple[str, ...] = DEFAULT_SIM_PACKAGES
    engine_packages: Tuple[str, ...] = DEFAULT_ENGINE_PACKAGES
    entry_points: Tuple[str, ...] = DEFAULT_ENTRY_POINTS
    set_attributes: Tuple[str, ...] = DEFAULT_SET_ATTRIBUTES
    baseline: Optional[str] = "lint-baseline.json"

    def enabled_rules(self, registered: Iterable[str]) -> List[str]:
        """Resolve select/ignore against the registered rule ids."""
        ids = sorted(registered)
        chosen = ids if self.select is None else [r for r in ids if r in self.select]
        return [r for r in chosen if r not in self.ignore]

    def with_overrides(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
        baseline: Optional[str] = None,
        no_baseline: bool = False,
    ) -> "LintConfig":
        cfg = self
        if select:
            cfg = replace(cfg, select=tuple(select))
        if ignore:
            cfg = replace(cfg, ignore=tuple(cfg.ignore) + tuple(ignore))
        if no_baseline:
            cfg = replace(cfg, baseline=None)
        elif baseline is not None:
            cfg = replace(cfg, baseline=baseline)
        return cfg


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    start = start.resolve()
    for candidate in [start, *start.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _as_tuple(value: object, key: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ValueError(f"[tool.repro-lint] {key} must be a list of strings")
    return tuple(value)


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig` from the nearest pyproject.toml.

    Unknown keys raise :class:`ValueError` (a typo in config should fail the
    run loudly, not silently lint with defaults).
    """
    defaults = LintConfig()
    if tomllib is None:
        return defaults
    pyproject = find_pyproject(start or Path.cwd())
    if pyproject is None:
        return defaults
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro-lint")
    if table is None:
        return defaults

    known = {
        "select", "ignore", "sim-packages", "engine-packages",
        "entry-points", "set-attributes", "baseline",
    }
    unknown = set(table) - known
    if unknown:
        raise ValueError(
            f"[tool.repro-lint] unknown keys: {', '.join(sorted(unknown))}"
        )

    kwargs: dict = {}
    if "select" in table:
        kwargs["select"] = _as_tuple(table["select"], "select")
    if "ignore" in table:
        kwargs["ignore"] = _as_tuple(table["ignore"], "ignore")
    if "sim-packages" in table:
        kwargs["sim_packages"] = _as_tuple(table["sim-packages"], "sim-packages")
    if "engine-packages" in table:
        kwargs["engine_packages"] = _as_tuple(
            table["engine-packages"], "engine-packages")
    if "entry-points" in table:
        kwargs["entry_points"] = _as_tuple(table["entry-points"], "entry-points")
    if "set-attributes" in table:
        kwargs["set_attributes"] = _as_tuple(
            table["set-attributes"], "set-attributes")
    if "baseline" in table:
        if table["baseline"] is not None and not isinstance(table["baseline"], str):
            raise ValueError("[tool.repro-lint] baseline must be a string")
        kwargs["baseline"] = table["baseline"]
    return replace(defaults, **kwargs)
