"""REP4xx — whole-program rules over the call graph and taint lattice.

Each checker here runs once per lint invocation against the
:class:`~repro.lint.context.ProjectContext` rather than once per module.
They exist precisely for the violations the per-file families cannot see:
a seeded RNG returned through two helpers and parked in a module global, a
set built in ``core/`` and iterated in ``sim/``, a shared-memory handle
whose creator and destroyer live in different functions.

Test modules are never analyzed: their fixtures deliberately violate the
rules, and grandfathering them would bloat the baseline.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from ..context import ProjectContext
from ..dataflow import FunctionAnalysis, Taint, owner_documented
from ..findings import Finding
from ..project import FunctionInfo, ModuleInfo, _expr_is_set
from ..registry import Rule, register_project

__all__ = [
    "RngEscapeChecker",
    "HashOrderTaintChecker",
    "ShmLifecycleChecker",
    "PluginStateChecker",
]

REP401 = Rule(
    "REP401",
    "rng-escape",
    "a seeded RNG instance reaches module scope (global, default arg, or "
    "pool-submitted closure) through a call chain; replication state must "
    "stay owned by the replication",
)
REP402 = Rule(
    "REP402",
    "hash-order-taint",
    "a set value crosses a function boundary into unsorted iteration "
    "inside a simulation decision path; hash order diverges between "
    "interpreters",
)
REP403 = Rule(
    "REP403",
    "shm-lifecycle-interprocedural",
    "a SharedMemory handle is closed/unlinked in a different function than "
    "its creation without a documented owner transfer",
)
REP404 = Rule(
    "REP404",
    "unserialized-plugin-state",
    "a registry-registered plugin mutates shared module state; plugins are "
    "re-imported per worker process, so the mutation diverges",
)

#: Pool-dispatch method names a closure may be submitted through (the
#: attribute-call counterpart of REP201's list).
_DISPATCH_NAMES = {"run_many", "submit", "map", "imap", "imap_unordered",
                   "apply_async"}

#: Methods that mutate their receiver in place.
_MUTATORS = {"append", "add", "update", "setdefault", "extend", "insert",
             "pop", "remove", "discard", "clear", "popitem"}


class ProjectChecker:
    """Base for whole-program checkers: findings buffer + report helper."""

    def __init__(self, project: ProjectContext, active_rules: Tuple[str, ...]):
        self.project = project
        self.active = frozenset(active_rules)
        self.findings: List[Finding] = []

    def report(self, rule: str, path: str, node: ast.AST,
               message: str) -> None:
        if rule not in self.active:
            return
        self.findings.append(Finding(
            rule=rule,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        ))

    def run(self) -> List[Finding]:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- shared iteration helpers -------------------------------------------

    def _modules(self) -> List[ModuleInfo]:
        index = self.project.index
        return [
            index.modules[path]
            for path in sorted(index.modules)
            if not index.modules[path].is_test
        ]

    def _functions(self, info: ModuleInfo) -> List[FunctionInfo]:
        return [info.functions[q] for q in sorted(info.functions)]

    def _in_packages(self, path: str, packages: Tuple[str, ...]) -> bool:
        haystack = "/" + path.strip("/") + "/"
        return any(f"/{pkg.strip('/')}/" in haystack for pkg in packages)


def _taint_origin(taints, kind: str) -> Optional[Taint]:
    """The lexically first taint atom of ``kind``, for stable messages."""
    matching = sorted(
        (t for t in taints if t.kind == kind), key=lambda t: t.sort_key
    )
    return matching[0] if matching else None


@register_project(REP401)
class RngEscapeChecker(ProjectChecker):
    """Seeded RNG instances must never reach module scope.

    A ``random.Random(seed)`` is *the* replication's private stream; once
    it lands in a module global, a default argument, or a closure shipped
    to a worker pool, two code paths share draws and per-seed
    reproducibility is gone — silently, because every individual draw still
    looks seeded.
    """

    def run(self) -> List[Finding]:
        df = self.project.dataflow
        for info in self._modules():
            module_analysis = df.module_analysis(info.module)
            if module_analysis is not None:
                self._check_module_scope(info, module_analysis)
            for fi in self._functions(info):
                analysis = df.analysis_for(fi.key)
                if analysis is not None:
                    self._check_function(info, fi, analysis)
        return self.findings

    def _check_module_scope(
        self, info: ModuleInfo, analysis: FunctionAnalysis
    ) -> None:
        for name, line, taints in analysis.module_writes:
            taint = _taint_origin(taints, "rng")
            if taint is not None:
                self.report(
                    "REP401", info.path, _at(line),
                    f"seeded RNG (created in {taint.origin}:{taint.line}) "
                    f"assigned to module global {name!r}; RNG state must be "
                    "threaded through the replication, not shared at import "
                    "scope",
                )
        self._check_defaults(info, analysis)

    def _check_defaults(
        self, info: ModuleInfo, analysis: FunctionAnalysis
    ) -> None:
        for funcname, argname, line, taints in analysis.default_taints:
            taint = _taint_origin(taints, "rng")
            if taint is not None:
                self.report(
                    "REP401", info.path, _at(line),
                    f"default value of {funcname}({argname}=...) is a seeded "
                    f"RNG (created in {taint.origin}:{taint.line}); defaults "
                    "evaluate once at import, so every caller shares the "
                    "stream",
                )

    def _check_function(
        self, info: ModuleInfo, fi: FunctionInfo, analysis: FunctionAnalysis
    ) -> None:
        for name, line, taints in analysis.global_writes:
            taint = _taint_origin(taints, "rng")
            if taint is not None:
                self.report(
                    "REP401", info.path, _at(line),
                    f"global {name!r} rebound to a seeded RNG (created in "
                    f"{taint.origin}:{taint.line}); module globals are "
                    "per-process, so workers and coordinator drift apart",
                )
        for node in ast.walk(fi.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DISPATCH_NAMES
            ):
                self._check_dispatch(info, analysis, node)

    def _check_dispatch(
        self, info: ModuleInfo, analysis: FunctionAnalysis, call: ast.Call
    ) -> None:
        for arg in call.args:
            if isinstance(arg, ast.Lambda):
                for name in sorted(_free_names(arg)):
                    taint = _taint_origin(analysis.name_taints(name), "rng")
                    if taint is not None:
                        self.report(
                            "REP401", info.path, arg,
                            f"lambda submitted to .{call.func.attr}() "  # type: ignore[union-attr]
                            f"captures {name!r}, a seeded RNG (created in "
                            f"{taint.origin}:{taint.line}); pass the seed and "
                            "construct the RNG inside the worker",
                        )
                continue
            taint = _taint_origin(analysis.taint_of(arg), "rng")
            if taint is not None:
                self.report(
                    "REP401", info.path, arg,
                    f"seeded RNG (created in {taint.origin}:{taint.line}) "
                    f"passed to .{call.func.attr}(); RNG objects must not "  # type: ignore[union-attr]
                    "cross the pool boundary — ship the seed instead",
                )


@register_project(REP402)
class HashOrderTaintChecker(ProjectChecker):
    """Cross-boundary set values must be sorted before decision-path loops.

    The per-file REP004 sees sets born in the same function and the
    configured set-typed attributes.  This rule follows the taint through
    returns, parameters, and inferred set-typed attributes, and only
    reports sinks REP004 provably cannot (``crossed`` taint), so the two
    rules never double-fire on one line.
    """

    def run(self) -> List[Finding]:
        df = self.project.dataflow
        config = self.project.config
        decision_packages = tuple(
            sorted(set(config.sim_packages) | set(config.engine_packages))
        )
        for info in self._modules():
            if not self._in_packages(info.path, decision_packages):
                continue
            analyses = [
                a for a in (
                    df.module_analysis(info.module),
                    *(df.analysis_for(fi.key) for fi in self._functions(info)),
                )
                if a is not None
            ]
            for analysis in analyses:
                root = analysis.fi.node if analysis.fi else info.tree
                self._check_sinks(info, analysis, root)
        return self.findings

    def _check_sinks(
        self, info: ModuleInfo, analysis: FunctionAnalysis, root: ast.AST
    ) -> None:
        for node in ast.walk(root):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_iter(info, analysis, node.iter, node)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    self._check_iter(info, analysis, gen.iter, gen.iter)

    def _check_iter(
        self,
        info: ModuleInfo,
        analysis: FunctionAnalysis,
        iter_node: ast.expr,
        site: ast.AST,
    ) -> None:
        taints = [
            t for t in analysis.taint_of(iter_node)
            if t.kind == "set" and t.crossed
        ]
        if not taints or self._rep004_territory(iter_node):
            return
        taint = sorted(taints, key=lambda t: t.sort_key)[0]
        self.report(
            "REP402", info.path, site,
            f"iterating a set built in {taint.origin}:{taint.line} after it "
            "crossed a function boundary; hash order is per-interpreter — "
            "wrap the producer or this loop in sorted(..., key=repr)",
        )

    def _rep004_territory(self, iter_node: ast.expr) -> bool:
        """Sinks the per-file REP004 already flags (avoid double reports)."""
        if _expr_is_set(iter_node):
            return True
        configured = self.project.config.set_attributes
        if isinstance(iter_node, ast.Attribute):
            return iter_node.attr in configured
        if isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Attribute
        ):
            return iter_node.func.attr in configured
        return False


@register_project(REP403)
class ShmLifecycleChecker(ProjectChecker):
    """SharedMemory creators must finish (or document handing off) the
    lifecycle.

    REP204 trusts ``repro/runtime/shm.py`` wholesale and demands
    ``try/finally`` elsewhere.  This rule audits *every* creating function,
    including the home module: either the creator provably reaches both
    ``.close()`` and ``.unlink()`` (directly or via a callee that does it
    to the passed handle), or its docstring documents the ownership
    transfer (mentions owner/ownership/lifecycle/transfer).
    """

    def run(self) -> List[Finding]:
        df = self.project.dataflow
        for info in self._modules():
            for fi in self._functions(info):
                analysis = df.analysis_for(fi.key)
                if analysis is None or not analysis.shm_events:
                    continue
                if owner_documented(fi):
                    continue
                for event in analysis.shm_events:
                    if event.closed and event.unlinked:
                        continue
                    missing = " and ".join(
                        op for op, done in (("close()", event.closed),
                                            ("unlink()", event.unlinked))
                        if not done
                    )
                    detail = (
                        "the handle escapes this function"
                        if event.escapes else "the handle never reaches them"
                    )
                    self.report(
                        "REP403", info.path, _at(event.line),
                        f"SharedMemory created in {fi.dotted} without "
                        f"{missing} here ({detail}); finish the lifecycle "
                        "locally or document the owner transfer in the "
                        "docstring",
                    )
        return self.findings


@register_project(REP404)
class PluginStateChecker(ProjectChecker):
    """Registry-registered plugins must not mutate shared module state.

    Plugins registered through a ``register*`` entry point run wherever the
    registry is consulted — including freshly spawned worker interpreters.
    Module-level mutable state written by a plugin is therefore
    per-process: the coordinator sees one value, every worker another, and
    nothing ever crashes to tell you.
    """

    def run(self) -> List[Finding]:
        for module, qualname in self.project.graph.registered_targets():
            info = self.project.index.module_for(module)
            if info is None or info.is_test:
                continue
            if qualname in info.classes:
                members = [
                    info.classes[qualname].methods[m]
                    for m in sorted(info.classes[qualname].methods)
                ]
            elif qualname in info.functions:
                members = [info.functions[qualname]]
            else:
                continue
            for fi in members:
                self._check_member(info, qualname, fi)
        return self.findings

    def _check_member(
        self, info: ModuleInfo, plugin: str, fi: FunctionInfo
    ) -> None:
        analysis = self.project.dataflow.analysis_for(fi.key)
        if analysis is not None:
            for name, line, _taints in analysis.global_writes:
                self.report(
                    "REP404", info.path, _at(line),
                    f"registered plugin {plugin!r} rebinds module global "
                    f"{name!r} in {fi.qualname}; plugin state must live on "
                    "the instance (or flow through return values)",
                )
        local_names = set(fi.param_names()) | _assigned_names(fi.node)
        for node in ast.walk(fi.node):
            name = self._module_mutation(info, node, local_names)
            if name is not None:
                self.report(
                    "REP404", info.path, node,
                    f"registered plugin {plugin!r} mutates module-level "
                    f"{name!r} in {fi.qualname}; workers re-import the "
                    "module, so each process sees a different value",
                )

    def _module_mutation(
        self, info: ModuleInfo, node: ast.AST, local_names: set
    ) -> Optional[str]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and isinstance(node.func.value, ast.Name)
        ):
            name = node.func.value.id
            if name in info.module_assigns and name not in local_names:
                return name
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                ):
                    name = target.value.id
                    if name in info.module_assigns and name not in local_names:
                        return name
        return None


# -- small shared helpers ----------------------------------------------------


class _at:
    """A minimal node-like carrying just a location, for report()."""

    def __init__(self, lineno: int, col_offset: int = 0):
        self.lineno = lineno
        self.col_offset = col_offset


def _free_names(lam: ast.Lambda) -> set:
    """Names a lambda reads but does not bind (its captures)."""
    bound = {a.arg for a in (
        lam.args.posonlyargs + lam.args.args + lam.args.kwonlyargs
    )}
    if lam.args.vararg:
        bound.add(lam.args.vararg.arg)
    if lam.args.kwarg:
        bound.add(lam.args.kwarg.arg)
    return {
        node.id for node in ast.walk(lam.body)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        and node.id not in bound
    }


def _assigned_names(func: ast.AST) -> set:
    names = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names
