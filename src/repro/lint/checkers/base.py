"""Shared checker machinery: import resolution, name dotting, scope stack.

Every checker is an :class:`ast.NodeVisitor` over one module.  The runner
annotates each node with a ``.parent`` backlink before visiting, and
:class:`Checker` pre-computes the module's import alias table so rules can
match *resolved* dotted names (``np.random.seed`` and
``from numpy.random import seed`` both resolve to ``numpy.random.seed``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..config import LintConfig
from ..findings import Finding

__all__ = ["Checker", "ModuleContext", "annotate_parents", "dotted_parts"]


def annotate_parents(tree: ast.AST) -> None:
    """Attach a ``.parent`` backlink to every node (root gets ``None``)."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class ModuleContext:
    """Everything a checker needs to know about the module under lint.

    ``facts`` carries the cross-module :class:`ProjectFacts` when the
    module is linted as part of a full ``lint_paths`` run; single-module
    entry points (``lint_source``) leave it ``None`` and the per-file rules
    degrade to their local knowledge.
    """

    def __init__(self, path: str, source: str, tree: ast.Module,
                 config: LintConfig, facts: Optional[object] = None):
        self.path = path  # forward-slash relative path
        self.source = source
        self.tree = tree
        self.config = config
        self.facts = facts
        self.lines = source.splitlines()
        self.in_sim_package = self._in_packages(config.sim_packages)
        self.in_engine_package = self._in_packages(config.engine_packages)
        self.module_name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        self.is_entry_module = self.module_name in config.entry_points

    def _in_packages(self, packages: Tuple[str, ...]) -> bool:
        haystack = "/" + self.path.strip("/") + "/"
        return any(f"/{pkg.strip('/')}/" in haystack for pkg in packages)

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Checker(ast.NodeVisitor):
    """Base class for all rule checkers.

    Subclasses call :meth:`report` with a rule id, the offending node, and a
    message.  ``self.ctx`` carries the module context; ``self.imports`` maps
    local alias -> dotted origin for both ``import x [as y]`` and
    ``from m import n [as y]`` forms.
    """

    def __init__(self, ctx: ModuleContext, active_rules: Tuple[str, ...]):
        self.ctx = ctx
        self.active = frozenset(active_rules)
        self.findings: List[Finding] = []
        self.imports: Dict[str, str] = self._collect_imports(ctx.tree)
        self.imports.update(self._collect_relative_imports(ctx))
        self._func_stack: List[ast.AST] = []

    # -- reporting ----------------------------------------------------------

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self.active:
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    # -- imports / name resolution -----------------------------------------

    @staticmethod
    def _collect_imports(tree: ast.Module) -> Dict[str, str]:
        table: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname is None and "." in alias.name:
                        # ``import numpy.random`` binds ``numpy``.
                        table[alias.name.split(".")[0]] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # resolved separately, against the path
                    continue
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = f"{module}.{alias.name}"
        return table

    @staticmethod
    def _collect_relative_imports(ctx: ModuleContext) -> Dict[str, str]:
        """alias -> dotted origin for ``from . import x`` style imports.

        Resolution anchors on the module's own dotted name (derived from
        its path), with the same arithmetic :mod:`repro.lint.project` uses —
        so names resolved here line up with the project-facts keys.
        """
        from ..project import module_name_for

        parts = module_name_for(ctx.path).split(".")
        table: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or not node.level:
                continue
            if node.level >= len(parts) + 1:
                continue  # escapes the visible tree; leave unresolved
            base = parts[: len(parts) - node.level]
            if node.module:
                base = base + node.module.split(".")
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = ".".join(
                    base + [alias.name]
                )
        return table

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolved dotted name of a Name/Attribute chain, or None.

        The chain head is expanded through the import table, so with
        ``import numpy as np`` the expression ``np.random.seed`` resolves to
        ``numpy.random.seed``.
        """
        parts = dotted_parts(node)
        if not parts:
            return None
        head = self.imports.get(parts[0])
        if head is not None:
            parts = head.split(".") + parts[1:]
        return ".".join(parts)

    def call_name(self, call: ast.Call) -> Optional[str]:
        return self.resolve(call.func)

    # -- scope helpers ------------------------------------------------------

    def _walk_function(self, node: ast.AST) -> None:
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _walk_function
    visit_AsyncFunctionDef = _walk_function
    visit_Lambda = _walk_function

    @property
    def current_function(self) -> Optional[ast.AST]:
        return self._func_stack[-1] if self._func_stack else None

    def enclosing_functions(self) -> Iterator[ast.AST]:
        return reversed(self._func_stack)

    def in_entry_point(self, node: ast.AST) -> bool:
        """True inside ``main()``, an entry module, or an
        ``if __name__ == "__main__":`` block."""
        if self.ctx.is_entry_module:
            return True
        for func in self._func_stack:
            name = getattr(func, "name", "")
            if name in self.ctx.config.entry_points:
                return True
        parent = getattr(node, "parent", None)
        while parent is not None:
            if isinstance(parent, ast.If) and _is_name_main_test(parent.test):
                return True
            parent = getattr(parent, "parent", None)
        return False


def _is_name_main_test(test: ast.AST) -> bool:
    if not isinstance(test, ast.Compare):
        return False
    names = [test.left, *test.comparators]
    has_dunder = any(
        isinstance(n, ast.Name) and n.id == "__name__" for n in names
    )
    has_main = any(
        isinstance(n, ast.Constant) and n.value == "__main__" for n in names
    )
    return has_dunder and has_main
