"""Built-in checkers; importing this package populates the registry."""

from . import (  # noqa: F401
    des,
    determinism,
    hygiene,
    interprocedural,
    pickle_safety,
    scale,
)
from .base import Checker, ModuleContext, annotate_parents

__all__ = ["Checker", "ModuleContext", "annotate_parents"]
