"""Built-in checkers; importing this package populates the registry."""

from . import des, determinism, hygiene, pickle_safety, scale  # noqa: F401
from .base import Checker, ModuleContext, annotate_parents

__all__ = ["Checker", "ModuleContext", "annotate_parents"]
