"""REP2xx — process-pool / pickle safety.

``ExperimentRunner.run_many`` ships its worker function and configs to a
``ProcessPoolExecutor`` by pickling.  Lambdas, nested functions, and
locally-defined classes are unpicklable; they fail only when ``--jobs > 1``,
which is exactly how a "works on my laptop, dies in CI" sweep is born.
Module-global rebinding from function bodies is the second trap: workers
mutate their *copy* of the module, the coordinator never sees it, and
serial and parallel runs silently diverge.

Raw ``multiprocessing.shared_memory`` use is the third: a segment that is
closed but never unlinked outlives the run in ``/dev/shm`` until reboot.
The zero-copy transport (:mod:`repro.runtime.shm`) owns segment lifecycle
— creation, decode-side unlink, orphan sweeping — so any ``SharedMemory``
construction outside it must at least guarantee its own cleanup.
"""

from __future__ import annotations

import ast
from typing import Dict, Set

from ..registry import Rule, register
from .base import Checker

__all__ = ["PoolDispatchChecker", "GlobalMutationChecker", "SharedMemoryChecker"]

REP201 = Rule(
    "REP201",
    "picklable-pool-callables",
    "work dispatched through run_many()/submit() must be module-level and "
    "picklable: no lambdas, nested functions, or local classes",
)
REP202 = Rule(
    "REP202",
    "no-global-rebinding",
    "rebinding module-level state from a function body diverges between "
    "pool workers and the coordinator; thread state explicitly",
)
REP204 = Rule(
    "REP204",
    "shm-lifecycle-confinement",
    "raw SharedMemory segments belong to repro.runtime.shm (which owns "
    "close/unlink/orphan-sweep); elsewhere they must sit in a try/finally "
    "that both close()s and unlink()s the segment",
)

#: Callable attributes that dispatch work to a process pool.
_DISPATCH_NAMES = {"run_many", "submit", "map", "imap", "imap_unordered"}


@register(REP201)
class PoolDispatchChecker(Checker):
    """First argument of a pool-dispatch call must be picklable."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._module_defs: Set[str] = {
            n.name
            for n in self.ctx.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }
        self._local_defs: Dict[str, str] = self._collect_local_defs()

    def _collect_local_defs(self) -> Dict[str, str]:
        """name -> kind for defs nested inside functions (unpicklable)."""
        local: Dict[str, str] = {}
        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for child in ast.walk(node):
                if child is node:
                    continue
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local[child.name] = "nested function"
                elif isinstance(child, ast.ClassDef):
                    local[child.name] = "locally-defined class"
        return local

    def _is_dispatch(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr in ("run_many", "submit")
        if isinstance(func, ast.Name):
            return func.id == "run_many"
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_dispatch(node) and node.args:
            fn = node.args[0]
            if isinstance(fn, ast.Lambda):
                self.report(
                    "REP201", fn,
                    "lambda dispatched to a process pool cannot be pickled; "
                    "hoist it to a module-level function",
                )
            elif isinstance(fn, ast.Name):
                kind = self._local_defs.get(fn.id)
                if kind is not None and fn.id not in self._module_defs:
                    self.report(
                        "REP201", fn,
                        f"{kind} {fn.id!r} dispatched to a process pool "
                        "cannot be pickled; hoist it to module level",
                    )
        self.generic_visit(node)


@register(REP202)
class GlobalMutationChecker(Checker):
    """``global X`` followed by assignment inside sim/runtime code."""

    def _applies(self) -> bool:
        return self.ctx.in_sim_package or self.ctx.in_engine_package

    def visit_Global(self, node: ast.Global) -> None:
        if self._applies():
            func = self.current_function
            assigned = _names_assigned(func) if func is not None else set()
            for name in node.names:
                if name in assigned:
                    self.report(
                        "REP202", node,
                        f"function rebinds module-level {name!r}; pool "
                        "workers mutate a private copy, so serial and "
                        "parallel runs diverge — pass state explicitly",
                    )
        self.generic_visit(node)


#: The one module allowed to construct raw segments: it owns the lifecycle.
_SHM_HOME = "repro/runtime/shm.py"

#: Names a SharedMemory construction resolves to (imported or lazily bound).
_SHM_NAMES = {
    "SharedMemory",
    "multiprocessing.shared_memory.SharedMemory",
    "shared_memory.SharedMemory",
}


@register(REP204)
class SharedMemoryChecker(Checker):
    """``SharedMemory(...)`` outside the transport needs guaranteed cleanup.

    A created-but-never-unlinked segment persists in ``/dev/shm`` after the
    process dies; a closed-but-not-unlinked one does too.  The transport
    module guarantees both (decode-side unlink plus run-id orphan sweeps),
    so construction there is exempt.  Anywhere else the call must be
    lexically inside a ``try`` whose ``finally`` calls both ``.close()``
    and ``.unlink()``.
    """

    def visit_Call(self, node: ast.Call) -> None:
        name = self.call_name(node)
        if (
            name in _SHM_NAMES
            and not self.ctx.path.endswith(_SHM_HOME)
            and not _cleanup_guaranteed(node)
        ):
            self.report(
                "REP204", node,
                "SharedMemory segment created outside repro.runtime.shm "
                "without a try/finally that close()s and unlink()s it; "
                "route the payload through SharedResultTransport or add "
                "guaranteed cleanup",
            )
        self.generic_visit(node)


def _cleanup_guaranteed(node: ast.Call) -> bool:
    """True when a ``finally`` that closes *and* unlinks covers the call.

    The covering ``try`` either encloses the call or opens on a later line
    of the same function (the usual ``seg = SharedMemory(...)`` /
    ``try: ... finally: seg.close(); seg.unlink()`` idiom).
    """
    scope: ast.AST = node
    parent = getattr(node, "parent", None)
    while parent is not None:
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = parent
            break
        scope = parent
        parent = getattr(parent, "parent", None)
    for sub in ast.walk(scope):
        if not (isinstance(sub, ast.Try) and sub.finalbody):
            continue
        if not (_encloses(sub, node) or sub.lineno >= node.lineno):
            continue  # a try entirely before the call can't cover it
        seen: Set[str] = set()
        for stmt in sub.finalbody:
            for call in ast.walk(stmt):
                if isinstance(call, ast.Call) and isinstance(
                    call.func, ast.Attribute
                ):
                    seen.add(call.func.attr)
        if "close" in seen and "unlink" in seen:
            return True
    return False


def _encloses(outer: ast.AST, inner: ast.AST) -> bool:
    parent = getattr(inner, "parent", None)
    while parent is not None:
        if parent is outer:
            return True
        parent = getattr(parent, "parent", None)
    return False


def _names_assigned(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
    return names
