"""REP1xx — the discrete-event process protocol.

``Environment.process()`` consumes a *generator object*; handing it a plain
function, a lambda, or a generator *function* (uncalled) fails at runtime —
sometimes silently late in a long sweep.  Inside a process body the only
things that may be yielded are Event-typed expressions: ``yield 5`` parks
the process forever (the engine schedules nothing for it), and
``time.sleep`` blocks the whole simulation instead of advancing sim time.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from ..registry import Rule, register
from .base import Checker, dotted_parts

__all__ = ["ProcessArgumentChecker", "ProcessBodyChecker"]

REP101 = Rule(
    "REP101",
    "process-takes-generator",
    "env.process(...) must receive a generator object: call a generator "
    "function, never pass a lambda, a plain function, or an uncalled one",
)
REP102 = Rule(
    "REP102",
    "yield-events-only",
    "a DES process may only yield Event-typed expressions "
    "(env.timeout(...), env.event(), ...); a constant parks it forever",
)
REP103 = Rule(
    "REP103",
    "no-blocking-sleep",
    "time.sleep() blocks the host thread; advance simulation time with "
    "yield env.timeout(delay) instead",
)

#: Environment methods whose result is an Event (safe to yield).
_EVENT_FACTORIES = {"timeout", "event", "process", "all_of", "any_of"}


def _is_generator_def(func: ast.AST) -> bool:
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for node in ast.walk(func):
        if node is not func and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # nested defs own their yields (coarse but safe)
        if isinstance(node, (ast.Yield, ast.YieldFrom)) and _owner(node) is func:
            return True
    return False


def _owner(node: ast.AST) -> Optional[ast.AST]:
    """The function whose frame a yield executes in."""
    parent = getattr(node, "parent", None)
    while parent is not None:
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return parent
        parent = getattr(parent, "parent", None)
    return None


def _is_env_process_call(node: ast.Call) -> bool:
    """Matches ``env.process(...)`` / ``self.env.process(...)`` /
    ``Process(env, gen)`` — the spellings used by this engine."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "process":
        parts = dotted_parts(func.value)
        return bool(parts) and parts[-1] == "env"
    if isinstance(func, ast.Name) and func.id == "Process":
        return True
    parts = dotted_parts(func)
    return bool(parts) and parts[-1] == "Process" and len(parts) > 1


class _ModuleFunctions(ast.NodeVisitor):
    """Symbol table: function/method name -> def node (last wins)."""

    def __init__(self) -> None:
        self.defs: Dict[str, ast.AST] = {}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.defs[node.name] = node
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


@register(REP101)
class ProcessArgumentChecker(Checker):
    """The argument handed to ``env.process()`` must be a generator object."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        table = _ModuleFunctions()
        table.visit(self.ctx.tree)
        self._defs = table.defs

    def _lookup(self, node: ast.AST) -> Optional[ast.AST]:
        """Resolve a Name or self.method / cls.method to a same-module def."""
        if isinstance(node, ast.Name):
            return self._defs.get(node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in ("self", "cls"):
                return self._defs.get(node.attr)
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if _is_env_process_call(node) and node.args:
            # ``Process(env, gen)`` carries the generator second.
            arg = node.args[-1]
            if isinstance(arg, ast.Lambda):
                self.report(
                    "REP101", arg,
                    "lambda passed to env.process(); lambdas cannot be "
                    "generator functions — define a def with yield",
                )
            elif isinstance(arg, (ast.Name, ast.Attribute)):
                target = self._lookup(arg)
                if target is not None:
                    self.report(
                        "REP101", arg,
                        f"env.process() received the function "
                        f"{getattr(target, 'name', '?')!r} itself; call it "
                        "(env.process(fn(...))) to obtain a generator",
                    )
            elif isinstance(arg, ast.Call):
                target = self._lookup(arg.func)
                if target is not None and not _is_generator_def(target):
                    self.report(
                        "REP101", arg,
                        f"env.process() received a call to "
                        f"{getattr(target, 'name', '?')!r}, which contains no "
                        "yield and therefore returns no generator",
                    )
                elif target is None:
                    self._check_cross_module(arg)
        self.generic_visit(node)

    def _check_cross_module(self, arg: ast.Call) -> None:
        """Project facts extend the check across module boundaries.

        Without facts (single-file lint) imported callables stay trusted,
        as before; with them, a call to a function the project index proves
        is yield-free is flagged exactly like a same-module one.
        """
        facts = self.ctx.facts
        if facts is None:
            return
        dotted = self.resolve(arg.func)
        if dotted is None:
            return
        if facts.kind_of(dotted) == "function":
            self.report(
                "REP101", arg,
                f"env.process() received a call to {dotted!r}, which the "
                "project index shows contains no yield and therefore "
                "returns no generator",
            )


@register(REP102, REP103)
class ProcessBodyChecker(Checker):
    """Yield discipline (REP102) and no blocking sleeps (REP103).

    A function is treated as a DES process body when it is a generator that
    either (a) is passed to ``env.process()`` somewhere in the module, or
    (b) itself yields at least one recognizable Event factory call —
    data-producing generators (trace replay, arrival streams) are left
    alone.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._process_defs = self._find_process_defs()

    def _find_process_defs(self) -> Set[ast.AST]:
        process_like: Set[ast.AST] = set()
        table = _ModuleFunctions()
        table.visit(self.ctx.tree)

        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Call) and _is_env_process_call(node):
                for arg in node.args:
                    target = None
                    if isinstance(arg, ast.Call):
                        if isinstance(arg.func, ast.Name):
                            target = table.defs.get(arg.func.id)
                        elif (
                            isinstance(arg.func, ast.Attribute)
                            and isinstance(arg.func.value, ast.Name)
                            and arg.func.value.id in ("self", "cls")
                        ):
                            target = table.defs.get(arg.func.attr)
                    if target is not None and _is_generator_def(target):
                        process_like.add(target)

        for func in table.defs.values():
            if not _is_generator_def(func):
                continue
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Yield)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr in _EVENT_FACTORIES
                    and _owner(node) is func
                ):
                    process_like.add(func)
                    break
        return process_like

    def _in_process_def(self) -> bool:
        return any(f in self._process_defs for f in self._func_stack)

    def visit_Yield(self, node: ast.Yield) -> None:
        if self.ctx.in_sim_package and self.current_function in self._process_defs:
            value = node.value
            if value is None or isinstance(
                value, (ast.Constant, ast.JoinedStr, ast.List, ast.Dict, ast.Set)
            ):
                shown = ast.dump(value)[:40] if value is not None else "nothing"
                self.report(
                    "REP102", node,
                    "DES process yields a plain value "
                    f"({shown}); only Event-typed expressions such as "
                    "env.timeout(delay) resume a process",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.in_sim_package:
            name = self.call_name(node)
            if name in ("time.sleep", "asyncio.sleep"):
                where = (
                    "inside a DES process body"
                    if self._in_process_def()
                    else "inside a simulation package"
                )
                self.report(
                    "REP103", node,
                    f"{name}() {where} blocks wall-clock time; use "
                    "yield env.timeout(delay)",
                )
        self.generic_visit(node)
