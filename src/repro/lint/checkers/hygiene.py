"""REP3xx — simulation hygiene.

Sim clocks are floats accumulated through ``env.timeout`` arithmetic;
``==``/``!=`` between two clock expressions is a latent heisenbug the
moment a delay stops being exactly representable.  Bare ``except:`` in
engine/runtime code swallows ``KeyboardInterrupt``/``SystemExit`` and the
engine's own control-flow exceptions, turning crashes into silent
corruption.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..registry import Rule, register
from .base import Checker, dotted_parts

__all__ = [
    "ClockComparisonChecker",
    "BareExceptChecker",
    "LibraryPrintChecker",
    "SpeedupsImportChecker",
]

REP301 = Rule(
    "REP301",
    "no-float-clock-equality",
    "==/!= between float sim-clock expressions; compare with a tolerance "
    "or restructure around event ordering",
)
REP302 = Rule(
    "REP302",
    "no-bare-except",
    "bare except: in engine/runtime code swallows control-flow exceptions; "
    "catch Exception (or something narrower)",
)
REP303 = Rule(
    "REP303",
    "no-print-in-library",
    "bare print() in library code bypasses the observability layer; emit a "
    "trace record or metric (repro.obs), or return the text to the caller",
)
REP305 = Rule(
    "REP305",
    "no-direct-speedups-import",
    "importing repro.des._speedups directly bypasses the core-selection "
    "seam (availability probing, tracer/recycling fallback); construct "
    "environments through repro.des.engine.make_environment()",
)

#: Module basenames allowed to print: the CLI surface.
_PRINT_EXEMPT_MODULES = frozenset({"cli", "__main__"})

#: Name fragments identifying a sim-clock-valued expression.
_CLOCK_NAMES = {"now", "_now", "clock", "sim_time", "t_now"}
_CLOCK_SUFFIXES = ("_time", "_clock")


def _clock_like(node: ast.AST) -> Optional[str]:
    """The clock-ish dotted name in ``node``, or None."""
    if isinstance(node, ast.Call):
        # env.peek() returns the next event's timestamp.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "peek":
            return "peek()"
        return None
    parts = dotted_parts(node)
    if not parts:
        return None
    leaf = parts[-1]
    if leaf in _CLOCK_NAMES or leaf.endswith(_CLOCK_SUFFIXES):
        return ".".join(parts)
    return None


def _inside_assert(node: ast.AST) -> bool:
    parent = getattr(node, "parent", None)
    while parent is not None:
        if isinstance(parent, ast.Assert):
            return True
        parent = getattr(parent, "parent", None)
    return False


@register(REP301)
class ClockComparisonChecker(Checker):
    """Equality comparison where either operand is sim-clock-valued.

    ``assert`` statements are exempt: tests pinning an *exact* expected
    clock (all engine timestamps are sums the test controls) are stating
    intent, not branching simulation behaviour on float identity.
    """

    def visit_Compare(self, node: ast.Compare) -> None:
        if not _inside_assert(node):
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                name = _clock_like(left) or _clock_like(right)
                if name is not None:
                    self.report(
                        "REP301", node,
                        f"float sim-clock expression {name!r} compared with "
                        "==/!=; clock values are accumulated floats — "
                        "use a tolerance or event ordering",
                    )
                    break
        self.generic_visit(node)


@register(REP302)
class BareExceptChecker(Checker):
    """Bare ``except:`` is banned in engine/runtime packages."""

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None and self.ctx.in_engine_package:
            self.report(
                "REP302", node,
                "bare except: swallows StopProcess/KeyboardInterrupt in "
                "engine code; catch Exception or narrower",
            )
        self.generic_visit(node)


@register(REP303)
class LibraryPrintChecker(Checker):
    """``print()`` is banned in ``repro`` library code.

    CLI modules (``cli.py``, ``__main__.py``), entry-point functions, and
    ``if __name__ == "__main__":`` blocks are exempt — those *are* the
    user-facing output surface.  Everything else should route output
    through the observability layer or return strings to its caller.
    """

    def _in_library(self) -> bool:
        haystack = "/" + self.ctx.path.strip("/") + "/"
        if "/repro/" not in haystack or "/tests/" in haystack:
            return False
        return self.ctx.module_name not in _PRINT_EXEMPT_MODULES

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._in_library()
            and self.call_name(node) == "print"
            and not self.in_entry_point(node)
        ):
            self.report(
                "REP303", node,
                "print() in library code; emit via repro.obs (trace/metric) "
                "or return the text to the caller",
            )
        self.generic_visit(node)


@register(REP305)
class SpeedupsImportChecker(Checker):
    """Direct imports of the compiled DES extension are banned.

    ``repro.des._speedups`` is an *optional* accelerator; the only place
    allowed to touch it is the selection seam in ``repro/des/`` (which
    probes availability and falls back to the pure kernel when tracing or
    recycling is on).  Library code importing it directly would crash on
    pure-only installs and skip the fallback rules.  Tests and tools are
    exempt — they exercise the extension on purpose.
    """

    _MESSAGE = (
        "direct import of the compiled DES core; environments must come "
        "from repro.des.engine.make_environment() so availability and "
        "tracing/recycling fallbacks apply"
    )

    def _in_scope(self) -> bool:
        haystack = "/" + self.ctx.path.strip("/") + "/"
        if "/repro/" not in haystack or "/tests/" in haystack:
            return False
        return "/repro/des/" not in haystack

    def visit_Import(self, node: ast.Import) -> None:
        if self._in_scope():
            for alias in node.names:
                if alias.name.split(".")[-1] == "_speedups":
                    self.report("REP305", node, self._MESSAGE)
                    break
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._in_scope():
            module_leaf = (node.module or "").split(".")[-1]
            if module_leaf == "_speedups" or any(
                alias.name == "_speedups" for alias in node.names
            ):
                self.report("REP305", node, self._MESSAGE)
        self.generic_visit(node)
