"""REP005 — population-scan discipline.

The campus-scale rework made the manager's maintenance cost track
*activity* (dirty cells, connected occupants) instead of *population*.
That property dies quietly: one innocent ``for p in manager.portables``
in a periodic path and a 10^6-portable campus is back to O(population)
per tick.  This rule flags iteration over the manager-wide portable and
cell tables in library code; sanctioned cold paths (construction,
teardown, the explicit full-scan fallback) carry a per-line
``# repro-lint: ignore[REP005]``.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..registry import Rule, register
from .base import Checker, dotted_parts

__all__ = ["PopulationScanChecker"]

REP005 = Rule(
    "REP005",
    "no-population-scans",
    "iteration over a manager-wide portable/cell table in library code; "
    "hot paths must read the per-cell indexes (connected occupancy, dirty "
    "set) so per-tick cost tracks activity, not population",
)

#: Attribute leaves naming the global portable table.
_POPULATION_ATTRS = frozenset({"portables", "_portables"})
#: Attribute leaves naming the full cell table — only population-sized when
#: hanging off a resource manager (floorplans legitimately enumerate cells).
_CELL_TABLE_ATTRS = frozenset({"cells", "_cells"})
_MANAGER_HINTS = ("manager", "mgr")
#: Dict views whose iteration is iteration over the dict itself.
_DICT_VIEWS = frozenset({"keys", "values", "items"})


@register(REP005)
class PopulationScanChecker(Checker):
    """Flags ``for``/comprehension iteration over population-sized tables.

    Detection: the iterable (optionally wrapped in ``.keys()`` /
    ``.values()`` / ``.items()``) is an attribute chain ending in
    ``portables``/``_portables``, or in ``cells``/``_cells`` when some
    owner segment of the chain mentions a manager.  ``sorted()`` /
    ``list()`` / ``tuple()`` wrappers are seen through — they fix
    iteration *order*, not iteration *cost* — so cold paths must
    suppress per line instead.
    """

    def _in_library(self) -> bool:
        haystack = "/" + self.ctx.path.strip("/") + "/"
        return "/repro/" in haystack and "/tests/" not in haystack

    def _scan_source(self, node: ast.AST) -> Optional[str]:
        """The population-sized table ``node`` iterates, or None."""
        # sorted(X)/list(X)/tuple(X) still scan X before yielding it.
        while (
            isinstance(node, ast.Call)
            and self.call_name(node) in ("sorted", "list", "tuple")
            and node.args
        ):
            node = node.args[0]
        suffix = ""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
            and not node.args
            and not node.keywords
        ):
            suffix = f".{node.func.attr}()"
            node = node.func.value
        parts = dotted_parts(node)
        if parts is None or len(parts) < 2:
            return None
        leaf = parts[-1]
        owners = [p.lower() for p in parts[:-1]]
        if leaf in _POPULATION_ATTRS:
            return ".".join(parts) + suffix
        if leaf in _CELL_TABLE_ATTRS and any(
            hint in owner for owner in owners for hint in _MANAGER_HINTS
        ):
            return ".".join(parts) + suffix
        return None

    def _check_iter(self, iter_node: ast.AST, site: ast.AST) -> None:
        if not self._in_library():
            return
        name = self._scan_source(iter_node)
        if name is not None:
            self.report(
                "REP005", site,
                f"iterating {name!r} scans the whole population; use the "
                "per-cell indexes (connected occupancy, dirty set) or mark "
                "a sanctioned cold path with repro-lint: ignore[REP005]",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter, node)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(gen.iter, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp
