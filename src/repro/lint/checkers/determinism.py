"""REP0xx — seeded-RNG discipline and hash-order determinism.

The paper's per-seed reproducibility (and PR 1's serial == parallel
bit-identity contract) dies the moment simulation behaviour reads from the
process-global RNG, the wall clock, or hash-randomized ``set`` iteration
order.  These rules pin all randomness to explicitly seeded generator
objects and all set-to-sequence conversions to ``sorted(...)``.

REP304 rides along here (it shares the wall-clock call tables and the
scope heuristic): engine/observability code may *record* wall-clock
stamps but must never compute durations from them.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from ..registry import Rule, register
from .base import Checker

__all__ = [
    "GlobalRandomChecker",
    "WallClockChecker",
    "SetIterationChecker",
    "WallClockDurationChecker",
]

REP001 = Rule(
    "REP001",
    "no-global-random",
    "call into the process-global (or OS-entropy) RNG; use an explicitly "
    "seeded random.Random(seed) / numpy default_rng(seed) instance",
)
REP002 = Rule(
    "REP002",
    "seed-only-in-entry-points",
    "random.seed()/numpy.random.seed() outside an entry point re-seeds "
    "shared state mid-run and breaks per-seed reproducibility",
)
REP003 = Rule(
    "REP003",
    "no-wall-clock-in-sim",
    "wall-clock/OS-entropy read inside a simulation package; simulation "
    "time is env.now, never the host clock",
)
REP004 = Rule(
    "REP004",
    "no-set-iteration-in-sim",
    "iteration over a set feeds simulation decisions in hash-randomized "
    "order; wrap in sorted(..., key=repr)",
)
REP304 = Rule(
    "REP304",
    "no-wallclock-durations",
    "wall-clock stamp used in duration arithmetic in engine/observability "
    "code; wall clocks jump (NTP, suspend) — measure elapsed time with "
    "time.monotonic()/time.perf_counter()",
)

#: random-module functions that read/advance the global Mersenne state.
_GLOBAL_RANDOM_HEADS = ("random.", "numpy.random.")
#: Attributes of the random modules that are *fine* to touch: seeded
#: constructor, state plumbing, and the seeded numpy generator factory.
_RANDOM_SAFE_TAILS = {"Random", "getstate", "setstate", "default_rng"}

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
}

#: Wall-clock *stamp* producers for REP304.  Deliberately excludes the
#: monotonic family (``time.monotonic``/``time.perf_counter``) — those are
#: the fix, not the offence: they cannot jump, so differences between them
#: are honest durations.  Stamping a wall time into a record (heartbeat
#: ``updated_at``, log timestamps) is fine; *subtracting* two wall stamps
#: to measure elapsed time is the bug this rule catches.
_WALLCLOCK_STAMP_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register(REP001, REP002)
class GlobalRandomChecker(Checker):
    """Flags global-RNG calls (REP001) and stray re-seeding (REP002)."""

    def visit_Call(self, node: ast.Call) -> None:
        name = self.call_name(node)
        if name is not None:
            if name in ("random.seed", "numpy.random.seed"):
                if not self.in_entry_point(node):
                    self.report(
                        "REP002", node,
                        f"{name}() outside an entry point: seeding belongs in "
                        "main()/__main__ so every run is seeded exactly once",
                    )
            elif name.startswith(_GLOBAL_RANDOM_HEADS):
                tail = name.rsplit(".", 1)[-1]
                if tail == "SystemRandom":
                    self.report(
                        "REP001", node,
                        "random.SystemRandom draws OS entropy and can never "
                        "be reproduced from a seed",
                    )
                elif tail == "default_rng" and not (node.args or node.keywords):
                    self.report(
                        "REP001", node,
                        "default_rng() without a seed is entropy-seeded; pass "
                        "the experiment seed explicitly",
                    )
                elif tail == "Random" and not (node.args or node.keywords):
                    self.report(
                        "REP001", node,
                        "random.Random() without a seed is entropy-seeded; "
                        "pass the experiment seed explicitly",
                    )
                elif tail not in _RANDOM_SAFE_TAILS:
                    self.report(
                        "REP001", node,
                        f"{name}() uses the process-global RNG; draw from a "
                        "seeded random.Random instance threaded through the "
                        "simulation instead",
                    )
        self.generic_visit(node)


@register(REP003)
class WallClockChecker(Checker):
    """Wall-clock and OS-entropy reads are banned in simulation packages."""

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.in_sim_package:
            name = self.call_name(node)
            if name in _WALL_CLOCK_CALLS:
                self.report(
                    "REP003", node,
                    f"{name}() inside a simulation package; the only clock a "
                    "simulation may read is env.now",
                )
        self.generic_visit(node)


@register(REP004)
class SetIterationChecker(Checker):
    """Iteration over sets in simulation packages must go through sorted().

    Three detection tiers, cheapest first:

    1. syntactically evident sets: literals, ``set()``/``frozenset()`` calls,
       set comprehensions, and set-operator expressions built from them;
    2. local names whose every assignment in the enclosing scope is such an
       expression;
    3. attributes (and zero-to-one-argument method calls) whose name appears
       in the configured ``set-attributes`` list — the project-wide contract
       for ``Cell.neighbors``-style fields typed ``Set[Hashable]``.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._scope_sets: list[Set[str]] = []

    # -- scope bookkeeping: names locally provable to be sets ---------------

    def _walk_function(self, node: ast.AST) -> None:
        self._scope_sets.append(self._set_names(node))
        super()._walk_function(node)
        self._scope_sets.pop()

    visit_FunctionDef = _walk_function
    visit_AsyncFunctionDef = _walk_function
    visit_Lambda = _walk_function

    def visit_Module(self, node: ast.Module) -> None:
        self._scope_sets.append(self._set_names(node))
        self.generic_visit(node)
        self._scope_sets.pop()

    def _set_names(self, scope: ast.AST) -> Set[str]:
        """Names in ``scope`` (not nested scopes) only ever bound to sets."""
        assigned_set: Set[str] = set()
        assigned_other: Set[str] = set()
        for node in ast.walk(scope):
            if node is not scope and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # ast.walk still descends; fine for a heuristic
            targets = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if self._is_set_expr(value):
                    assigned_set.add(target.id)
                else:
                    assigned_other.add(target.id)
        return assigned_set - assigned_other

    def _name_is_local_set(self, name: str) -> bool:
        return any(name in scope for scope in self._scope_sets)

    # -- set expression classification --------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = self.call_name(node)
            if name in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return self._name_is_local_set(node.id)
        return False

    def _flagged_set_source(self, node: ast.AST) -> Optional[str]:
        """Why ``node`` is considered an unordered set, or None."""
        if self._is_set_expr(node):
            return "a set expression"
        if isinstance(node, ast.Attribute):
            if node.attr in self.ctx.config.set_attributes:
                return f"the Set-typed attribute .{node.attr}"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in self.ctx.config.set_attributes:
                return f"the set-returning call .{node.func.attr}()"
        return None

    # -- iteration sites -----------------------------------------------------

    def _check_iter(self, iter_node: ast.AST, site: ast.AST) -> None:
        if not self.ctx.in_sim_package:
            return
        reason = self._flagged_set_source(iter_node)
        if reason is not None:
            self.report(
                "REP004", site,
                f"iterating {reason} in hash-randomized order inside a "
                "simulation decision path; use sorted(..., key=repr)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter, node)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(gen.iter, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


@register(REP304)
class WallClockDurationChecker(Checker):
    """Durations computed from wall-clock stamps in engine/obs code.

    Engine and observability code legitimately *records* wall-clock
    stamps (heartbeat ``updated_at`` fields, run metadata), so unlike
    REP003 this rule does not ban the calls outright.  It flags the
    arithmetic: a subtraction or comparison whose operand is a wall-clock
    stamp — either a direct ``time.time()``-family call, or a local name
    whose every assignment in the enclosing scope is such a call (the
    same scope heuristic :class:`SetIterationChecker` uses for sets).
    Simulation packages are excluded; REP003 already bans the reads
    there wholesale.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._scope_stamps: list[Set[str]] = []
        haystack = "/" + self.ctx.path.strip("/") + "/"
        self._applies = (
            self.ctx.in_engine_package or "/repro/obs/" in haystack
        ) and not self.ctx.in_sim_package

    # -- scope bookkeeping: names locally provable to be wall stamps --------

    def _walk_function(self, node: ast.AST) -> None:
        self._scope_stamps.append(self._stamp_names(node))
        super()._walk_function(node)
        self._scope_stamps.pop()

    visit_FunctionDef = _walk_function
    visit_AsyncFunctionDef = _walk_function
    visit_Lambda = _walk_function

    def visit_Module(self, node: ast.Module) -> None:
        self._scope_stamps.append(self._stamp_names(node))
        self.generic_visit(node)
        self._scope_stamps.pop()

    def _stamp_names(self, scope: ast.AST) -> Set[str]:
        """Names in ``scope`` only ever bound to wall-clock stamp calls."""
        stamped: Set[str] = set()
        other: Set[str] = set()
        for node in ast.walk(scope):
            if node is not scope and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # ast.walk still descends; fine for a heuristic
            targets = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if self._is_stamp_call(value):
                    stamped.add(target.id)
                else:
                    other.add(target.id)
        return stamped - other

    def _is_stamp_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and self.call_name(node) in _WALLCLOCK_STAMP_CALLS
        )

    def _stamp_source(self, node: ast.AST) -> Optional[str]:
        """Why ``node`` is a wall-clock stamp, or None."""
        if self._is_stamp_call(node):
            return f"{self.call_name(node)}()"  # type: ignore[union-attr]
        if isinstance(node, ast.Name) and any(
            node.id in scope for scope in self._scope_stamps
        ):
            return f"'{node.id}' (assigned from a wall-clock stamp)"
        return None

    # -- arithmetic sites ----------------------------------------------------

    def _check_operands(self, site: ast.AST, *operands: ast.AST) -> None:
        for operand in operands:
            reason = self._stamp_source(operand)
            if reason is not None:
                self.report(
                    "REP304", site,
                    f"{reason} in duration arithmetic; wall clocks jump "
                    "(NTP, suspend) — measure elapsed time with "
                    "time.monotonic()/time.perf_counter()",
                )
                return

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self._applies and isinstance(node.op, ast.Sub):
            self._check_operands(node, node.left, node.right)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._applies:
            self._check_operands(node, node.left, *node.comparators)
        self.generic_visit(node)
