"""``repro.lint``: an AST-based simulation-correctness linter.

The reproduction's headline claims (Figures 4-6, Table 2) hold only if every
run is deterministic per seed, and the PR 1 process-pool runtime added a
second contract: parallel sweeps must be bit-identical to serial ones.  Both
are *source-level* invariants that pytest cannot guard — a stray
``random.random()``, a wall-clock read inside the engine, or an unsorted
``set`` iteration feeding an allocation decision silently breaks them.  This
package machine-checks those invariants.

Rule families (see ``docs/LINT.md`` for the full catalogue):

``REP0xx`` determinism
    seeded-RNG discipline, no wall-clock reads in sim code, no iteration
    over hash-ordered sets in simulation decision paths.
``REP1xx`` DES protocol
    callables handed to ``env.process()`` must be generator functions,
    process bodies must yield events (never plain constants) and must not
    block in ``time.sleep``.
``REP2xx`` pickle / process-pool safety
    work dispatched through ``run_many``/``submit`` must be picklable
    (no lambdas or nested callables), no module-global rebinding from
    worker-side code.
``REP3xx`` simulation hygiene
    no ``==``/``!=`` on float sim-clock expressions, no bare ``except:``
    in engine/runtime code.

Usage::

    python -m repro.lint [paths] [--select/--ignore/--baseline/--format]

Per-line suppression::

    risky_line()  # repro-lint: ignore[REP004]
"""

from .config import LintConfig, load_config
from .findings import Finding
from .registry import Rule, all_rules, get_rule, iter_checkers, register
from .runner import lint_paths, lint_source

__all__ = [
    "Finding",
    "LintConfig",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_checkers",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
]
