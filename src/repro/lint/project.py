"""Whole-program index: one parse of every linted module, cross-referenced.

The per-file checkers see one ``ast.Module`` at a time, which is exactly why
a seeded RNG escaping through a helper in another module, or a set built in
``core/`` and iterated in ``sim/``, sails through them.  The
:class:`ProjectIndex` parses every discovered module once and builds the
cross-module facts the inter-procedural layer needs:

* a **symbol table** per module — functions, classes (with their methods),
  and module-level assignments, all addressable by dotted name;
* an **import table** per module that, unlike the per-file checkers',
  resolves *relative* imports against the module's own dotted name
  (``from ..network.multicast import build_neighbor_multicast`` inside
  ``repro.core.backbone`` resolves to
  ``repro.network.multicast.build_neighbor_multicast``);
* the project **import graph** (module -> imported project modules);
* **class attribute types** inferred from ``__init__`` bodies and
  annotations (``self.neighbors: Set[...] = set()`` marks ``neighbors`` as
  set-typed project-wide).

Everything is ordered deterministically (sorted paths, source order inside
a module) so downstream analyses and caches replay bit-identically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "Symbol",
    "module_name_for",
    "is_test_path",
]

#: Directory/file name markers that exclude a module from project analysis:
#: test fixtures deliberately contain violations, and facts inferred from
#: test helpers must never change how ``src/`` is linted.
_TEST_PARTS = {"tests", "test", "conftest.py"}


def is_test_path(path: str) -> bool:
    """True for test modules (excluded from project facts and REP4xx)."""
    parts = path.replace("\\", "/").split("/")
    if any(p in _TEST_PARTS for p in parts):
        return True
    name = parts[-1]
    return name.startswith("test_") or name.endswith("_test.py")


def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative path.

    Everything up to and including a ``src`` component is stripped, so
    ``src/repro/core/manager.py`` -> ``repro.core.manager`` and a fixture
    tree ``fixtures/proj/src/repro/sim/a.py`` -> ``repro.sim.a``.  Paths
    without a ``src`` component keep their full dotted form.
    """
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    # Strip up to the *last* "src" component so nested fixture trees work.
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "src":
            parts = parts[i + 1:]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    module: str          #: dotted module name
    path: str            #: repo-relative path of the defining module
    qualname: str        #: ``f`` or ``Cls.m``
    node: ast.AST        #: the FunctionDef / AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def key(self) -> Tuple[str, str]:
        """Stable identity: ``(module, qualname)``."""
        return (self.module, self.qualname)

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def is_generator(self) -> bool:
        for sub in ast.walk(self.node):
            if sub is not self.node and isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                owner = getattr(sub, "parent", None)
                while owner is not None and not isinstance(
                    owner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    owner = getattr(owner, "parent", None)
                if owner is self.node:
                    return True
        return False

    def param_names(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One class definition with its methods and inferred attribute types."""

    module: str
    path: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: resolved dotted names of base classes (project-internal or not)
    bases: Tuple[str, ...] = ()
    #: attribute name -> "set" for attributes provably set-typed
    set_attributes: Tuple[str, ...] = ()
    #: attribute names assigned a non-set value somewhere in the class
    other_attributes: Tuple[str, ...] = ()

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class Symbol:
    """Resolution result: where a dotted name lands inside the project."""

    module: str
    qualname: str          #: "" when the symbol is the module itself
    kind: str              #: "module" | "function" | "class" | "method" | "name"
    node: Optional[ast.AST] = None

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.qualname}" if self.qualname else self.module


class ModuleInfo:
    """Symbol table and import table for one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_name_for(path)
        self.is_test = is_test_path(path)
        self.lines = source.splitlines()
        #: local alias -> absolute dotted origin (relative imports resolved)
        self.imports: Dict[str, str] = {}
        #: qualname -> FunctionInfo (module functions and methods)
        self.functions: Dict[str, FunctionInfo] = {}
        #: class name -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: module-level name -> value expression of its last binding
        self.module_assigns: Dict[str, ast.AST] = {}
        self._collect()

    # -- collection ---------------------------------------------------------

    def _collect(self) -> None:
        self._collect_imports()
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(
                    module=self.module, path=self.path,
                    qualname=node.name, node=node,
                )
            elif isinstance(node, ast.ClassDef):
                self._collect_class(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_assigns[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self.module_assigns[node.target.id] = node.value

    def _collect_class(self, node: ast.ClassDef) -> None:
        info = ClassInfo(
            module=self.module, path=self.path, name=node.name, node=node,
            bases=tuple(
                self.resolve_dotted(b) or "?" for b in node.bases
            ),
        )
        set_attrs: Set[str] = set()
        other_attrs: Set[str] = set()
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{node.name}.{child.name}"
                fi = FunctionInfo(
                    module=self.module, path=self.path, qualname=qualname,
                    node=child, class_name=node.name,
                )
                info.methods[child.name] = fi
                self.functions[qualname] = fi
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                if _annotation_is_set(child.annotation):
                    set_attrs.add(child.target.id)
                else:
                    other_attrs.add(child.target.id)
        # self.X = <expr> assignments anywhere in the class body.
        for sub in ast.walk(node):
            target_value = _self_attr_assignment(sub)
            if target_value is None:
                continue
            attr, value, annotation = target_value
            if annotation is not None and _annotation_is_set(annotation):
                set_attrs.add(attr)
            elif _expr_is_set(value):
                set_attrs.add(attr)
            else:
                other_attrs.add(attr)
        info.set_attributes = tuple(sorted(set_attrs - other_attrs))
        info.other_attributes = tuple(sorted(other_attrs))
        self.classes[node.name] = info

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    origin = f"{base}.{alias.name}" if base else alias.name
                    self.imports[alias.asname or alias.name] = origin

    def _import_base(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted base of a ``from X import ...`` statement."""
        if not node.level:
            return node.module or ""
        # Relative import: climb ``level`` packages from this module.
        parts = self.module.split(".")
        # ``from . import x`` in a module drops the module's own name first.
        parts = parts[: len(parts) - node.level]
        if node.module:
            parts.append(node.module)
        if not parts:
            return None
        return ".".join(parts)

    # -- queries ------------------------------------------------------------

    def resolve_dotted(self, node: ast.AST) -> Optional[str]:
        """Absolute dotted name of a Name/Attribute chain in this module."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.imports.get(parts[0])
        if head is not None:
            parts = head.split(".") + parts[1:]
        elif (
            parts[0] in self.functions
            or parts[0] in self.classes
            or parts[0] in self.module_assigns
        ):
            # A symbol defined in this very module.
            parts = self.module.split(".") + parts
        return ".".join(parts)

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class ProjectIndex:
    """All linted modules, parsed once and cross-referenced."""

    def __init__(self) -> None:
        #: path -> ModuleInfo, insertion-ordered by sorted path
        self.modules: Dict[str, ModuleInfo] = {}
        #: dotted module name -> path (first sorted path wins on collision)
        self.by_name: Dict[str, str] = {}
        #: dotted module name -> sorted tuple of imported project modules
        self.import_graph: Dict[str, Tuple[str, ...]] = {}
        #: (path, message) for files that failed to parse
        self.parse_errors: List[Tuple[str, str]] = []

    @classmethod
    def build(cls, sources: Iterable[Tuple[str, str]]) -> "ProjectIndex":
        """Index ``(path, source)`` pairs; paths are repo-relative posix."""
        from .checkers import annotate_parents

        index = cls()
        for path, source in sorted(sources, key=lambda item: item[0]):
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                index.parse_errors.append(
                    (path, f"syntax error: {exc.msg} (line {exc.lineno})")
                )
                continue
            annotate_parents(tree)
            info = ModuleInfo(path, source, tree)
            index.modules[path] = info
            index.by_name.setdefault(info.module, path)
        index._link_imports()
        return index

    def _link_imports(self) -> None:
        for path, info in self.modules.items():
            imported: Set[str] = set()
            for origin in info.imports.values():
                target = self._owning_module(origin)
                if target is not None and target != info.module:
                    imported.add(target)
            self.import_graph[info.module] = tuple(sorted(imported))

    def _owning_module(self, dotted: str) -> Optional[str]:
        """The longest indexed module prefix of ``dotted``, if any."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.by_name:
                return candidate
        return None

    # -- symbol resolution --------------------------------------------------

    def module_for(self, name: str) -> Optional[ModuleInfo]:
        path = self.by_name.get(name)
        return self.modules.get(path) if path else None

    def resolve(self, dotted: str) -> Optional[Symbol]:
        """Resolve an absolute dotted name to a project symbol.

        Walks the longest module prefix, then function/class/method chains
        inside it.  Re-exports through package ``__init__`` modules are
        followed one hop (``repro.des.Environment`` ->
        ``repro.des.engine.Environment``).
        """
        return self._resolve(dotted, hops=0)

    def _resolve(self, dotted: str, hops: int) -> Optional[Symbol]:
        owner = self._owning_module(dotted)
        if owner is None:
            return None
        info = self.module_for(owner)
        if info is None:
            return None
        rest = dotted[len(owner):].lstrip(".")
        if not rest:
            return Symbol(module=owner, qualname="", kind="module",
                          node=info.tree)
        head, _, tail = rest.partition(".")
        if head in info.classes:
            cls = info.classes[head]
            if not tail:
                return Symbol(owner, head, "class", cls.node)
            method = cls.methods.get(tail)
            if method is not None:
                return Symbol(owner, method.qualname, "method", method.node)
            return None
        if not tail and head in info.functions:
            return Symbol(owner, head, "function", info.functions[head].node)
        if head in info.imports and hops < 4:
            # Re-export: follow the import one hop.
            target = info.imports[head]
            if tail:
                target = f"{target}.{tail}"
            return self._resolve(target, hops + 1)
        if not tail and head in info.module_assigns:
            return Symbol(owner, head, "name", info.module_assigns[head])
        return None

    def resolve_call(self, info: ModuleInfo, call: ast.Call) -> Optional[Symbol]:
        """Resolve ``call.func`` through ``info``'s import table."""
        dotted = info.resolve_dotted(call.func)
        if dotted is None:
            return None
        return self.resolve(dotted)

    # -- project-wide facts -------------------------------------------------

    def inferred_set_attributes(self) -> Tuple[str, ...]:
        """Attribute names set-typed in *every* non-test class using them.

        A name counted as a set in one class but assigned something else in
        another is dropped — the per-file attribute tier matches by name
        only, so a conflicted name would flag dict lookups (the
        ``FloorPlan.occupants`` lesson in the baseline).
        """
        set_names: Set[str] = set()
        other_names: Set[str] = set()
        for path in sorted(self.modules):
            info = self.modules[path]
            if info.is_test:
                continue
            for cls_name in sorted(info.classes):
                cls = info.classes[cls_name]
                set_names.update(cls.set_attributes)
                other_names.update(cls.other_attributes)
        return tuple(sorted(set_names - other_names))

    def function_kinds(self) -> Dict[str, str]:
        """dotted module-level function name -> "generator" | "function"."""
        kinds: Dict[str, str] = {}
        for path in sorted(self.modules):
            info = self.modules[path]
            if info.is_test:
                continue
            for qualname in sorted(info.functions):
                fi = info.functions[qualname]
                if fi.class_name is not None:
                    continue
                kinds[fi.dotted] = (
                    "generator" if fi.is_generator else "function"
                )
        return kinds


# -- shared expression classifiers ------------------------------------------


def _annotation_is_set(annotation: ast.AST) -> bool:
    """``Set[...]``, ``FrozenSet[...]``, ``set``/``frozenset`` annotations."""
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    name = None
    if isinstance(target, ast.Name):
        name = target.id
    elif isinstance(target, ast.Attribute):
        name = target.attr
    elif isinstance(target, ast.Constant) and isinstance(target.value, str):
        # String annotation: a crude but effective prefix check.
        text = target.value.strip()
        name = text.split("[", 1)[0].strip()
    return name in {"Set", "FrozenSet", "AbstractSet", "MutableSet",
                    "set", "frozenset"}


def _expr_is_set(node: ast.AST) -> bool:
    """Syntactically evident set expressions (no scope tracking)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _expr_is_set(node.left) or _expr_is_set(node.right)
    if isinstance(node, ast.IfExp):
        return _expr_is_set(node.body) or _expr_is_set(node.orelse)
    return False


def _self_attr_assignment(
    node: ast.AST,
) -> Optional[Tuple[str, ast.AST, Optional[ast.AST]]]:
    """``self.X = value`` / ``self.X: T = value`` -> (X, value, annotation)."""
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target, value, annotation = node.targets[0], node.value, None
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        target, value, annotation = node.target, node.value, node.annotation
    else:
        return None
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return (target.attr, value, annotation)
    return None
