"""Call graph over the project index.

Resolution is deliberately conservative — an edge exists only when the
target is provable from local evidence, because REP4xx findings gate CI and
a speculative edge means a speculative finding.  Three resolution forms:

* **direct calls** — ``helper(...)``, ``module.helper(...)``,
  ``Cls.method(...)`` resolved through the module's import table;
* **method calls on locally-constructed objects** — ``x = Foo(...)`` then
  ``x.bar(...)`` inside one function, including objects obtained through a
  one-level factory (a project function whose ``return`` statement is
  directly ``return Foo(...)``), and ``self.method(...)`` inside a class;
* **registry entry points** — functions/classes passed to (or decorated
  with) a project symbol whose name starts with ``register``; these are
  roots with no syntactic caller, exactly the plugin shape REP404 vets.

Edges are stored sorted so golden tests can pin the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .project import FunctionInfo, ModuleInfo, ProjectIndex, Symbol

__all__ = ["CallEdge", "CallGraph", "PluginRegistration"]


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: caller function -> callee function/method."""

    caller: Tuple[str, str]    #: (module, qualname)
    callee: Tuple[str, str]    #: (module, qualname)
    line: int                  #: call site line in the caller's module

    @property
    def sort_key(self) -> Tuple[str, str, str, str, int]:
        return (*self.caller, *self.callee, self.line)


@dataclass(frozen=True)
class PluginRegistration:
    """A function/class handed to a ``register*`` entry point."""

    registry: str              #: dotted name of the register function
    target: Tuple[str, str]    #: (module, qualname) of the registered symbol
    path: str
    line: int


class CallGraph:
    """Edges + plugin roots, built in one deterministic pass."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.edges: List[CallEdge] = []
        self.registrations: List[PluginRegistration] = []
        #: (module, qualname) -> sorted callee keys
        self._out: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
        self._in: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
        self._build()

    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        return cls(index)

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        edges: Set[CallEdge] = set()
        for path in sorted(self.index.modules):
            info = self.index.modules[path]
            for qualname in sorted(info.functions):
                fi = info.functions[qualname]
                edges.update(self._edges_for(info, fi))
            self._collect_registrations(info)
        self.edges = sorted(edges, key=lambda e: e.sort_key)
        for edge in self.edges:
            self._out.setdefault(edge.caller, []).append(edge.callee)
            self._in.setdefault(edge.callee, []).append(edge.caller)

    def _edges_for(self, info: ModuleInfo, fi: FunctionInfo) -> List[CallEdge]:
        local_types = self._local_constructions(info, fi)
        edges: List[CallEdge] = []
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self.resolve_callee(info, fi, node, local_types)
            if callee is not None:
                edges.append(CallEdge(
                    caller=fi.key, callee=callee, line=node.lineno,
                ))
        return edges

    def resolve_callee(
        self,
        info: ModuleInfo,
        fi: Optional[FunctionInfo],
        call: ast.Call,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[Tuple[str, str]]:
        """(module, qualname) of the function a call lands in, if provable."""
        func = call.func
        # self.method() inside a class
        if (
            fi is not None
            and fi.class_name is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            target = self._method_on(info.module, fi.class_name, func.attr)
            if target is not None:
                return target
        # obj.method() on a locally-constructed object
        if (
            local_types
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in local_types
        ):
            cls_dotted = local_types[func.value.id]
            module, _, cls_name = cls_dotted.rpartition(".")
            target = self._method_on(module, cls_name, func.attr)
            if target is not None:
                return target
        # direct / imported call
        symbol = self.index.resolve_call(info, call)
        if symbol is None:
            return None
        if symbol.kind in {"function", "method"}:
            return (symbol.module, symbol.qualname)
        if symbol.kind == "class":
            # Constructing a class "calls" its __init__ when it has one.
            init = self._method_on(symbol.module, symbol.qualname, "__init__")
            return init
        return None

    def _method_on(
        self, module: str, cls_name: str, method: str
    ) -> Optional[Tuple[str, str]]:
        minfo = self.index.module_for(module)
        if minfo is None:
            return None
        cls = minfo.classes.get(cls_name)
        seen: Set[str] = set()
        while cls is not None:
            if method in cls.methods:
                return (cls.module, cls.methods[method].qualname)
            # Single-hop inheritance walk over project-internal bases.
            next_cls = None
            for base in cls.bases:
                if base in seen or base == "?":
                    continue
                seen.add(base)
                symbol = self.index.resolve(base)
                if symbol is not None and symbol.kind == "class":
                    owner = self.index.module_for(symbol.module)
                    if owner is not None:
                        next_cls = owner.classes.get(symbol.qualname)
                        if next_cls is not None:
                            break
            cls = next_cls
        return None

    def _local_constructions(
        self, info: ModuleInfo, fi: FunctionInfo
    ) -> Dict[str, str]:
        """Local name -> dotted class name it is provably bound to.

        ``x = Foo()`` binds directly; ``x = make_foo()`` binds through a
        one-level factory whose return statement is directly
        ``return Foo(...)``.  Reassignment to anything unprovable clears
        the binding.
        """
        types: Dict[str, str] = {}
        body = getattr(fi.node, "body", [])
        for node in body if isinstance(body, list) else []:
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                    continue
                target = sub.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                dotted = self._constructed_class(info, sub.value)
                if dotted is not None:
                    types[target.id] = dotted
                else:
                    types.pop(target.id, None)
        return types

    def _constructed_class(
        self, info: ModuleInfo, value: ast.AST, depth: int = 0
    ) -> Optional[str]:
        if not isinstance(value, ast.Call) or depth > 1:
            return None
        symbol = self.index.resolve_call(info, value)  # type: ignore[arg-type]
        if symbol is None:
            return None
        if symbol.kind == "class":
            return symbol.dotted
        if symbol.kind == "function" and depth == 0:
            # One-level factory: return statement is directly a construction.
            owner = self.index.module_for(symbol.module)
            if owner is None:
                return None
            returns = [
                n for n in ast.walk(symbol.node)
                if isinstance(n, ast.Return) and n.value is not None
            ]
            classes = {
                self._constructed_class(owner, r.value, depth + 1)
                for r in returns
            }
            classes.discard(None)
            if len(classes) == 1:
                return classes.pop()
        return None

    def _collect_registrations(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            # @register(...) / @registry.register(...) decorators
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                for deco in node.decorator_list:
                    call = deco if isinstance(deco, ast.Call) else None
                    target = call.func if call is not None else deco
                    registry = self._registry_name(info, target)
                    if registry is None:
                        continue
                    qualname = node.name
                    self.registrations.append(PluginRegistration(
                        registry=registry,
                        target=(info.module, qualname),
                        path=info.path, line=node.lineno,
                    ))
            # register(plugin) call form
            elif isinstance(node, ast.Call):
                registry = self._registry_name(info, node.func)
                if registry is None:
                    continue
                for arg in node.args:
                    dotted = info.resolve_dotted(arg)
                    if dotted is None:
                        continue
                    symbol = self.index.resolve(dotted)
                    if symbol is not None and symbol.kind in {
                        "function", "class"
                    }:
                        self.registrations.append(PluginRegistration(
                            registry=registry,
                            target=(symbol.module, symbol.qualname),
                            path=info.path, line=node.lineno,
                        ))
        self.registrations.sort(
            key=lambda r: (r.path, r.line, r.registry, r.target)
        )

    def _registry_name(
        self, info: ModuleInfo, func: ast.AST
    ) -> Optional[str]:
        """Dotted name when ``func`` is a project ``register*`` symbol."""
        dotted = info.resolve_dotted(func)
        if dotted is None:
            return None
        tail = dotted.rsplit(".", 1)[-1]
        if not tail.startswith("register"):
            return None
        symbol = self.index.resolve(dotted)
        if symbol is None or symbol.kind not in {"function", "method"}:
            return None
        return dotted

    # -- queries ------------------------------------------------------------

    def callees(self, key: Tuple[str, str]) -> List[Tuple[str, str]]:
        return self._out.get(key, [])

    def callers(self, key: Tuple[str, str]) -> List[Tuple[str, str]]:
        return self._in.get(key, [])

    def registered_targets(self) -> List[Tuple[str, str]]:
        """Deduplicated, sorted (module, qualname) plugin roots."""
        return sorted({r.target for r in self.registrations})

    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON shape for golden tests."""
        return {
            "edges": [
                {
                    "caller": ".".join(e.caller),
                    "callee": ".".join(e.callee),
                    "line": e.line,
                }
                for e in self.edges
            ],
            "registrations": [
                {
                    "registry": r.registry,
                    "target": ".".join(r.target),
                    "path": r.path,
                    "line": r.line,
                }
                for r in self.registrations
            ],
        }
