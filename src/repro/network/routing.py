"""Routing over the backbone topology.

The paper assumes "an appropriate route found by a routing algorithm"
(Section 4).  We provide Dijkstra shortest paths under pluggable metrics and
a QoS-constrained variant that prunes links lacking the requested bandwidth
floor — the precondition for the admission test's forward pass.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, List, Optional

from .link import Link
from .topology import Topology

__all__ = [
    "NoRouteError",
    "hop_metric",
    "delay_metric",
    "shortest_path",
    "qos_route",
    "widest_path",
]


class NoRouteError(Exception):
    """No path satisfying the constraints exists."""


def hop_metric(link: Link) -> float:
    """Metric: every link costs 1 (minimum-hop routing)."""
    return 1.0


def delay_metric(link: Link) -> float:
    """Metric: propagation delay (minimum-latency routing)."""
    return link.prop_delay


def shortest_path(
    topo: Topology,
    src: Hashable,
    dst: Hashable,
    metric: Callable[[Link], float] = hop_metric,
    usable: Optional[Callable[[Link], bool]] = None,
) -> List[Hashable]:
    """Dijkstra shortest path from ``src`` to ``dst`` as a node-id list.

    ``usable`` optionally prunes links (e.g. insufficient free bandwidth).
    Raises :class:`NoRouteError` when ``dst`` is unreachable.
    """
    if not topo.has_node(src):
        raise NoRouteError(f"unknown source {src!r}")
    if not topo.has_node(dst):
        raise NoRouteError(f"unknown destination {dst!r}")

    dist: Dict[Hashable, float] = {src: 0.0}
    prev: Dict[Hashable, Hashable] = {}
    visited = set()
    heap = [(0.0, 0, src)]
    counter = 1  # tie-breaker keeps heap comparisons away from node ids

    while heap:
        d, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        if node == dst:
            break
        visited.add(node)
        for nxt in topo.successors(node):
            if nxt in visited:
                continue
            link = topo.link(node, nxt)
            if usable is not None and not usable(link):
                continue
            cost = metric(link)
            if cost < 0:
                raise ValueError(f"negative metric {cost} on {link!r}")
            alt = d + cost
            if alt < dist.get(nxt, float("inf")):
                dist[nxt] = alt
                prev[nxt] = node
                heapq.heappush(heap, (alt, counter, nxt))
                counter += 1

    if dst not in dist:
        raise NoRouteError(f"no route from {src!r} to {dst!r}")

    path = [dst]
    while path[-1] != src:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def qos_route(
    topo: Topology, src: Hashable, dst: Hashable, b_min: float
) -> List[Hashable]:
    """Minimum-hop route whose every link can still fit a ``b_min`` floor.

    A link is usable if ``b_min <= C_l - b_resv,l - sum(b_min,i)`` — exactly
    the bandwidth row of the paper's Table 2 forward-pass test.
    """
    return shortest_path(
        topo, src, dst, hop_metric, usable=lambda link: link.excess_available >= b_min
    )


def widest_path(topo: Topology, src: Hashable, dst: Hashable) -> List[Hashable]:
    """Path maximizing the bottleneck of ``excess_available`` (max-min width).

    Useful for routing adaptive connections that want room to grow toward
    ``b_max``.
    """
    if not topo.has_node(src) or not topo.has_node(dst):
        raise NoRouteError(f"unknown endpoint {src!r} or {dst!r}")

    width: Dict[Hashable, float] = {src: float("inf")}
    prev: Dict[Hashable, Hashable] = {}
    visited = set()
    heap = [(-float("inf"), 0, src)]
    counter = 1

    while heap:
        negw, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == dst:
            break
        for nxt in topo.successors(node):
            if nxt in visited:
                continue
            link = topo.link(node, nxt)
            w = min(-negw, link.excess_available)
            if w > width.get(nxt, -float("inf")):
                width[nxt] = w
                prev[nxt] = node
                heapq.heappush(heap, (-w, counter, nxt))
                counter += 1

    if dst not in width:
        raise NoRouteError(f"no route from {src!r} to {dst!r}")

    path = [dst]
    while path[-1] != src:
        path.append(prev[path[-1]])
    path.reverse()
    return path
