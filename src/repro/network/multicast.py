"""Multicast route setup toward neighboring cells.

Section 4 of the paper: to smooth handoff transients, the backbone sets up
multicast routes for a mobile's connection to the base stations of all
neighboring cells, pre-reserving buffer space there.  Admission tests run on
these routes too, but their failure never rejects the primary connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set

from .routing import NoRouteError, shortest_path
from .topology import Topology

__all__ = ["MulticastTree", "build_neighbor_multicast"]


@dataclass
class MulticastTree:
    """A source-rooted multicast distribution tree.

    ``branches`` maps each leaf (neighbor base station) to the node-id path
    from the root; ``links`` is the deduplicated set of (src, dst) link keys
    in the tree — the unit at which buffer is pre-reserved.
    """

    root: Hashable
    branches: Dict[Hashable, List[Hashable]] = field(default_factory=dict)
    #: Leaves whose admission test failed (served best-effort, per Section 4:
    #: "failure ... will not cause the forced termination of the connection").
    failed_leaves: Set[Hashable] = field(default_factory=set)

    @property
    def leaves(self) -> List[Hashable]:
        return list(self.branches)

    @property
    def links(self) -> Set[tuple]:
        keys: Set[tuple] = set()
        for path in self.branches.values():
            keys.update(zip(path, path[1:]))
        return keys

    def covers(self, leaf: Hashable) -> bool:
        """True if ``leaf`` is reachable with reserved resources."""
        return leaf in self.branches and leaf not in self.failed_leaves


def build_neighbor_multicast(
    topo: Topology, root: Hashable, neighbor_bs: List[Hashable]
) -> MulticastTree:
    """Build shortest-path branches from ``root`` to each neighbor base station.

    Unreachable leaves are recorded in ``failed_leaves`` instead of raising:
    multicast setup is opportunistic.
    """
    tree = MulticastTree(root=root)
    for leaf in neighbor_bs:
        try:
            tree.branches[leaf] = shortest_path(topo, root, leaf)
        except NoRouteError:
            tree.failed_leaves.add(leaf)
    return tree
