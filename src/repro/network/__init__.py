"""Wired backbone substrate: topology, links, routing, scheduling, signaling.

The paper's system model (Section 3.1): base stations attached to a wired
backbone, each serving a wireless cell.  This subpackage provides that
substrate — graphs of capacity-annotated links, shortest/QoS routing, WFQ
and RCSP per-hop bounds, control-packet signaling, and neighbor multicast.
"""

from .link import Link, LinkAllocation
from .multicast import MulticastTree, build_neighbor_multicast
from .node import Node, NodeKind
from .routing import (
    NoRouteError,
    delay_metric,
    hop_metric,
    qos_route,
    shortest_path,
    widest_path,
)
from .scheduling import (
    Discipline,
    cumulative_jitter,
    e2e_delay_lower_bound,
    path_loss_probability,
    per_hop_delay,
    rcsp_buffer,
    relaxed_per_hop_delay,
    wfq_buffer,
)
from .signaling import ControlPacket, PacketKind, SignalingNetwork
from .topology import Topology, campus_backbone, line_topology, star_topology

__all__ = [
    "Link",
    "LinkAllocation",
    "MulticastTree",
    "build_neighbor_multicast",
    "Node",
    "NodeKind",
    "NoRouteError",
    "delay_metric",
    "hop_metric",
    "qos_route",
    "shortest_path",
    "widest_path",
    "Discipline",
    "cumulative_jitter",
    "e2e_delay_lower_bound",
    "path_loss_probability",
    "per_hop_delay",
    "rcsp_buffer",
    "relaxed_per_hop_delay",
    "wfq_buffer",
    "ControlPacket",
    "PacketKind",
    "SignalingNetwork",
    "Topology",
    "campus_backbone",
    "line_topology",
    "star_topology",
]
