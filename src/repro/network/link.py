"""Directed network links with capacity, delay, and error characteristics.

A link is the unit at which the paper's admission tests and conflict
resolution operate: each link ``l`` has capacity ``C_l``, an advance-reserved
share ``b_resv,l``, and carries a set of ongoing connections with minimum
bandwidths ``b_min,i`` plus excess shares assigned by the adaptation
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

__all__ = ["Link", "LinkAllocation"]


@dataclass
class LinkAllocation:
    """Bandwidth state of one connection on one link.

    ``minimum`` is the guaranteed floor ``b_min``; ``excess`` is the share
    beyond the floor granted by conflict resolution / adaptation.  The
    connection's actual rate on the link is ``minimum + excess``.
    """

    minimum: float
    excess: float = 0.0

    @property
    def total(self) -> float:
        return self.minimum + self.excess


class Link:
    """A directed link of the backbone (or the wireless hop of a cell).

    Parameters
    ----------
    src, dst:
        Node identifiers for the link endpoints.
    capacity:
        Link speed ``C_l`` in bandwidth units (e.g. kbps).
    prop_delay:
        Propagation delay in simulation time units (used by signaling).
    error_prob:
        Per-packet loss probability ``p_e,l`` used by the admission test's
        loss row; non-zero mainly on wireless hops.
    """

    def __init__(
        self,
        src: Hashable,
        dst: Hashable,
        capacity: float,
        prop_delay: float = 0.0,
        error_prob: float = 0.0,
        buffer_capacity: float = float("inf"),
    ):
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        if not 0.0 <= error_prob < 1.0:
            raise ValueError(f"error_prob must be in [0, 1), got {error_prob}")
        if prop_delay < 0:
            raise ValueError(f"prop_delay must be non-negative, got {prop_delay}")
        if buffer_capacity <= 0:
            raise ValueError(
                f"buffer_capacity must be positive, got {buffer_capacity}"
            )
        self.src = src
        self.dst = dst
        self.capacity = float(capacity)
        self.prop_delay = float(prop_delay)
        self.error_prob = float(error_prob)
        #: Buffer pool at the link's transmitting switch.
        self.buffer_capacity = float(buffer_capacity)
        #: Advance-reserved bandwidth ``b_resv,l`` (handoff reservations +
        #: the dynamically adjustable pool ``B_dyn``).  Plain links carry it
        #: as a float; ledger-backed wireless links read it lazily from
        #: their :class:`~repro.core.reservation.CellReservations` (see
        #: :meth:`bind_reserved_source`).
        self._reserved: float = 0.0
        self._reserved_source: Optional[Callable[[], float]] = None
        #: Per-connection bandwidth allocations keyed by connection id.
        self.allocations: Dict[Hashable, LinkAllocation] = {}
        #: Per-connection buffer-space reservations keyed by connection id.
        self.buffers: Dict[Hashable, float] = {}

    # -- identity -----------------------------------------------------------

    @property
    def key(self) -> Tuple[Hashable, Hashable]:
        """(src, dst) pair identifying the link in a topology."""
        return (self.src, self.dst)

    # -- aggregate bandwidth state -------------------------------------------

    @property
    def reserved(self) -> float:
        """Advance-reserved bandwidth ``b_resv,l``.

        Reads pull from the bound reservation ledger when one is attached
        (the ledger's totals are cached, so this stays O(1) between
        mutations); plain links return the stored float.
        """
        source = self._reserved_source
        if source is None:
            return self._reserved
        return source()

    @reserved.setter
    def reserved(self, value: float) -> None:
        self._reserved_source = None
        self._reserved = value

    def bind_reserved_source(self, source: Callable[[], float]) -> None:
        """Attach a lazy provider for ``b_resv,l``.

        A :class:`~repro.core.reservation.CellReservations` ledger binds
        itself here so reservation mutations never eagerly re-sum the
        ledger; assigning ``link.reserved`` directly detaches the provider
        again (the link reverts to plain-float bookkeeping).
        """
        self._reserved_source = source

    @property
    def min_committed(self) -> float:
        """Sum of guaranteed minimums of ongoing connections."""
        return sum(a.minimum for a in self.allocations.values())

    @property
    def allocated(self) -> float:
        """Total bandwidth handed out (minimums + excess shares)."""
        return sum(a.total for a in self.allocations.values())

    @property
    def excess_available(self) -> float:
        """The paper's ``b'_av,l = C_l - b_resv,l - sum(b_min,i)``.

        Note this is capacity not yet pinned by floors or advance
        reservations; parts of it may currently be handed out as excess.
        """
        return self.capacity - self.reserved - self.min_committed

    @property
    def unassigned(self) -> float:
        """Capacity neither reserved, guaranteed, nor granted as excess."""
        return self.capacity - self.reserved - self.allocated

    @property
    def utilization(self) -> float:
        """Fraction of capacity committed (reservations + allocations)."""
        return (self.reserved + self.allocated) / self.capacity

    # -- connection bookkeeping ------------------------------------------------

    def admit(self, conn_id: Hashable, minimum: float, excess: float = 0.0) -> None:
        """Register a connection with guaranteed floor ``minimum``."""
        if conn_id in self.allocations:
            raise KeyError(f"connection {conn_id!r} already on link {self.key}")
        if minimum < 0 or excess < 0:
            raise ValueError("bandwidth shares must be non-negative")
        self.allocations[conn_id] = LinkAllocation(minimum=minimum, excess=excess)

    def release(self, conn_id: Hashable) -> LinkAllocation:
        """Remove a connection (and its buffer), returning its allocation."""
        try:
            allocation = self.allocations.pop(conn_id)
        except KeyError:
            raise KeyError(f"connection {conn_id!r} not on link {self.key}") from None
        self.buffers.pop(conn_id, None)
        return allocation

    def set_excess(self, conn_id: Hashable, excess: float) -> None:
        """Update a connection's excess share (adaptation outcome)."""
        if excess < -1e-12:
            raise ValueError(f"excess must be non-negative, got {excess}")
        self.allocations[conn_id].excess = max(0.0, excess)

    def rate_of(self, conn_id: Hashable) -> float:
        """Current total rate of ``conn_id`` on this link."""
        return self.allocations[conn_id].total

    # -- buffer space ----------------------------------------------------------

    @property
    def buffer_committed(self) -> float:
        """Total buffer space reserved for connections."""
        return sum(self.buffers.values())

    @property
    def buffer_available(self) -> float:
        return self.buffer_capacity - self.buffer_committed

    def reserve_buffer(self, conn_id: Hashable, amount: float) -> None:
        """Set (or replace) the buffer reservation for a connection."""
        if amount < 0:
            raise ValueError(f"buffer amount must be non-negative, got {amount}")
        self.buffers[conn_id] = amount

    def release_buffer(self, conn_id: Hashable) -> float:
        """Drop a connection's buffer reservation, returning it."""
        return self.buffers.pop(conn_id, 0.0)

    # -- advance reservation -------------------------------------------------

    def reserve(self, amount: float) -> None:
        """Increase the advance-reserved share ``b_resv,l``."""
        if amount < 0:
            raise ValueError(f"reserve amount must be non-negative, got {amount}")
        self.reserved += amount

    def unreserve(self, amount: float) -> None:
        """Decrease the advance-reserved share (clamped at zero)."""
        if amount < 0:
            raise ValueError(f"unreserve amount must be non-negative, got {amount}")
        self.reserved = max(0.0, self.reserved - amount)

    def __repr__(self):
        return (
            f"Link({self.src!r}->{self.dst!r}, C={self.capacity}, "
            f"resv={self.reserved:.1f}, conns={len(self.allocations)})"
        )
