"""Network nodes: switches, hosts, and base stations."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

__all__ = ["NodeKind", "Node"]


class NodeKind(Enum):
    """Role of a node in the mixed wireline/wireless architecture."""

    SWITCH = "switch"
    HOST = "host"
    BASE_STATION = "base_station"


@dataclass
class Node:
    """A vertex of the backbone topology.

    Attributes
    ----------
    node_id:
        Unique, hashable identifier.
    kind:
        The node's role (switch / host / base station).
    meta:
        Free-form annotations (e.g. the cell id a base station serves).
    """

    node_id: str
    kind: NodeKind = NodeKind.SWITCH
    meta: Dict = field(default_factory=dict)

    @property
    def is_base_station(self) -> bool:
        return self.kind is NodeKind.BASE_STATION

    def __hash__(self):
        return hash(self.node_id)

    def __eq__(self, other):
        if isinstance(other, Node):
            return self.node_id == other.node_id
        return NotImplemented

    def __repr__(self):
        return f"Node({self.node_id!r}, {self.kind.value})"
