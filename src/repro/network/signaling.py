"""The control plane: signaling channels between network elements.

Carries the adaptation algorithm's ADVERTISE / UPDATE packets (Section 5.3.1)
hop-by-hop over the topology with per-link propagation delay.  Every packet
carries a global id (originator, sequence number) so receivers can suppress
duplicates of the flooding mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Hashable, Optional

from ..des import Environment, Event
from .topology import Topology

__all__ = ["PacketKind", "ControlPacket", "SignalingNetwork"]


class PacketKind(Enum):
    """Control packet types of the bandwidth adaptation protocol."""

    ADVERTISE = "advertise"
    UPDATE = "update"


@dataclass
class ControlPacket:
    """A signaling message travelling along a connection's route.

    Attributes
    ----------
    kind:
        ADVERTISE (rate probing) or UPDATE (rate commit).
    conn_id:
        The connection this packet concerns.
    stamped_rate:
        The ``b_stamp`` field: the originator's desired *excess* rate for
        the connection, reduced en route to the path minimum advertised rate.
    direction:
        +1 = travelling downstream (toward the destination),
        -1 = travelling upstream (toward the source).
    originator:
        Node id of the switch that initiated the adaptation round.
    global_id:
        (originator, sequence) pair for duplicate suppression.
    trip:
        Which of the (up to four) convergence round trips this packet
        belongs to.
    """

    kind: PacketKind
    conn_id: Hashable
    stamped_rate: float
    direction: int
    originator: Hashable
    global_id: tuple
    trip: int = 0
    meta: dict = field(default_factory=dict)

    def copy_with(self, **overrides) -> "ControlPacket":
        data = {
            "kind": self.kind,
            "conn_id": self.conn_id,
            "stamped_rate": self.stamped_rate,
            "direction": self.direction,
            "originator": self.originator,
            "global_id": self.global_id,
            "trip": self.trip,
            "meta": dict(self.meta),
        }
        data.update(overrides)
        return ControlPacket(**data)


class SignalingNetwork:
    """Delivers control packets between adjacent nodes with link latency.

    Nodes register a handler (``handler(packet, from_node)``); :meth:`send`
    schedules the handler invocation ``prop_delay + overhead`` later.  The
    total message count is tracked — the paper's refinement claims a large
    reduction in overhead messages, which `benchmarks/bench_ablation_mlist`
    quantifies with this counter.
    """

    def __init__(self, env: Environment, topo: Topology, hop_overhead: float = 0.0):
        self.env = env
        self.topo = topo
        self.hop_overhead = hop_overhead
        self._handlers: Dict[Hashable, Callable[[ControlPacket, Hashable], None]] = {}
        #: Total control messages transmitted (one per hop traversal).
        self.messages_sent = 0
        self.messages_by_kind: Dict[PacketKind, int] = {
            PacketKind.ADVERTISE: 0,
            PacketKind.UPDATE: 0,
        }

    def register(
        self, node_id: Hashable, handler: Callable[[ControlPacket, Hashable], None]
    ) -> None:
        """Install the control-packet handler for ``node_id``."""
        self._handlers[node_id] = handler

    def send(self, src: Hashable, dst: Hashable, packet: ControlPacket) -> None:
        """Transmit ``packet`` over the (src, dst) link."""
        link = self.topo.link(src, dst)
        handler = self._handlers.get(dst)
        if handler is None:
            raise KeyError(f"no signaling handler registered at {dst!r}")
        self.messages_sent += 1
        self.messages_by_kind[packet.kind] += 1

        event = Event(self.env)
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _ev: handler(packet, src))
        self.env.schedule(event, delay=link.prop_delay + self.hop_overhead)

    def deliver_local(self, node_id: Hashable, packet: ControlPacket,
                      from_node: Optional[Hashable] = None) -> None:
        """Invoke a node's handler directly (zero-latency local delivery)."""
        handler = self._handlers.get(node_id)
        if handler is None:
            raise KeyError(f"no signaling handler registered at {node_id!r}")
        handler(packet, from_node)
