"""Backbone topology: a directed multigraph of nodes and links.

Provides builders for the standard shapes used by tests and benchmarks
(line, star, and the campus backbone that underlies the indoor floorplan).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from .link import Link
from .node import Node, NodeKind

__all__ = ["Topology", "line_topology", "star_topology", "campus_backbone"]


class Topology:
    """A directed graph of :class:`Node` and :class:`Link` objects.

    Links are stored per (src, dst) pair; calling :meth:`add_duplex_link`
    creates both directions with identical parameters (the common case for
    the wired backbone).
    """

    def __init__(self):
        self._nodes: Dict[Hashable, Node] = {}
        self._links: Dict[Tuple[Hashable, Hashable], Link] = {}
        self._adjacency: Dict[Hashable, List[Hashable]] = {}

    # -- construction ---------------------------------------------------------

    def add_node(self, node_id: Hashable, kind: NodeKind = NodeKind.SWITCH, **meta) -> Node:
        """Add (or fetch an existing) node."""
        if node_id in self._nodes:
            return self._nodes[node_id]
        node = Node(node_id, kind, dict(meta))
        self._nodes[node_id] = node
        self._adjacency[node_id] = []
        return node

    def add_link(
        self,
        src: Hashable,
        dst: Hashable,
        capacity: float,
        prop_delay: float = 0.0,
        error_prob: float = 0.0,
    ) -> Link:
        """Add a directed link; endpoints are auto-created as switches."""
        if (src, dst) in self._links:
            raise ValueError(f"link {src!r}->{dst!r} already exists")
        self.add_node(src)
        self.add_node(dst)
        link = Link(src, dst, capacity, prop_delay, error_prob)
        self._links[(src, dst)] = link
        self._adjacency[src].append(dst)
        return link

    def add_duplex_link(
        self,
        a: Hashable,
        b: Hashable,
        capacity: float,
        prop_delay: float = 0.0,
        error_prob: float = 0.0,
    ) -> Tuple[Link, Link]:
        """Add both directions of a symmetric link."""
        return (
            self.add_link(a, b, capacity, prop_delay, error_prob),
            self.add_link(b, a, capacity, prop_delay, error_prob),
        )

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    @property
    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def link_count(self) -> int:
        return len(self._links)

    def node(self, node_id: Hashable) -> Node:
        return self._nodes[node_id]

    def has_node(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    def link(self, src: Hashable, dst: Hashable) -> Link:
        return self._links[(src, dst)]

    def has_link(self, src: Hashable, dst: Hashable) -> bool:
        return (src, dst) in self._links

    def successors(self, node_id: Hashable) -> List[Hashable]:
        """Node ids directly reachable from ``node_id``."""
        return list(self._adjacency[node_id])

    def path_links(self, path: Iterable[Hashable]) -> List[Link]:
        """Resolve a node-id path to its constituent links."""
        path = list(path)
        if len(path) < 2:
            return []
        return [self.link(a, b) for a, b in zip(path, path[1:])]

    def to_networkx(self):
        """Export to a networkx DiGraph (for analysis / verification)."""
        import networkx as nx

        graph = nx.DiGraph()
        for node in self.nodes:
            graph.add_node(node.node_id, kind=node.kind.value)
        for link in self.links:
            graph.add_edge(
                link.src,
                link.dst,
                capacity=link.capacity,
                prop_delay=link.prop_delay,
                error_prob=link.error_prob,
            )
        return graph


# -- builders ------------------------------------------------------------------


def line_topology(
    n: int, capacity: float = 10_000.0, prop_delay: float = 0.001
) -> Topology:
    """A chain of ``n`` switches: s0 - s1 - ... - s{n-1} (duplex links)."""
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    topo = Topology()
    for i in range(n - 1):
        topo.add_duplex_link(f"s{i}", f"s{i + 1}", capacity, prop_delay)
    return topo


def star_topology(
    leaves: int, capacity: float = 10_000.0, prop_delay: float = 0.001
) -> Topology:
    """A hub switch with ``leaves`` spokes (duplex links)."""
    if leaves < 1:
        raise ValueError(f"need at least 1 leaf, got {leaves}")
    topo = Topology()
    for i in range(leaves):
        topo.add_duplex_link("hub", f"leaf{i}", capacity, prop_delay)
    return topo


def campus_backbone(
    cell_ids: Iterable[Hashable],
    backbone_capacity: float = 100_000.0,
    access_capacity: float = 10_000.0,
    wireless_capacity: float = 1_600.0,
    wireless_error_prob: float = 0.01,
    prop_delay: float = 0.0005,
    servers: Optional[Iterable[Hashable]] = None,
) -> Topology:
    """The paper's network model: base stations on a wired backbone.

    One router connects every base station; each base station additionally
    has a wireless "air" link (node ``air:<cell>``) modelling the shared
    wireless hop of its cell with capacity 1.6 Mbps by default (the value
    used in Section 7.1).  Optional ``servers`` hosts hang off the router
    for wired correspondents.
    """
    topo = Topology()
    topo.add_node("router", NodeKind.SWITCH)
    for cell_id in cell_ids:
        bs = f"bs:{cell_id}"
        topo.add_node(bs, NodeKind.BASE_STATION, cell=cell_id)
        topo.add_duplex_link("router", bs, access_capacity, prop_delay)
        air = f"air:{cell_id}"
        topo.add_node(air, NodeKind.HOST, cell=cell_id)
        topo.add_duplex_link(
            bs, air, wireless_capacity, prop_delay, wireless_error_prob
        )
    for server in servers or []:
        topo.add_node(server, NodeKind.HOST)
        topo.add_duplex_link("router", server, backbone_capacity, prop_delay)
    return topo
