"""Per-hop delay and buffer bounds for the two reference disciplines.

The paper (Table 2, citing Zhang's survey [13]) instantiates its admission
test for two schedulers:

* **WFQ** — work-conserving weighted fair queueing.  With a ``(sigma, rho)``
  token-bucket source served at rate ``b`` across ``n`` hops, the classic
  PGPS bound gives end-to-end delay ``(sigma + n*L_max)/b + sum_i L_max/C_i``
  and per-hop buffer ``sigma + l*L_max`` at hop ``l``.
* **RCSP** — non-work-conserving rate-controlled static priority with
  ``b*(.)`` rate-jitter regulators.  Traffic is reshaped per hop, so buffer
  needs depend on the local (and previous-hop) delay bounds instead of
  accumulating burst.

These formulas are pure functions of the connection parameters — exactly
what the distributed admission test evaluates at each node.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

__all__ = [
    "Discipline",
    "per_hop_delay",
    "e2e_delay_lower_bound",
    "relaxed_per_hop_delay",
    "cumulative_jitter",
    "wfq_buffer",
    "rcsp_buffer",
    "path_loss_probability",
]


class Discipline(Enum):
    """Packet scheduling discipline assumed at intermediate switches."""

    WFQ = "wfq"
    RCSP = "rcsp"


def per_hop_delay(b_min: float, capacity: float, l_max: float) -> float:
    """Forward-pass local delay ``d_l,j = L_max/b_min + L_max/C_l``."""
    if b_min <= 0 or capacity <= 0:
        raise ValueError("rates must be positive")
    return l_max / b_min + l_max / capacity


def e2e_delay_lower_bound(
    sigma: float, b_min: float, l_max: float, capacities: Sequence[float]
) -> float:
    """Destination test ``d_min = (sigma + n*L_max)/b_min + sum(L_max/C_i)``.

    The smallest end-to-end delay the network can commit to with rate
    ``b_min`` over the links with speeds ``capacities``.
    """
    n = len(capacities)
    if n == 0:
        raise ValueError("path must contain at least one link")
    return (sigma + n * l_max) / b_min + sum(l_max / c for c in capacities)


def relaxed_per_hop_delay(
    d_local: float,
    d_budget: float,
    d_min: float,
    sigma: float,
    b_min: float,
    hops: int,
) -> float:
    """Reverse-pass "uniform relaxation" of the per-hop delay.

    Table 2: ``d'_l = d_l + (d - d_min)/n + sigma/(n*b_min)`` — each hop gets
    an equal share of the end-to-end slack plus of the burst-drain time.
    """
    if hops <= 0:
        raise ValueError("hops must be positive")
    slack = d_budget - d_min
    if slack < 0:
        raise ValueError(f"negative delay slack {slack}")
    return d_local + slack / hops + sigma / (hops * b_min)


def cumulative_jitter(sigma: float, b_min: float, l_max: float, hop_index: int) -> float:
    """Delay-jitter accumulated through hop ``hop_index`` (1-based).

    Table 2's jitter row: ``(sigma + l*L_max)/b_min`` after ``l`` hops.
    """
    if hop_index < 1:
        raise ValueError("hop_index is 1-based")
    return (sigma + hop_index * l_max) / b_min


def wfq_buffer(sigma: float, l_max: float, hop_index: int) -> float:
    """WFQ buffer requirement at hop ``hop_index``: ``sigma + l*L_max``."""
    if hop_index < 1:
        raise ValueError("hop_index is 1-based")
    return sigma + hop_index * l_max


def rcsp_buffer(
    sigma: float,
    l_max: float,
    rate: float,
    d_current: float,
    d_previous: float = None,
) -> float:
    """RCSP buffer requirement with rate-jitter regulators.

    First hop (``d_previous is None``): ``sigma + L_max + rate*d_1``.
    Later hops: ``sigma + L_max + rate*(d_{l-1} + d_l)`` on the forward pass;
    the reverse pass substitutes the relaxed delays and granted rate.
    """
    if d_previous is None:
        return sigma + l_max + rate * d_current
    return sigma + l_max + rate * (d_previous + d_current)


def path_loss_probability(error_probs: Sequence[float]) -> float:
    """End-to-end loss ``1 - prod(1 - p_e,i)`` under link independence."""
    survive = 1.0
    for p in error_probs:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        survive *= 1.0 - p
    return 1.0 - survive
