"""Admission control: the paper's Table 2 round-trip test.

A connection request travels a forward pass over its route; at each link the
bandwidth / delay / jitter / buffer / loss rows are tested and resources are
tentatively reserved "to the greatest level of local QoS support".  The
destination compares accumulated end-to-end values against the request.  The
reverse pass then reclaims over-reserved resources: delay slack is spread
uniformly over hops, buffers shrink to what the granted rate needs, and the
bandwidth grant lands at ``b_min + b_stamp`` for static portables or exactly
``b_min`` for mobiles.

Handoff connections run the *same* test but may consume the advance-reserved
share ``b_resv,l`` on designated links (the reservation made for them in the
next-predicted cell).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..network.link import Link
from ..network.scheduling import (
    Discipline,
    cumulative_jitter,
    e2e_delay_lower_bound,
    path_loss_probability,
    per_hop_delay,
    rcsp_buffer,
    relaxed_per_hop_delay,
    wfq_buffer,
)
from ..network.topology import Topology
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..traffic.connection import Connection

__all__ = ["AdmissionResult", "AdmissionController", "RejectReason"]


class RejectReason:
    """String constants naming which Table 2 row failed."""

    BANDWIDTH = "bandwidth"
    DELAY = "delay"
    JITTER = "jitter"
    BUFFER = "buffer"
    LOSS = "loss"


@dataclass
class AdmissionResult:
    """Outcome of one admission round trip.

    ``hop_delays`` / ``hop_buffers`` are the *reverse-pass* (post-relaxation)
    per-hop commitments, index-aligned with the route's links.
    """

    accepted: bool
    reason: Optional[str] = None
    failed_link: Optional[Tuple[Hashable, Hashable]] = None
    granted_rate: float = 0.0
    b_stamp: float = 0.0
    d_min: float = 0.0
    e2e_loss: float = 0.0
    hop_delays: List[float] = field(default_factory=list)
    hop_buffers: List[float] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.accepted


class AdmissionController:
    """Executes Table 2 for new and handoff connections over a topology.

    Parameters
    ----------
    topo:
        The topology whose link state is tested and mutated.
    discipline:
        WFQ or RCSP — selects the buffer row.
    advertised_rate:
        Optional callback ``f(link) -> float`` returning the current
        advertised excess rate at a link, used to stamp adaptive
        connections on the forward pass (Section 5.3.1).  Defaults to the
        link's unassigned capacity (the conflict-resolution protocol will
        subsequently converge all excess shares to max-min fairness).
    """

    def __init__(
        self,
        topo: Topology,
        discipline: Discipline = Discipline.WFQ,
        advertised_rate: Optional[Callable[[Link], float]] = None,
    ):
        self.topo = topo
        self.discipline = discipline
        self._advertised_rate = advertised_rate or (
            lambda link: max(0.0, link.unassigned)
        )

    # -- public API -------------------------------------------------------------

    def admit(
        self,
        conn: Connection,
        route: List[Hashable],
        is_handoff: bool = False,
        static_portable: bool = False,
        claimable: Optional[Dict[Tuple[Hashable, Hashable], float]] = None,
        commit: bool = True,
    ) -> AdmissionResult:
        """Run the round-trip admission test for ``conn`` over ``route``.

        ``claimable`` maps link keys to the advance-reserved bandwidth this
        (handoff) connection may consume there.  With ``commit=False`` the
        test runs without mutating any link state (a "what-if" probe).
        """
        result = self._evaluate(
            conn, route, is_handoff, static_portable, claimable, commit
        )
        tracer = get_tracer()
        if tracer is not None:
            tracer.emit(
                "admission.decision",
                conn=str(conn.conn_id),
                accepted=result.accepted,
                reason=result.reason,
                failed_link=(
                    [str(k) for k in result.failed_link]
                    if result.failed_link is not None
                    else None
                ),
                granted_rate=result.granted_rate,
                handoff=is_handoff,
                committed=commit and result.accepted,
            )
        get_registry().counter(
            "admission_decisions_total",
            accepted=result.accepted,
            reason=result.reason or "none",
        ).inc()
        return result

    def _evaluate(
        self,
        conn: Connection,
        route: List[Hashable],
        is_handoff: bool,
        static_portable: bool,
        claimable: Optional[Dict[Tuple[Hashable, Hashable], float]],
        commit: bool,
    ) -> AdmissionResult:
        """The Table 2 round trip proper (``admit`` minus observability)."""
        links = self.topo.path_links(route)
        if not links:
            raise ValueError("route must contain at least one link")
        qos = conn.qos

        if qos.bounds is None:
            # Best-effort connections skip reservation entirely (Section 4).
            result = AdmissionResult(accepted=True, granted_rate=0.0)
            return result

        claimable = claimable or {}
        b_min = qos.b_min
        sigma = qos.flowspec.sigma
        l_max = qos.flowspec.l_max
        n = len(links)

        # ---- forward pass -----------------------------------------------------
        stamp = qos.b_max - b_min
        fwd_delays: List[float] = []
        for index, link in enumerate(links, start=1):
            claim = min(claimable.get(link.key, 0.0), link.reserved) if is_handoff else 0.0
            headroom = link.excess_available + claim
            if b_min > headroom + 1e-9:
                return AdmissionResult(
                    accepted=False,
                    reason=RejectReason.BANDWIDTH,
                    failed_link=link.key,
                )

            d_local = per_hop_delay(b_min, link.capacity, l_max)
            fwd_delays.append(d_local)

            if cumulative_jitter(sigma, b_min, l_max, index) > qos.jitter_bound + 1e-12:
                return AdmissionResult(
                    accepted=False,
                    reason=RejectReason.JITTER,
                    failed_link=link.key,
                )

            buffer_needed = self._forward_buffer(
                sigma, l_max, qos.b_max, fwd_delays, index
            )
            already = link.buffers.get(conn.conn_id, 0.0)
            if buffer_needed - already > link.buffer_available + 1e-9:
                return AdmissionResult(
                    accepted=False,
                    reason=RejectReason.BUFFER,
                    failed_link=link.key,
                )

            # Stamp with the link's advertised excess, additionally capped
            # by the headroom left once this connection's own floor lands
            # (the floor is not yet committed during the forward pass, so a
            # raw advertised rate would oversubscribe the link).
            headroom_after = max(0.0, headroom - b_min)
            stamp = min(stamp, self._advertised_rate(link), headroom_after)

        # ---- destination tests ---------------------------------------------------
        d_min = e2e_delay_lower_bound(
            sigma, b_min, l_max, [link.capacity for link in links]
        )
        if d_min > qos.delay_bound + 1e-12:
            return AdmissionResult(
                accepted=False, reason=RejectReason.DELAY, d_min=d_min
            )

        e2e_loss = path_loss_probability([link.error_prob for link in links])
        if e2e_loss > qos.loss_bound + 1e-12:
            return AdmissionResult(
                accepted=False, reason=RejectReason.LOSS, e2e_loss=e2e_loss
            )

        # ---- reverse pass: relaxation and final grant -----------------------------
        stamp = max(0.0, stamp)
        granted = b_min + stamp if static_portable else b_min
        granted = qos.bounds.clamp(granted)

        hop_delays = [
            relaxed_per_hop_delay(d, qos.delay_bound, d_min, sigma, b_min, n)
            if qos.delay_bound < float("inf")
            else d
            for d in fwd_delays
        ]
        hop_buffers = self._reverse_buffers(
            sigma, l_max, granted, hop_delays, fwd_delays
        )

        result = AdmissionResult(
            accepted=True,
            granted_rate=granted,
            b_stamp=granted - b_min,
            d_min=d_min,
            e2e_loss=e2e_loss,
            hop_delays=hop_delays,
            hop_buffers=hop_buffers,
        )

        if commit:
            self._commit(conn, links, result, claimable if is_handoff else {})
        return result

    def release(self, conn: Connection, route: Optional[List[Hashable]] = None) -> None:
        """Tear down a connection's reservations along its route."""
        links = self.topo.path_links(route if route is not None else conn.route)
        for link in links:
            if conn.conn_id in link.allocations:
                link.release(conn.conn_id)

    # -- internals ----------------------------------------------------------------

    def _forward_buffer(
        self,
        sigma: float,
        l_max: float,
        b_max: float,
        fwd_delays: List[float],
        hop_index: int,
    ) -> float:
        """Greatest-local-support buffer reserved on the forward pass."""
        if self.discipline is Discipline.WFQ:
            return wfq_buffer(sigma, l_max, hop_index)
        if hop_index == 1:
            return rcsp_buffer(sigma, l_max, b_max, fwd_delays[0])
        return rcsp_buffer(
            sigma, l_max, b_max, fwd_delays[hop_index - 1], fwd_delays[hop_index - 2]
        )

    def _reverse_buffers(
        self,
        sigma: float,
        l_max: float,
        granted: float,
        relaxed: List[float],
        fwd: List[float],
    ) -> List[float]:
        """Reclaimed buffer sizes after the reverse pass (Table 2 last column)."""
        if self.discipline is Discipline.WFQ:
            return [wfq_buffer(sigma, l_max, i) for i in range(1, len(fwd) + 1)]
        buffers = [rcsp_buffer(sigma, l_max, granted, relaxed[0])]
        for hop in range(2, len(fwd) + 1):
            # Table 2: sigma + b_j * (d'_{l-1} + d_l): relaxed previous hop,
            # unrelaxed current hop (the regulator holds packets for d'_{l-1}).
            buffers.append(sigma + granted * (relaxed[hop - 2] + fwd[hop - 1]))
        return buffers

    def _commit(
        self,
        conn: Connection,
        links: List[Link],
        result: AdmissionResult,
        claims: Dict[Tuple[Hashable, Hashable], float],
    ) -> None:
        for link, buffer_amount in zip(links, result.hop_buffers):
            claim = min(claims.get(link.key, 0.0), link.reserved)
            if claim > 0:
                link.unreserve(claim)
            link.admit(conn.conn_id, conn.b_min, excess=result.b_stamp)
            link.reserve_buffer(conn.conn_id, buffer_amount)
