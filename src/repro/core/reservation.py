"""Cell-level reservation ledger: advance reservations and the B_dyn pool.

Section 3.3's reservation model: a cell manages its wireless resources with
(a) reservations for ongoing / predicted-handoff connections and (b) a
dynamically adjustable pool for unforeseen events (5 %–20 % of capacity,
Section 4.3).  This ledger sits on top of a cell's wireless
:class:`~repro.network.link.Link` and supplies its ``link.reserved`` total.

The ledger is *sparse*: no entry is kept for a zero reservation, component
totals are cached and invalidated only by mutations of that component, and
``link.reserved`` is bound to a lazy provider instead of being re-summed
eagerly on every mutation — per-cell cost tracks the number of *active*
reservations, never the portable population.  Cached totals are recomputed
with the exact same ``sum(dict.values())`` expression the eager ledger
used, so every float the link observes is bit-identical to the dense
implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from ..network.link import Link
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer

__all__ = ["CellReservations"]


class CellReservations:
    """Advance-reservation bookkeeping for one cell.

    Two classes of reservations are tracked:

    * **targeted** — per-portable reservations made by next-cell prediction
      (claimed by that portable's handoff, released on wrong predictions);
    * **aggregate** — anonymous pools booked by the lounge algorithms (a
      meeting's expected attendees, a cafeteria's predicted handoff count),
      keyed by a tag so they can be resized or withdrawn.

    On top sits the ``B_dyn`` pool, clamped to ``[min_fraction,
    max_fraction]`` of the link capacity.

    ``on_change`` (when set) fires after every mutation that actually
    changes the ledger state — the resource manager subscribes it to mark
    the owning cell dirty for the incremental refresh path.  Mutations that
    leave the ledger unchanged (re-reserving the same amount, drawing zero)
    do not fire it, so a steady-state cell generates no dirt.
    """

    def __init__(
        self,
        link: Link,
        min_pool_fraction: float = 0.05,
        max_pool_fraction: float = 0.20,
    ):
        if not 0.0 <= min_pool_fraction <= max_pool_fraction <= 1.0:
            raise ValueError(
                "need 0 <= min_pool_fraction <= max_pool_fraction <= 1"
            )
        self.link = link
        self.min_pool_fraction = min_pool_fraction
        self.max_pool_fraction = max_pool_fraction
        self._targeted: Dict[Hashable, float] = {}
        self._aggregate: Dict[Hashable, float] = {}
        self._pool: float = min_pool_fraction * link.capacity
        #: Cached component totals (None = stale, recompute on next read).
        self._targeted_cache: Optional[float] = 0.0
        self._aggregate_cache: Optional[float] = 0.0
        #: Observer fired after every state-changing mutation.
        self.on_change: Optional[Callable[[], None]] = None
        link.bind_reserved_source(self._reserved_now)

    # -- introspection ----------------------------------------------------------

    @property
    def pool(self) -> float:
        """The current ``B_dyn`` pool size."""
        return self._pool

    @property
    def targeted_total(self) -> float:
        total = self._targeted_cache
        if total is None:
            total = sum(self._targeted.values())
            self._targeted_cache = total
        return total

    @property
    def aggregate_total(self) -> float:
        total = self._aggregate_cache
        if total is None:
            total = sum(self._aggregate.values())
            self._aggregate_cache = total
        return total

    @property
    def total(self) -> float:
        """Everything counted against ``b_resv,l`` on the wireless link."""
        return self._pool + self.targeted_total + self.aggregate_total

    def targeted_for(self, portable_id: Hashable) -> float:
        return self._targeted.get(portable_id, 0.0)

    def aggregate_for(self, tag: Hashable) -> float:
        return self._aggregate.get(tag, 0.0)

    # -- targeted reservations -----------------------------------------------------

    def reserve_for_portable(self, portable_id: Hashable, amount: float) -> None:
        """Book (replace) the advance reservation for a predicted handoff.

        A zero amount removes the entry (sparse ledger: zero reservations
        are never stored).
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        if amount == 0.0:
            if self._targeted.pop(portable_id, None) is None:
                return
        else:
            if self._targeted.get(portable_id) == amount:
                return
            self._targeted[portable_id] = amount
        self._targeted_cache = None
        self._notify()

    def release_portable(self, portable_id: Hashable) -> float:
        """Withdraw a targeted reservation (wrong prediction / departure)."""
        amount = self._targeted.pop(portable_id, 0.0)
        if amount != 0.0:
            self._targeted_cache = None
            self._notify()
        return amount

    def claim_portable(self, portable_id: Hashable) -> float:
        """The portable arrived: convert its reservation into admission headroom.

        Returns the claimable bandwidth; the reservation is consumed (the
        admission controller re-books the connection as an ongoing one).
        A zero claim means the prediction missed — no reservation awaited
        this portable here (the reservation-miss the trace records).
        """
        amount = self.release_portable(portable_id)
        hit = amount > 0.0
        tracer = get_tracer()
        if tracer is not None:
            tracer.emit(
                "reservation.claim",
                portable=str(portable_id),
                amount=amount,
                hit=hit,
                link=[str(k) for k in self.link.key],
            )
        get_registry().counter(
            "reservation_claims_total", hit=hit
        ).inc()
        return amount

    # -- aggregate reservations -------------------------------------------------------

    def reserve_aggregate(self, tag: Hashable, amount: float) -> None:
        """Set the anonymous pool booked under ``tag`` (0 removes it)."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        if amount == 0:
            if self._aggregate.pop(tag, None) is None:
                return
        else:
            if self._aggregate.get(tag) == amount:
                return
            self._aggregate[tag] = amount
        self._aggregate_cache = None
        self._notify()

    def release_aggregate(self, tag: Hashable) -> float:
        amount = self._aggregate.pop(tag, 0.0)
        if amount != 0.0:
            self._aggregate_cache = None
            self._notify()
        return amount

    def draw_aggregate(self, tag: Hashable, amount: float) -> float:
        """Consume up to ``amount`` from an aggregate pool (handoff arrival).

        Returns how much was actually drawn.
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        available = self._aggregate.get(tag)
        if available is None:
            return 0.0
        drawn = min(available, amount)
        remaining = available - drawn
        if remaining <= 1e-12:
            self._aggregate.pop(tag, None)
        elif drawn == 0.0:
            return 0.0  # nothing moved; the entry stays as it was
        else:
            self._aggregate[tag] = remaining
        self._aggregate_cache = None
        self._notify()
        return drawn

    # -- the B_dyn pool ----------------------------------------------------------------

    def set_pool(self, amount: float) -> float:
        """Resize ``B_dyn``, clamped to the configured fraction band."""
        low = self.min_pool_fraction * self.link.capacity
        high = self.max_pool_fraction * self.link.capacity
        clamped = min(high, max(low, amount))
        if clamped != self._pool:
            self._pool = clamped
            self._notify()
        return self._pool

    def adapt_pool_for_static_neighbors(self, max_static_rate: float) -> float:
        """Section 5.3's pool policy.

        ``B_dyn`` must accommodate at least one connection at the maximum
        allocated bandwidth among static portables residing in neighboring
        cells (their sudden movement arrives without advance reservation).
        """
        if max_static_rate < 0:
            raise ValueError(
                f"max_static_rate must be non-negative, got {max_static_rate}"
            )
        return self.set_pool(max_static_rate)

    def draw_pool(self, amount: float) -> float:
        """Consume pool headroom for an unforeseen arrival.

        The pool may drop below the minimum fraction transiently; callers
        should restore it via :meth:`set_pool` when capacity frees up.
        Returns the amount actually drawn.
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        drawn = min(self._pool, amount)
        if drawn != 0.0:
            self._pool -= drawn
            self._notify()
        return drawn

    # -- internals -------------------------------------------------------------------

    def _reserved_now(self) -> float:
        """Lazy ``b_resv,l`` provider bound into the link."""
        return self._pool + self.targeted_total + self.aggregate_total

    def _notify(self) -> None:
        observer = self.on_change
        if observer is not None:
            observer()
