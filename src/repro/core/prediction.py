"""Next-cell prediction (Section 6) and handoff-count predictors.

Three-level next-cell prediction for a mobile portable:

1. **Portable profile** — look up the (previous, current) triplet in the
   portable's own aggregated history.
2. **Cell profile** — if a neighboring office lists the portable as a
   regular occupant, nominate that office; otherwise use the cell's
   aggregate handoff history.
3. **Default** — no per-portable prediction; the cell falls back to the
   probabilistic advance-reservation algorithm (Section 6.3).

Handoff-*count* predictors for lounges:

* cafeteria — least-squares linear extrapolation over the last 3 slots,
* default — one-step memory (tomorrow equals today).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable, Optional, Sequence

from ..profiles.records import CellClass, CellProfile, PortableProfile

__all__ = [
    "PredictionLevel",
    "Prediction",
    "NextCellPredictor",
    "ProfileAwarePredictor",
    "linear_ls_fit",
    "linear_ls_predict",
    "paper_printed_predict",
    "one_step_memory_predict",
]


class PredictionLevel(Enum):
    """Which of the three levels produced the prediction."""

    PORTABLE_PROFILE = 1
    CELL_PROFILE = 2
    DEFAULT = 3


@dataclass(frozen=True)
class Prediction:
    """A next-cell prediction with its provenance.

    ``cell`` is None at level DEFAULT (no specific cell nominated; the
    default advance-reservation algorithm takes over).
    """

    cell: Optional[Hashable]
    level: PredictionLevel


class NextCellPredictor:
    """The three-level predictor over portable and cell profiles."""

    def predict(
        self,
        portable_profile: Optional[PortableProfile],
        cell_profile: Optional[CellProfile],
        portable_id: Hashable,
        previous_cell: Optional[Hashable],
        current_cell: Hashable,
    ) -> Prediction:
        """Run the level cascade for one mobile portable."""
        # Level 1: the portable's own (prev, cur) -> next triplet.
        if portable_profile is not None:
            nxt = portable_profile.next_predicted(previous_cell, current_cell)
            if nxt is not None:
                return Prediction(nxt, PredictionLevel.PORTABLE_PROFILE)

        # Level 2: cell profile aggregate history.  (The occupant rule needs
        # neighbor profiles; :class:`ProfileAwarePredictor` implements it.)
        if cell_profile is not None:
            nxt = cell_profile.predict_next(previous_cell)
            if nxt is not None:
                return Prediction(nxt, PredictionLevel.CELL_PROFILE)

        # Level 3: give up on a specific cell.
        return Prediction(None, PredictionLevel.DEFAULT)


class ProfileAwarePredictor(NextCellPredictor):
    """Predictor wired to a profile server (resolves occupant lookups)."""

    def __init__(self, server):
        self.server = server

    def predict_for(
        self,
        portable_id: Hashable,
        current_cell: Hashable,
        previous_cell: Optional[Hashable] = None,
        levels: tuple = (1, 2),
    ) -> Prediction:
        """Run the cascade; ``levels`` selectively disables stages (ablation)."""
        portable_profile = self.server.portables.get(portable_id)
        cell_profile = self.server.cells.get(current_cell)
        if previous_cell is None:
            previous_cell, _cur = self.server.context_of(portable_id)

        # Level 1.
        if 1 in levels and portable_profile is not None:
            nxt = portable_profile.next_predicted(previous_cell, current_cell)
            if nxt is not None:
                return Prediction(nxt, PredictionLevel.PORTABLE_PROFILE)

        # Level 2: occupant rule with real neighbor profiles.
        if 2 in levels and cell_profile is not None:
            for neighbor in sorted(cell_profile.neighbors, key=repr):
                neighbor_profile = self.server.cells.get(neighbor)
                if (
                    neighbor_profile is not None
                    and neighbor_profile.cell_class is CellClass.OFFICE
                    and neighbor_profile.is_occupant(portable_id)
                ):
                    return Prediction(neighbor, PredictionLevel.CELL_PROFILE)
            nxt = cell_profile.predict_next(previous_cell)
            if nxt is not None:
                return Prediction(nxt, PredictionLevel.CELL_PROFILE)

        return Prediction(None, PredictionLevel.DEFAULT)


# -- handoff-count predictors -----------------------------------------------------


def linear_ls_fit(samples: Sequence[float], t: float = 0.0):
    """Least-squares line through the last 3 slot counts.

    ``samples`` are ``(n_{t-2}, n_{t-1}, n_t)``, observed at times
    ``t-2, t-1, t``.  Returns ``(a, m)`` of the model ``n = a*x + m``.

    The slope matches the paper: ``a = (n_t - n_{t-2}) / 2``.  The printed
    intercept formula ``m = ((5+3t) n_{t-2} + 2 n_{t-1} - (3t+1) n_t) / 6``
    is a typo — substituting it into ``a*(t+1) + m`` collapses the
    "prediction" to the 3-point mean, which contradicts the stated linear
    model.  We use the correct LS intercept ``m = mean - a*(t-1)``; the
    printed version is available as :func:`paper_printed_predict` for
    comparison.
    """
    if len(samples) != 3:
        raise ValueError(f"need exactly 3 samples, got {len(samples)}")
    n_tm2, n_tm1, n_t = samples
    a = (n_t - n_tm2) / 2.0
    mean = (n_tm2 + n_tm1 + n_t) / 3.0
    m = mean - a * (t - 1.0)
    return a, m


def linear_ls_predict(samples: Sequence[float], t: float = 0.0) -> float:
    """Cafeteria predictor: ``N_handoff(t+1) = a*(t+1) + m`` (clamped >= 0)."""
    a, m = linear_ls_fit(samples, t)
    return max(0.0, a * (t + 1.0) + m)


def paper_printed_predict(samples: Sequence[float], t: float = 0.0) -> float:
    """The intercept formula exactly as printed in Section 6.2.2.

    Provided for fidelity checks; algebraically this always returns the
    mean of the three samples (see :func:`linear_ls_fit`).
    """
    if len(samples) != 3:
        raise ValueError(f"need exactly 3 samples, got {len(samples)}")
    n_tm2, n_tm1, n_t = samples
    a = (n_t - n_tm2) / 2.0
    m = ((5 + 3 * t) * n_tm2 + 2 * n_tm1 - (3 * t + 1) * n_t) / 6.0
    return max(0.0, a * (t + 1.0) + m)


def one_step_memory_predict(current_count: float) -> float:
    """Default-lounge predictor: ``N_handoff(t+1) = N_handoff(t)``."""
    if current_count < 0:
        raise ValueError(f"count must be non-negative, got {current_count}")
    return float(current_count)
