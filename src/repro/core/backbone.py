"""End-to-end backbone management: routing, admission, neighbor multicast.

Section 4 of the paper: besides admitting the primary route, "the backbone
network will also set up multicast routes for the connection in all
neighboring cells so that the network can multicast the packets to the
pre-allocated buffer space in these neighbors".  These multicast branches
run the same end-to-end admission test (at the minimum pre-negotiated QoS),
but their failure never rejects the primary connection — failed branches
are simply served without reserved buffers.

On handoff, the multicast tree is re-rooted at the new cell's base station
and the branch reservations move accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..network.multicast import MulticastTree, build_neighbor_multicast
from ..network.routing import NoRouteError, qos_route
from ..network.scheduling import Discipline
from ..network.topology import Topology
from ..traffic.connection import Connection
from .admission import AdmissionController, AdmissionResult

__all__ = ["BackboneSetup", "BackboneManager"]


@dataclass
class BackboneSetup:
    """Everything the backbone committed for one connection."""

    conn: Connection
    result: AdmissionResult
    route: List[Hashable]
    tree: Optional[MulticastTree] = None
    #: Branch admission outcomes keyed by leaf base station.
    branch_results: Dict[Hashable, AdmissionResult] = field(default_factory=dict)
    #: (link key, buffer amount) pairs reserved for the multicast branches.
    branch_buffers: List[Tuple[Tuple[Hashable, Hashable], float]] = field(
        default_factory=list
    )

    @property
    def covered_neighbors(self) -> Set[Hashable]:
        """Neighbor base stations with successfully reserved branches."""
        return {
            leaf
            for leaf, result in self.branch_results.items()
            if result.accepted
        }


class BackboneManager:
    """Wired-side connection setup per Section 4.

    Parameters
    ----------
    topo:
        The backbone topology (e.g. :func:`repro.network.campus_backbone`).
    discipline:
        Scheduling discipline for the admission math.
    neighbor_bs:
        Mapping cell id -> list of *neighbor* base-station node ids; drives
        the multicast fan-out from a mobile's current cell.
    """

    def __init__(
        self,
        topo: Topology,
        neighbor_bs: Dict[Hashable, List[Hashable]],
        discipline: Discipline = Discipline.WFQ,
    ):
        self.topo = topo
        self.neighbor_bs = dict(neighbor_bs)
        self.admission = AdmissionController(topo, discipline)
        self.setups: Dict[Hashable, BackboneSetup] = {}

    # -- setup / teardown -----------------------------------------------------------

    def setup_connection(
        self,
        conn: Connection,
        cell_id: Hashable,
        static_portable: bool = False,
        multicast: bool = True,
    ) -> BackboneSetup:
        """Admit ``conn`` end-to-end and pre-provision neighbor branches.

        Returns a setup whose ``result.accepted`` reflects the primary
        admission outcome (``False`` with reason ``"no-route"`` when no
        QoS-feasible route exists).  Branch failures are recorded, never
        raised.
        """
        try:
            route = qos_route(self.topo, conn.src, conn.dst, conn.b_min)
        except NoRouteError:
            conn.block(0.0)
            result = AdmissionResult(accepted=False, reason="no-route")
            return BackboneSetup(conn=conn, result=result, route=[])
        result = self.admission.admit(
            conn, route, static_portable=static_portable
        )
        setup = BackboneSetup(conn=conn, result=result, route=route)
        if result.accepted:
            conn.activate(route, result.granted_rate, 0.0)
            if multicast:
                self._provision_branches(setup, cell_id)
            self.setups[conn.conn_id] = setup
        else:
            conn.block(0.0)
        return setup

    def teardown_connection(self, conn: Connection) -> None:
        """Release the primary route and all branch buffers."""
        setup = self.setups.pop(conn.conn_id, None)
        if setup is None:
            return
        self.admission.release(conn, setup.route)
        self._release_branches(setup)

    # -- handoff -------------------------------------------------------------------------

    def handoff(self, conn: Connection, new_cell: Hashable,
                new_src: Hashable) -> BackboneSetup:
        """Re-admit ``conn`` from ``new_src`` and re-root its multicast tree.

        The handoff admission may claim the branch buffer already reserved
        toward the new cell's base station (the point of multicasting);
        failure drops the connection.
        """
        old = self.setups.pop(conn.conn_id, None)
        if old is None:
            raise KeyError(f"connection {conn.conn_id!r} has no backbone setup")
        self.admission.release(conn, old.route)
        self._release_branches(old)

        try:
            route = qos_route(self.topo, new_src, conn.dst, conn.b_min)
        except NoRouteError:
            conn.drop(0.0)
            raise
        result = self.admission.admit(conn, route, is_handoff=True)
        setup = BackboneSetup(conn=conn, result=result, route=route)
        if not result.accepted:
            conn.drop(0.0)
            return setup
        conn.route = list(route)
        conn.rate = result.granted_rate
        conn.src = new_src
        conn.handoffs += 1
        self._provision_branches(setup, new_cell)
        self.setups[conn.conn_id] = setup
        return setup

    # -- internals ------------------------------------------------------------------------

    def _branch_root(self, route: List[Hashable]) -> Hashable:
        """The base station on the primary route (roots the multicast tree).

        For an uplink route starting at the air interface the root is the
        second hop; otherwise the route's first node.
        """
        if len(route) >= 2 and str(route[0]).startswith("air:"):
            return route[1]
        return route[0]

    def _provision_branches(self, setup: BackboneSetup, cell_id: Hashable) -> None:
        neighbors = self.neighbor_bs.get(cell_id, [])
        if not neighbors:
            return
        root = self._branch_root(setup.route)
        tree = build_neighbor_multicast(self.topo, root, neighbors)
        setup.tree = tree
        conn = setup.conn
        buffer_per_link = conn.qos.flowspec.sigma + conn.qos.flowspec.l_max

        for leaf, path in tree.branches.items():
            links = self.topo.path_links(path)
            if not links:
                # Leaf == root (single-cell island): trivially covered.
                setup.branch_results[leaf] = AdmissionResult(accepted=True)
                continue
            feasible = all(
                link.excess_available >= conn.b_min for link in links
            ) and all(
                link.buffer_available >= buffer_per_link for link in links
            )
            if not feasible:
                setup.branch_results[leaf] = AdmissionResult(
                    accepted=False, reason="branch-capacity"
                )
                tree.failed_leaves.add(leaf)
                continue
            for link in links:
                key = (f"mc:{conn.conn_id}", link.key)
                link.reserve_buffer(key, buffer_per_link)
                setup.branch_buffers.append((link.key, buffer_per_link))
            setup.branch_results[leaf] = AdmissionResult(accepted=True)

    def _release_branches(self, setup: BackboneSetup) -> None:
        seen = set()
        for link_key, _amount in setup.branch_buffers:
            if link_key in seen:
                continue
            seen.add(link_key)
            link = self.topo.link(*link_key)
            link.release_buffer((f"mc:{setup.conn.conn_id}", link_key))
        setup.branch_buffers.clear()
