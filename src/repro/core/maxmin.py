"""Centralized max-min fair allocation of *excess* bandwidth.

Section 5.2: "Our policy for allocation of excess bandwidth is based on the
maxmin optimality criterion ... all connections constrained by a bottleneck
link get an equal share of this bottleneck capacity; ... the bottleneck
resource is utilized up to its capacity."

This module implements the textbook progressive-filling algorithm as the
*reference* allocator: the distributed event-driven protocol in
:mod:`repro.core.adaptation` must converge to the same allocation (Theorem 1),
which the test suite verifies.

All quantities here are **excess** bandwidth, i.e. beyond the guaranteed
``b_min`` floors: a connection's demand is ``b_max - b_min`` (infinite for
unbounded demands) and a link's capacity is ``b'_av,l = C_l - b_resv,l -
sum(b_min,i)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Sequence, Set

from ..obs.trace import get_tracer

__all__ = [
    "MaxMinProblem",
    "maxmin_allocation",
    "is_maxmin_fair",
    "connection_bottlenecks",
    "network_bottleneck_links",
]

_EPS = 1e-9


@dataclass
class MaxMinProblem:
    """A max-min excess-sharing instance.

    Attributes
    ----------
    capacities:
        Excess capacity ``b'_av,l`` per link key.
    demands:
        Excess demand ``b_max - b_min`` per connection id (may be ``inf``).
    paths:
        Link keys traversed by each connection.
    """

    capacities: Dict[Hashable, float] = field(default_factory=dict)
    demands: Dict[Hashable, float] = field(default_factory=dict)
    paths: Dict[Hashable, List[Hashable]] = field(default_factory=dict)

    def add_link(self, link_id: Hashable, capacity: float) -> None:
        if capacity < 0:
            raise ValueError(f"excess capacity must be >= 0, got {capacity}")
        self.capacities[link_id] = float(capacity)

    def add_connection(
        self, conn_id: Hashable, path: Sequence[Hashable], demand: float = float("inf")
    ) -> None:
        if demand < 0:
            raise ValueError(f"demand must be >= 0, got {demand}")
        missing = [link for link in path if link not in self.capacities]
        if missing:
            raise KeyError(f"path uses unknown links: {missing}")
        self.demands[conn_id] = float(demand)
        self.paths[conn_id] = list(path)

    def connections_on(self, link_id: Hashable) -> List[Hashable]:
        return [c for c, path in self.paths.items() if link_id in path]


def maxmin_allocation(problem: MaxMinProblem) -> Dict[Hashable, float]:
    """Progressive filling: the unique max-min fair allocation.

    Raises the common water level for all active connections until each one
    freezes — either its demand is met or some link on its path saturates.
    Runs in O(connections * links) per freezing round.
    """
    allocation: Dict[Hashable, float] = {c: 0.0 for c in problem.demands}
    remaining: Dict[Hashable, float] = dict(problem.capacities)
    active: Set[Hashable] = {
        c for c, d in problem.demands.items() if d > _EPS and problem.paths[c]
    }
    # Zero-demand or pathless connections are frozen at zero immediately.

    tracer = get_tracer()
    round_index = 0
    while active:
        # One deterministic order per round: iterating the ``active`` set
        # directly would visit connections in hash-randomized order, and
        # every float update below must replay identically across processes.
        ordered = sorted(active, key=repr)

        # Count active connections per link.
        load: Dict[Hashable, int] = {}
        for conn in ordered:
            for link_id in problem.paths[conn]:
                load[link_id] = load.get(link_id, 0) + 1

        # The largest uniform increment every active connection can take.
        increment = min(
            remaining[link_id] / count for link_id, count in load.items()
        )
        increment = min(
            increment,
            min(problem.demands[c] - allocation[c] for c in ordered),
        )
        increment = max(increment, 0.0)

        for conn in ordered:
            allocation[conn] += increment
            for link_id in problem.paths[conn]:
                remaining[link_id] -= increment

        # Freeze satisfied connections and those crossing a saturated link.
        frozen = set()
        for conn in ordered:
            if allocation[conn] >= problem.demands[conn] - _EPS:
                frozen.add(conn)
            elif any(
                remaining[link_id] <= _EPS for link_id in problem.paths[conn]
            ):
                frozen.add(conn)
        round_index += 1
        if tracer is not None:
            tracer.emit(
                "maxmin.round",
                round=round_index,
                increment=increment,
                active=len(ordered),
                frozen=[str(c) for c in sorted(frozen, key=repr)],
            )
        if not frozen:
            # Numerical safety: cannot happen for well-posed inputs.
            break
        active -= frozen

    return allocation


def is_maxmin_fair(
    problem: MaxMinProblem, allocation: Mapping[Hashable, float], tol: float = 1e-6
) -> bool:
    """Check the max-min optimality certificate.

    Feasibility plus: every connection not at its demand has a *bottleneck*
    link — saturated, and on which no other connection receives more.
    """
    # Feasibility.
    used: Dict[Hashable, float] = {link: 0.0 for link in problem.capacities}
    for conn, path in problem.paths.items():
        rate = allocation.get(conn, 0.0)
        if rate < -tol or rate > problem.demands[conn] + tol:
            return False
        for link_id in path:
            used[link_id] += rate
    for link_id, total in used.items():
        if total > problem.capacities[link_id] + tol:
            return False

    # Bottleneck certificate for unsatisfied connections.
    for conn, path in problem.paths.items():
        rate = allocation.get(conn, 0.0)
        if rate >= problem.demands[conn] - tol:
            continue
        has_bottleneck = False
        for link_id in path:
            saturated = used[link_id] >= problem.capacities[link_id] - tol
            no_one_bigger = all(
                allocation.get(other, 0.0) <= rate + tol
                for other in problem.connections_on(link_id)
            )
            if saturated and no_one_bigger:
                has_bottleneck = True
                break
        if not has_bottleneck:
            return False
    return True


def connection_bottlenecks(
    problem: MaxMinProblem, allocation: Mapping[Hashable, float]
) -> Dict[Hashable, Hashable]:
    """The paper's "connection bottleneck link" per unsatisfied connection.

    Section 5.2: link ``l`` is a connection bottleneck for unsatisfied ``j``
    if the excess available to ``j`` is minimal at ``l`` along its path.  We
    measure "excess available to j at l" as the link's leftover capacity plus
    j's own share there (what j could get if everyone else held still).
    """
    used: Dict[Hashable, float] = {link: 0.0 for link in problem.capacities}
    for conn, path in problem.paths.items():
        for link_id in path:
            used[link_id] += allocation.get(conn, 0.0)

    result: Dict[Hashable, Hashable] = {}
    for conn, path in problem.paths.items():
        rate = allocation.get(conn, 0.0)
        if rate >= problem.demands[conn] - _EPS or not path:
            continue
        # Prefer the certificate link: saturated, and no co-resident
        # connection receives more than this one.
        certified = None
        for link_id in path:
            saturated = used[link_id] >= problem.capacities[link_id] - _EPS
            no_one_bigger = all(
                allocation.get(other, 0.0) <= rate + _EPS
                for other in problem.connections_on(link_id)
            )
            if saturated and no_one_bigger:
                certified = link_id
                break
        if certified is not None:
            result[conn] = certified
            continue
        # Fallback (non-equilibrium allocations): the link where the excess
        # available to this connection is minimal, per Section 5.2.
        available = {
            link_id: problem.capacities[link_id] - used[link_id] + rate
            for link_id in path
        }
        result[conn] = min(available, key=lambda k: (available[k], str(k)))
    return result


def network_bottleneck_links(
    problem: MaxMinProblem, allocation: Mapping[Hashable, float], tol: float = 1e-6
) -> List[Hashable]:
    """Links that are saturated and equalize their unsatisfied connections.

    A network bottleneck is a bottleneck for *all* connections through it
    (Section 5.2's recursive definition collapses to this certificate once
    the allocation is max-min fair).
    """
    used: Dict[Hashable, float] = {link: 0.0 for link in problem.capacities}
    for conn, path in problem.paths.items():
        for link_id in path:
            used[link_id] += allocation.get(conn, 0.0)

    bottlenecks = []
    for link_id, capacity in problem.capacities.items():
        conns = problem.connections_on(link_id)
        unsatisfied = [
            c
            for c in conns
            if allocation.get(c, 0.0) < problem.demands[c] - tol
        ]
        if not unsatisfied:
            continue
        if used[link_id] < capacity - tol:
            continue
        top = max(allocation.get(c, 0.0) for c in conns)
        if all(abs(allocation.get(c, 0.0) - top) <= tol for c in unsatisfied):
            bottlenecks.append(link_id)
    return bottlenecks
