"""Cell-type learning (Section 6.4, final paragraph).

A cell without a profile initially runs the default reservation algorithm
while the profile server aggregates its handoff behavior and "tries to
categorize the cell on basis of its profile behavior".  This module
implements that learning process as feature extraction over the observed
behavior plus a transparent rule cascade:

========  =============================================================
office    a small set of users accounts for nearly all activity
corridor  movement is directional: the previous cell almost determines
          the next, and dwell times are short
meeting   activity is spiky: long quiet stretches, bursts near schedule
          boundaries (high peak-to-mean, many empty slots)
cafeteria activity varies slowly: adjacent slots are similar, and the
          3-point linear extrapolation beats one-step memory
default   anything else
========  =============================================================
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, Mapping, Optional, Sequence, Tuple

from ..profiles.records import CellClass
from .prediction import linear_ls_predict, one_step_memory_predict

__all__ = [
    "CellFeatures",
    "extract_features",
    "CellBehaviorClassifier",
    "CellTypeLearner",
]


@dataclass(frozen=True)
class CellFeatures:
    """Behavior features computed from a cell's observation window."""

    #: Share of handoffs from the most active ``k`` users (k = 5).
    top_user_share: float
    #: Number of distinct users observed.
    distinct_users: int
    #: Max over previous-cells of the next-cell concentration
    #: (1.0 = previous cell fully determines the next cell).
    directionality: float
    #: Mean dwell time, normalized by the slot duration.
    mean_dwell_slots: float
    #: Peak slot count divided by the overall mean slot count.
    peak_to_mean: float
    #: Fraction of slots with zero handoffs.
    quiet_fraction: float
    #: Mean |n_t - n_{t-1}| / (mean count + 1): slot-to-slot roughness.
    roughness: float
    #: Linear-model advantage: one-step MAE minus LS MAE, normalized.
    linear_advantage: float


def _prediction_errors(counts: Sequence[float]):
    """Mean absolute error of LS-linear and one-step predictors over counts."""
    ls_err, onestep_err, n = 0.0, 0.0, 0
    for i in range(3, len(counts)):
        window = counts[i - 3 : i]
        ls_err += abs(linear_ls_predict(window) - counts[i])
        onestep_err += abs(one_step_memory_predict(counts[i - 1]) - counts[i])
        n += 1
    if n == 0:
        return 0.0, 0.0
    return ls_err / n, onestep_err / n


def extract_features(
    slot_counts: Sequence[float],
    user_visits: Mapping[Hashable, int],
    transitions: Mapping[Hashable, Mapping[Hashable, int]],
    mean_dwell_slots: float,
    top_k: int = 5,
) -> CellFeatures:
    """Compute :class:`CellFeatures` from raw observation aggregates.

    ``slot_counts`` are per-slot handoff counts; ``user_visits`` maps user ->
    visit count; ``transitions`` maps previous-cell -> {next-cell: count}.
    """
    total_visits = sum(user_visits.values())
    if total_visits > 0:
        top = sorted(user_visits.values(), reverse=True)[:top_k]
        top_user_share = sum(top) / total_visits
    else:
        top_user_share = 0.0

    directionality = 0.0
    for nexts in transitions.values():
        total = sum(nexts.values())
        if total >= 3:  # require a minimal sample per context
            directionality = max(directionality, max(nexts.values()) / total)

    counts = list(slot_counts)
    mean_count = sum(counts) / len(counts) if counts else 0.0
    peak_to_mean = (max(counts) / mean_count) if mean_count > 0 else 0.0
    quiet_fraction = (
        sum(1 for c in counts if c == 0) / len(counts) if counts else 1.0
    )
    diffs = [abs(b - a) for a, b in zip(counts, counts[1:])]
    roughness = (sum(diffs) / len(diffs)) / (mean_count + 1.0) if diffs else 0.0

    ls_err, onestep_err = _prediction_errors(counts)
    linear_advantage = (onestep_err - ls_err) / (mean_count + 1.0)

    return CellFeatures(
        top_user_share=top_user_share,
        distinct_users=len(user_visits),
        directionality=directionality,
        mean_dwell_slots=mean_dwell_slots,
        peak_to_mean=peak_to_mean,
        quiet_fraction=quiet_fraction,
        roughness=roughness,
        linear_advantage=linear_advantage,
    )


class CellBehaviorClassifier:
    """Rule-cascade classifier from :class:`CellFeatures` to a cell class.

    Thresholds are deliberately explicit attributes so deployments can tune
    them; the defaults separate the synthetic behaviors our mobility models
    generate (see ``tests/core/test_classifier.py``).
    """

    def __init__(
        self,
        office_user_share: float = 0.8,
        office_max_users: int = 8,
        corridor_directionality: float = 0.7,
        corridor_max_dwell_slots: float = 1.0,
        meeting_peak_to_mean: float = 3.0,
        meeting_quiet_fraction: float = 0.6,
        cafeteria_max_roughness: float = 0.35,
        min_observations: int = 12,
    ):
        self.office_user_share = office_user_share
        self.office_max_users = office_max_users
        self.corridor_directionality = corridor_directionality
        self.corridor_max_dwell_slots = corridor_max_dwell_slots
        self.meeting_peak_to_mean = meeting_peak_to_mean
        self.meeting_quiet_fraction = meeting_quiet_fraction
        self.cafeteria_max_roughness = cafeteria_max_roughness
        self.min_observations = min_observations

    def classify(
        self, features: CellFeatures, observations: Optional[int] = None
    ) -> CellClass:
        """Assign a class; UNKNOWN while the sample is too small."""
        if observations is not None and observations < self.min_observations:
            return CellClass.UNKNOWN

        if (
            features.top_user_share >= self.office_user_share
            and features.distinct_users <= self.office_max_users
        ):
            return CellClass.OFFICE

        if (
            features.directionality >= self.corridor_directionality
            and features.mean_dwell_slots <= self.corridor_max_dwell_slots
        ):
            return CellClass.CORRIDOR

        if (
            features.peak_to_mean >= self.meeting_peak_to_mean
            and features.quiet_fraction >= self.meeting_quiet_fraction
        ):
            return CellClass.MEETING_ROOM

        if features.roughness <= self.cafeteria_max_roughness:
            return CellClass.CAFETERIA

        return CellClass.DEFAULT


class CellTypeLearner:
    """Online cell-type learning (the final paragraph of Section 6.4).

    "In the case that a cell does not have its cell profile, the base
    station has to execute the default reservation algorithm initially;
    meanwhile ... the profile server aggregates the handoff information for
    the cell ... and tries to categorize the cell on basis of its profile
    behavior."

    Feed it handoff observations (:meth:`observe_handoff`) and close time
    slots (:meth:`close_slot`, e.g. every minute); :meth:`classify` runs the
    rule cascade once enough behavior has accumulated.  Until then the cell
    reports :attr:`~repro.profiles.records.CellClass.UNKNOWN` and should be
    driven by the default reservation algorithm.
    """

    def __init__(
        self,
        cell_id: Hashable,
        classifier: Optional[CellBehaviorClassifier] = None,
        slot_window: int = 96,
        slot_duration: float = 60.0,
    ):
        if slot_window < 4:
            raise ValueError(f"slot_window must be >= 4, got {slot_window}")
        self.cell_id = cell_id
        self.classifier = classifier or CellBehaviorClassifier()
        self.slot_duration = slot_duration
        self._slots: Deque[int] = deque(maxlen=slot_window)
        self._current_slot = 0
        self._user_visits: Counter = Counter()
        self._transitions: Dict[Hashable, Counter] = {}
        self._dwells: Deque[float] = deque(maxlen=500)
        self._entries: Dict[Hashable, Tuple[Optional[Hashable], float]] = {}
        self.observations = 0

    # -- feeding observations --------------------------------------------------

    def observe_entry(
        self, portable_id: Hashable, from_cell: Optional[Hashable], now: float
    ) -> None:
        """A portable handed *into* this cell."""
        self._entries[portable_id] = (from_cell, now)
        self._user_visits[portable_id] += 1
        self._current_slot += 1
        self.observations += 1

    def observe_exit(
        self, portable_id: Hashable, to_cell: Hashable, now: float
    ) -> None:
        """A portable handed *out of* this cell."""
        previous, entered_at = self._entries.pop(portable_id, (None, now))
        self._dwells.append(max(0.0, now - entered_at))
        if previous is not None:
            self._transitions.setdefault(previous, Counter())[to_cell] += 1
        self._current_slot += 1
        self.observations += 1

    def close_slot(self) -> int:
        """End the current time slot; returns its handoff count."""
        closed = self._current_slot
        self._slots.append(closed)
        self._current_slot = 0
        return closed

    # -- classification ------------------------------------------------------------

    def features(self) -> CellFeatures:
        mean_dwell = (
            sum(self._dwells) / len(self._dwells) / self.slot_duration
            if self._dwells
            else 0.0
        )
        return extract_features(
            slot_counts=list(self._slots),
            user_visits=dict(self._user_visits),
            transitions={k: dict(v) for k, v in self._transitions.items()},
            mean_dwell_slots=mean_dwell,
        )

    def classify(self) -> CellClass:
        """The current best guess (UNKNOWN while under-observed)."""
        return self.classifier.classify(self.features(), self.observations)
