"""Distributed event-driven bandwidth adaptation (Section 5.3.1).

The paper adapts Charny/Clark/Jain's explicit-rate allocation to mobile
networks: instead of periodic probing, switches initiate adaptation rounds
*on events* (handoffs, capacity changes).  A round for connection ``j``:

1. The initiating switch stamps its advertised rate into two ADVERTISE
   packets and floods them up- and downstream along ``j``'s route.
2. Every switch en route clamps the stamped rate to its own advertised rate,
   updates its recorded rate for ``j``, and maintains the bottleneck set
   ``M(l)`` (connections that consider link ``l`` their bottleneck).
3. Source and destination reflect the packets back to the initiator.
4. After four round trips (sufficient for convergence, per [8]) the
   initiator commits the minimum of the two last stamped rates with UPDATE
   packets along the route.

The refinement (the paper's main protocol contribution) restricts *new*
round initiations: a capacity increase triggers rounds only for connections
in ``M(l)``; a decrease only for connections whose recorded rate exceeds the
new advertised rate.  `benchmarks/bench_ablation_mlist.py` measures the
message savings versus indiscriminate flooding.

Two engineering additions stabilize the event-driven variant (racing rounds
can otherwise commit stale path minima — scenarios found by the
property-based tests):

* **Quiescence sweeps** — whenever a committed rate changes, a sweep is
  scheduled for the next quiet moment; it emulates the original algorithm's
  *periodic source probing* by re-probing (serially) every connection whose
  committed rate disagrees with the minimum advertised rate along its path,
  repeating until a sweep changes nothing.  The "preliminary approach"
  (``use_bottleneck_sets=False``) re-probes indiscriminately instead — the
  overhead gap the M(l) ablation quantifies.
* **Committed-vs-transient separation** — in-flight ADVERTISE stamps update
  the per-link ``recorded`` view (used by the advertised-rate formula) but
  only UPDATE-committed values participate in change detection, so probe
  transients cannot re-trigger sweeps forever.

All rates handled here are **excess** rates (beyond ``b_min``); converting to
absolute rates is the caller's job via the connection's QoS bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..des import Environment
from ..network.signaling import ControlPacket, PacketKind, SignalingNetwork
from ..network.topology import Topology
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..traffic.connection import Connection
from .maxmin import MaxMinProblem, maxmin_allocation

__all__ = ["LinkRateState", "AdaptationProtocol", "compute_advertised_rate"]

_EPS = 1e-9


def compute_advertised_rate(
    capacity: float, recorded: Dict[Hashable, float], mu_prev: float
) -> float:
    """The advertised-rate computation of Section 5.3.1.

    Connections with recorded rates at or below the advertised rate are
    *restricted* (set R) — they are bottlenecked elsewhere or at their
    demand, so the link's leftover is split equally among the others::

        mu = b'_av                          if N == 0
        mu = b'_av - sum(R) + max(R)        if N == N_R
        mu = (b'_av - sum(R)) / (N - N_R)   otherwise

    Per the paper, after the first calculation, connections that became
    unrestricted are unmarked and the rate is recalculated once more (the
    second re-calculation is provably sufficient).
    """
    n = len(recorded)
    if n == 0:
        return max(0.0, capacity)

    def calc(restricted: Set[Hashable]) -> float:
        # Summation order is fixed: float addition over a hash-ordered set
        # would round differently between PYTHONHASHSEED values, breaking
        # the serial == parallel bit-identity contract.
        ordered = sorted(restricted, key=repr)
        n_r = len(ordered)
        sum_r = sum(recorded[c] for c in ordered)
        if n_r == n:
            return capacity - sum_r + max(recorded[c] for c in ordered)
        return (capacity - sum_r) / (n - n_r)

    restricted = {c for c, r in recorded.items() if r <= mu_prev + _EPS}
    mu = calc(restricted)
    # Iterate the marking to a fixed point (the Section 5.2 recursive
    # definition).  The paper notes one re-calculation suffices on the
    # ADVERTISE path; starting from an arbitrary cached mu_prev can need a
    # couple more, and iterating removes marking hysteresis entirely.
    for _ in range(n + 1):
        remarked = {c for c, r in recorded.items() if r <= mu + _EPS}
        if remarked == restricted:
            break
        restricted = remarked
        mu = calc(restricted)
    return max(0.0, mu)


class LinkRateState:
    """Rate-allocation state a switch keeps for one of its outgoing links."""

    def __init__(self, link):
        self.link = link
        #: Last seen stamped (excess) rate per connection on this link.
        self.recorded: Dict[Hashable, float] = {}
        #: The set ``M(l)`` of connections bottlenecked by this link.
        self.bottleneck_set: Set[Hashable] = set()
        self.mu: float = max(0.0, link.excess_available)
        #: Last UPDATE-committed rate per connection (dirty detection uses
        #: this, not the transient in-flight stamps in ``recorded``).
        self.committed: Dict[Hashable, float] = {}

    def set_recorded(self, conn_id: Hashable, rate: float) -> None:
        self.recorded[conn_id] = rate

    def advertised(self) -> float:
        """Recompute (and cache) the advertised rate."""
        self.mu = compute_advertised_rate(
            max(0.0, self.link.excess_available), self.recorded, self.mu
        )
        return self.mu

    def add_connection(self, conn_id: Hashable, initial_rate: float) -> None:
        self.set_recorded(conn_id, initial_rate)

    def remove_connection(self, conn_id: Hashable) -> None:
        self.recorded.pop(conn_id, None)
        self.committed.pop(conn_id, None)
        self.bottleneck_set.discard(conn_id)


@dataclass
class _Round:
    """In-flight state of one adaptation round at its initiator."""

    conn_id: Hashable
    link_key: Tuple[Hashable, Hashable]
    initiator: Hashable
    #: Recorded rate before the round and the target at initiation — used
    #: to detect futile rounds (no change) and suppress identical
    #: re-attempts within one epoch.
    before: float = 0.0
    context: float = 0.0
    trip: int = 1
    stamps: Dict[int, Optional[float]] = field(
        default_factory=lambda: {1: None, -1: None}
    )

    def complete(self) -> bool:
        return all(v is not None for v in self.stamps.values())


class AdaptationProtocol:
    """Runs the distributed adaptation over a topology + signaling plane.

    Parameters
    ----------
    env, topo:
        Simulation environment and the topology whose links are managed.
    signaling:
        Optional custom :class:`SignalingNetwork` (shared message counters).
    delta:
        The adaptation threshold of eqn. (2): upgrades trigger only when
        free capacity exceeds the outstanding shares by more than ``delta``,
        and rounds are suppressed when they would move a rate by less.
    max_trips:
        Round trips per adaptation round (the paper proves 4 suffices).
    use_bottleneck_sets:
        The refinement switch: True = initiate only for ``M(l)`` /
        above-advertised connections; False = flood rounds for every
        connection on the link (the "preliminary approach", kept for the
        overhead ablation).
    """

    def __init__(
        self,
        env: Environment,
        topo: Topology,
        signaling: Optional[SignalingNetwork] = None,
        delta: float = 0.01,
        max_trips: int = 4,
        use_bottleneck_sets: bool = True,
    ):
        self.env = env
        self.topo = topo
        self.signaling = signaling or SignalingNetwork(env, topo)
        self.delta = delta
        self.max_trips = max_trips
        self.use_bottleneck_sets = use_bottleneck_sets

        self.link_states: Dict[Tuple[Hashable, Hashable], LinkRateState] = {
            link.key: LinkRateState(link) for link in topo.links
        }
        self.routes: Dict[Hashable, List[Hashable]] = {}
        self.connections: Dict[Hashable, Connection] = {}
        self.demands: Dict[Hashable, float] = {}

        self._seq = count(1)
        self._rounds: Dict[tuple, _Round] = {}
        self._inflight: Set[Tuple[Hashable, Hashable]] = set()  # (node, conn)
        #: Convergence sweeps: whenever committed rates change, a sweep is
        #: scheduled for the next quiescent moment; it re-evaluates every
        #: link and initiates any rounds still needed.  Sweeps repeat until
        #: one completes without changing anything — the fixed point.
        self._sweep_scheduled = False
        self._dirty = False
        self.sweep_delay = 0.05
        #: Serialized sweep probes: (node, link_key, conn) waiting their turn.
        self._probe_queue: List[Tuple[Hashable, Tuple[Hashable, Hashable], Hashable]] = []
        self.rounds_initiated = 0
        self.safety_cap = 400  # rounds per connection; a diagnostic backstop
        self._round_counts: Dict[Hashable, int] = {}

        for node in topo.nodes:
            node_id = node.node_id
            self.signaling.register(
                node_id, lambda pkt, frm, _n=node_id: self._handle(_n, pkt, frm)
            )

    # -- membership ------------------------------------------------------------

    def register_connection(
        self, conn: Connection, demand: Optional[float] = None, kickoff: bool = True
    ) -> None:
        """Start managing ``conn`` (route must be set).

        ``demand`` is the adaptable excess span; defaults to
        ``b_max - b_min``.  Mobile-portable connections should register with
        ``demand=0`` (they are pinned at the floor).
        """
        if not conn.route:
            raise ValueError(f"connection {conn.conn_id!r} has no route")
        if demand is None:
            demand = conn.qos.bounds.span if conn.qos.bounds else 0.0
        self.routes[conn.conn_id] = list(conn.route)
        self.connections[conn.conn_id] = conn
        self.demands[conn.conn_id] = demand

        initial = max(0.0, conn.rate - conn.b_min) if conn.qos.bounds else 0.0
        initial = min(initial, demand)
        for link in self.topo.path_links(conn.route):
            self.link_states[link.key].add_connection(conn.conn_id, initial)
            if conn.conn_id not in link.allocations:
                link.admit(conn.conn_id, conn.b_min, excess=initial)
            else:
                link.set_excess(conn.conn_id, initial)

        if kickoff and demand > _EPS:
            source = conn.route[0]
            key = (source, conn.route[1])
            self._initiate(source, key, conn.conn_id)
        # A newcomer's floor shrinks everyone's headroom: let affected
        # links re-advertise, then verify with a sweep.
        for link in self.topo.path_links(conn.route):
            self._capacity_changed(link.key, exclude=conn.conn_id)
        self._dirty = True
        self._schedule_sweep()

    def unregister_connection(self, conn: Connection) -> None:
        """Stop managing ``conn`` and release its link shares."""
        route = self.routes.pop(conn.conn_id, None)
        self.connections.pop(conn.conn_id, None)
        self.demands.pop(conn.conn_id, None)
        if not route:
            return
        for link in self.topo.path_links(route):
            self.link_states[link.key].remove_connection(conn.conn_id)
            if conn.conn_id in link.allocations:
                link.release(conn.conn_id)
        for link in self.topo.path_links(route):
            self._capacity_changed(link.key)
        self._dirty = True
        self._schedule_sweep()

    # -- event entry points --------------------------------------------------------

    def notify_capacity_change(self, link_key: Tuple[Hashable, Hashable]) -> None:
        """Tell the protocol that ``b'_av`` changed on a link (eqn. 2)."""
        self._capacity_changed(link_key)
        # The immediate responses above race each other; always follow an
        # external event with (at least) one verification sweep.
        self._dirty = True
        self._schedule_sweep()

    def rate_of(self, conn_id: Hashable) -> float:
        """Converged absolute rate: ``b_min`` + min excess along the route."""
        conn = self.connections[conn_id]
        route = self.routes[conn_id]
        excess = min(
            link.allocations[conn_id].excess
            for link in self.topo.path_links(route)
            if conn_id in link.allocations
        )
        return conn.b_min + excess

    def reference_allocation(self) -> Dict[Hashable, float]:
        """Centralized max-min solution of the current instance (oracle)."""
        problem = MaxMinProblem()
        for link in self.topo.links:
            problem.add_link(link.key, max(0.0, link.excess_available))
        for conn_id, route in self.routes.items():
            problem.add_connection(
                conn_id,
                [link.key for link in self.topo.path_links(route)],
                self.demands[conn_id],
            )
        return maxmin_allocation(problem)

    # -- internals -----------------------------------------------------------------

    def _capacity_changed(
        self, link_key: Tuple[Hashable, Hashable], exclude: Hashable = None
    ) -> None:
        state = self.link_states[link_key]
        if not state.recorded:
            state.advertised()
            return
        outstanding = sum(state.recorded.values())
        avail = max(0.0, state.link.excess_available)
        mu = state.advertised()

        over = {c for c, r in state.recorded.items() if r > mu + _EPS}
        # Consistent marking: a connection recorded below mu that is not at
        # its demand may be mis-marked as "restricted" after racing rounds;
        # re-advertising it either upgrades it or confirms the remote
        # bottleneck (the _initiate target-guard stops repeats).
        under = {
            c
            for c, r in state.recorded.items()
            if r < mu - self.delta
            and r < self.demands.get(c, 0.0) - _EPS
        }

        if over:
            candidates = set(over)
            candidates |= (
                state.bottleneck_set
                if self.use_bottleneck_sets
                else set(state.recorded)
            )
        elif avail >= outstanding + self.delta:
            if self.use_bottleneck_sets:
                if not state.bottleneck_set and not under:
                    return  # eqn (2): M(l) empty — nothing wants more here
                candidates = set(state.bottleneck_set) | under
            else:
                candidates = set(state.recorded)
        elif under:
            candidates = under
        else:
            return

        node = link_key[0]
        for conn_id in sorted(candidates, key=repr):
            if conn_id == exclude:
                continue
            self._initiate(node, link_key, conn_id)

    def _schedule_sweep(self) -> None:
        if self._sweep_scheduled:
            return
        self._sweep_scheduled = True
        from ..des import Event

        event = Event(self.env)
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _ev: self._run_sweep())
        self.env.schedule(event, delay=self.sweep_delay)

    def _run_sweep(self) -> None:
        self._sweep_scheduled = False
        if self._rounds:
            # Rounds still in flight: their completions re-arm the sweep.
            self._schedule_sweep()
            return
        if not self._dirty:
            return
        self._dirty = False
        # Per-connection probes, emulating the periodic source control
        # packets of the original Charny algorithm.  Probes are SERIALIZED
        # (one round at a time, drained via round completions): concurrent
        # probes clamp each other's transient stamps and can settle on
        # stale values.  A remotely-bottlenecked connection sees
        # candidate == rate and stays quiet, so sweeps terminate.
        for conn_id, route in list(self.routes.items()):
            if self.demands.get(conn_id, 0.0) <= _EPS:
                continue
            links = self.topo.path_links(route)
            if not links:
                continue
            rate = min(
                link.allocations[conn_id].excess
                for link in links
                if conn_id in link.allocations
            )
            candidate = min(
                min(
                    self.link_states[link.key].advertised()
                    for link in links
                ),
                self.demands[conn_id],
            )
            if self.use_bottleneck_sets:
                # Refinement: probe only when the path-global view says the
                # committed rate is off.
                if abs(candidate - rate) > self.delta:
                    self._probe_queue.append(
                        (route[0], (route[0], route[1]), conn_id)
                    )
            else:
                # Preliminary approach: probe indiscriminately (remotely
                # bottlenecked connections get re-probed even though the
                # answer cannot change) — the overhead the refinement cuts.
                self._probe_queue.append(
                    (route[0], (route[0], route[1]), conn_id)
                )
        self._drain_probe_queue()

    def _drain_probe_queue(self) -> None:
        """Launch the next queued sweep probe once the wire is quiet."""
        while self._probe_queue and not self._rounds:
            node, link_key, conn_id = self._probe_queue.pop(0)
            if conn_id not in self.routes:
                continue
            self._initiate(node, link_key, conn_id)
        if not self._probe_queue and not self._rounds:
            # Sweep finished: if the settled state still disagrees with the
            # links' (now final) advertised rates, run another sweep.
            if self._converged_view_mismatch():
                self._dirty = True
                self._schedule_sweep()

    def _converged_view_mismatch(self) -> bool:
        """True if some connection's rate is off its path-min advertised rate."""
        for conn_id, route in self.routes.items():
            if self.demands.get(conn_id, 0.0) <= _EPS:
                continue
            links = self.topo.path_links(route)
            if not links:
                continue
            rate = min(
                link.allocations[conn_id].excess
                for link in links
                if conn_id in link.allocations
            )
            candidate = min(
                min(self.link_states[link.key].advertised() for link in links),
                self.demands[conn_id],
            )
            if abs(candidate - rate) > self.delta:
                return True
        return False

    def _initiate(
        self,
        node: Hashable,
        link_key: Tuple[Hashable, Hashable],
        conn_id: Hashable,
    ) -> None:
        if conn_id not in self.routes:
            return
        if (node, conn_id) in self._inflight:
            return
        state = self.link_states[link_key]
        mu = state.advertised()
        target = min(mu, self.demands[conn_id])
        recorded = state.recorded.get(conn_id, 0.0)
        if abs(target - recorded) <= self.delta and self._round_counts.get(conn_id):
            return  # already within delta of this link's view
        if self._round_counts.get(conn_id, 0) >= self.safety_cap:
            return  # diagnostic backstop against pathological churn

        self._round_counts[conn_id] = self._round_counts.get(conn_id, 0) + 1
        self.rounds_initiated += 1
        self._inflight.add((node, conn_id))

        tracer = get_tracer()
        if tracer is not None:
            tracer.emit(
                "adaptation.round.start",
                t=self.env.now,
                conn=str(conn_id),
                link=[str(k) for k in link_key],
                target=target,
                recorded=recorded,
                restricted=sorted(
                    str(c)
                    for c, r in state.recorded.items()
                    if r <= mu + _EPS
                ),
            )
        get_registry().counter("adaptation_rounds_total").inc()

        gid = (node, next(self._seq))
        rnd = _Round(
            conn_id=conn_id,
            link_key=link_key,
            initiator=node,
            before=recorded,
            context=target,
        )
        self._rounds[gid] = rnd
        # The desired rate travels in the packet; the local recorded value
        # is only committed when the round concludes (writing the transient
        # target here would churn other initiators' repeat-round guards).
        self._launch_trip(rnd, gid, target)

    def _launch_trip(self, rnd: _Round, gid: tuple, stamp: float) -> None:
        for direction in (1, -1):
            packet = ControlPacket(
                kind=PacketKind.ADVERTISE,
                conn_id=rnd.conn_id,
                stamped_rate=stamp,
                direction=direction,
                originator=rnd.initiator,
                global_id=gid,
                trip=rnd.trip,
            )
            self._forward(rnd.initiator, packet)

    def _route_next_hop(
        self, node: Hashable, packet: ControlPacket
    ) -> Optional[Hashable]:
        route = self.routes.get(packet.conn_id)
        if route is None or node not in route:
            return None
        index = route.index(node)
        returning = packet.meta.get("returning", False)
        step = packet.direction * (-1 if returning else 1)
        target = index + step
        if 0 <= target < len(route):
            return route[target]
        return None

    def _forward(self, node: Hashable, packet: ControlPacket) -> None:
        nxt = self._route_next_hop(node, packet)
        if nxt is None:
            # End of the route in this travel orientation.
            if packet.kind is PacketKind.ADVERTISE and not packet.meta.get(
                "returning"
            ):
                reflected = packet.copy_with(meta={"returning": True})
                self._forward(node, reflected)
            elif packet.meta.get("returning") and node == packet.originator:
                self._reflection_arrived(packet)
            return
        if packet.meta.get("returning") and node == packet.originator:
            self._reflection_arrived(packet)
            return
        self.signaling.send(node, nxt, packet)

    def _handle(self, node: Hashable, packet: ControlPacket, from_node) -> None:
        if packet.conn_id not in self.routes:
            return  # connection vanished mid-flight
        if packet.meta.get("returning") and node == packet.originator:
            self._reflection_arrived(packet)
            return
        if packet.kind is PacketKind.ADVERTISE:
            self._process_advertise(node, packet)
        else:
            self._process_update(node, packet)

    def _owned_link_key(self, node: Hashable, conn_id: Hashable):
        route = self.routes[conn_id]
        index = route.index(node)
        if index + 1 < len(route):
            return (route[index], route[index + 1])
        return None

    def _process_advertise(self, node: Hashable, packet: ControlPacket) -> None:
        key = self._owned_link_key(node, packet.conn_id)
        if key is not None and node != packet.originator:
            state = self.link_states[key]
            mu = state.advertised()
            old = state.recorded.get(packet.conn_id)
            stamp = packet.stamped_rate
            if stamp >= mu - _EPS:
                stamp = mu
                state.bottleneck_set.add(packet.conn_id)
            else:
                state.bottleneck_set.discard(packet.conn_id)
            stamp = min(stamp, self.demands[packet.conn_id])
            packet.stamped_rate = stamp
            state.set_recorded(packet.conn_id, stamp)
            state.advertised()
            tracer = get_tracer()
            if tracer is not None:
                tracer.emit(
                    "adaptation.advertise",
                    t=self.env.now,
                    node=str(node),
                    conn=str(packet.conn_id),
                    stamp=stamp,
                    mu=mu,
                    bottlenecked=packet.conn_id in state.bottleneck_set,
                )

        self._forward(node, packet)

    def _process_update(self, node: Hashable, packet: ControlPacket) -> None:
        key = self._owned_link_key(node, packet.conn_id)
        if key is not None:
            self._apply_rate(key, packet.conn_id, packet.stamped_rate)
        self._forward(node, packet)

    def _apply_rate(self, link_key, conn_id: Hashable, rate: float) -> None:
        state = self.link_states[link_key]
        previous = state.committed.get(conn_id)
        changed = previous is None or abs(previous - rate) > _EPS
        state.committed[conn_id] = rate
        state.set_recorded(conn_id, rate)
        link = state.link
        if conn_id in link.allocations:
            link.set_excess(conn_id, rate)
        mu = state.advertised()
        if mu <= rate + _EPS:
            state.bottleneck_set.add(conn_id)
        else:
            state.bottleneck_set.discard(conn_id)
        if changed:
            # Something moved: schedule a convergence sweep for the next
            # quiescent moment (racing rounds can commit stale minima; the
            # sweep re-evaluates every link until nothing changes).
            self._dirty = True
            self._schedule_sweep()

    def _reflection_arrived(self, packet: ControlPacket) -> None:
        rnd = self._rounds.get(packet.global_id)
        if rnd is None:
            return
        rnd.stamps[packet.direction] = packet.stamped_rate
        if not rnd.complete():
            return

        final = min(v for v in rnd.stamps.values() if v is not None)
        if rnd.trip < self.max_trips:
            rnd.trip += 1
            rnd.stamps = {1: None, -1: None}
            state = self.link_states[rnd.link_key]
            mu = state.advertised()
            # Stamps are monotone *within* a round (min-fold with the trip's
            # result): rounds settle fast and commit a consistent path
            # minimum.  Upward recovery after transient clamps happens
            # *across* rounds — the quiescence sweep re-initiates with a
            # fresh advertised rate.
            stamp = min(final, mu, self.demands[rnd.conn_id])
            self._launch_trip(rnd, packet.global_id, stamp)
            return

        # Round complete: commit with UPDATE packets in both directions.
        del self._rounds[packet.global_id]
        self._inflight.discard((rnd.initiator, rnd.conn_id))
        tracer = get_tracer()
        if tracer is not None:
            tracer.emit(
                "adaptation.round.commit",
                t=self.env.now,
                conn=str(rnd.conn_id),
                link=[str(k) for k in rnd.link_key],
                rate=final,
                trips=rnd.trip,
                rounds_total=self.rounds_initiated,
            )
        self._apply_rate(rnd.link_key, rnd.conn_id, final)
        conn = self.connections.get(rnd.conn_id)
        if conn is not None and conn.qos.bounds is not None:
            conn.rate = conn.qos.bounds.clamp(conn.b_min + final)
        for direction in (1, -1):
            update = ControlPacket(
                kind=PacketKind.UPDATE,
                conn_id=rnd.conn_id,
                stamped_rate=final,
                direction=direction,
                originator=rnd.initiator,
                global_id=(rnd.initiator, next(self._seq)),
            )
            self._forward(rnd.initiator, update)
        # Serialized sweep probes resume once this round is done.
        self._drain_probe_queue()
