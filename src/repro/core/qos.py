"""Loose QoS bounds — the paper's central service abstraction.

A connection negotiates a *range* ``[b_min, b_max]`` of acceptable bandwidth
plus hard end-to-end bounds on delay, delay-jitter, and packet loss.  The
network guarantees ``b_min`` and adapts the actual allocation within the
range (Section 2.1: "the guaranteed service and the best-effort service can
be unified in a single framework").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..traffic.flowspec import FlowSpec

__all__ = ["QoSBounds", "QoSRequest", "ServiceClass", "audio_request", "video_request"]


@dataclass(frozen=True)
class QoSBounds:
    """The negotiated bandwidth range ``[b_min, b_max]``.

    ``b_min`` is the guaranteed floor (what admission control commits to and
    what advance reservation books in the next-predicted cell); ``b_max``
    caps how far adaptation may upgrade the connection.
    """

    b_min: float
    b_max: float

    def __post_init__(self):
        if self.b_min <= 0:
            raise ValueError(f"b_min must be positive, got {self.b_min}")
        if self.b_max < self.b_min:
            raise ValueError(
                f"b_max ({self.b_max}) must be >= b_min ({self.b_min})"
            )

    @property
    def span(self) -> float:
        """The adaptable headroom ``b_max - b_min``."""
        return self.b_max - self.b_min

    @property
    def is_fixed(self) -> bool:
        """True when the connection cannot adapt (b_min == b_max)."""
        return self.span == 0.0

    def clamp(self, rate: float) -> float:
        """Project ``rate`` into the negotiated range."""
        return min(self.b_max, max(self.b_min, rate))

    def contains(self, rate: float) -> bool:
        return self.b_min - 1e-9 <= rate <= self.b_max + 1e-9


class ServiceClass:
    """Marker constants for connection service classes."""

    GUARANTEED = "guaranteed"
    BEST_EFFORT = "best_effort"


@dataclass(frozen=True)
class QoSRequest:
    """Full end-to-end QoS specification presented at connection setup.

    Section 5.1's parameter list: bandwidth bounds, an upper bound ``d`` on
    end-to-end delay, an upper bound ``jitter_bound`` on delay-jitter, and a
    maximum packet loss probability ``loss_bound``; the flowspec carries the
    ``(sigma, rho)`` envelope and ``L_max``.

    A ``None`` ``bounds`` means no QoS parameters were specified and the
    network serves the connection best-effort (Section 4).
    """

    flowspec: FlowSpec
    bounds: Optional[QoSBounds]
    delay_bound: float = float("inf")
    jitter_bound: float = float("inf")
    loss_bound: float = 1.0
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self):
        if self.delay_bound <= 0:
            raise ValueError(f"delay_bound must be positive, got {self.delay_bound}")
        if self.jitter_bound <= 0:
            raise ValueError(
                f"jitter_bound must be positive, got {self.jitter_bound}"
            )
        if not 0.0 < self.loss_bound <= 1.0:
            raise ValueError(f"loss_bound must be in (0, 1], got {self.loss_bound}")

    @property
    def service_class(self) -> str:
        return ServiceClass.BEST_EFFORT if self.bounds is None else ServiceClass.GUARANTEED

    @property
    def b_min(self) -> float:
        if self.bounds is None:
            raise ValueError("best-effort request has no bandwidth floor")
        return self.bounds.b_min

    @property
    def b_max(self) -> float:
        if self.bounds is None:
            raise ValueError("best-effort request has no bandwidth ceiling")
        return self.bounds.b_max


def audio_request(
    b_min: float = 16.0,
    b_max: float = 64.0,
    delay_bound: float = 1.0,
    jitter_bound: float = 0.6,
    loss_bound: float = 0.01,
    sigma: float = 4.0,
    l_max: float = 1.0,
) -> QoSRequest:
    """A CD-quality-degradable audio connection (Section 3.2's 16–64 kbps).

    Defaults mirror the Section 7.1 workload: most users open a 16 kbps
    connection; rates in kbps, times in seconds, sizes in kilobits.
    """
    return QoSRequest(
        flowspec=FlowSpec(sigma=sigma, rho=b_min, l_max=l_max),
        bounds=QoSBounds(b_min, b_max),
        delay_bound=delay_bound,
        jitter_bound=jitter_bound,
        loss_bound=loss_bound,
    )


def video_request(
    b_min: float = 60.0,
    b_max: float = 600.0,
    delay_bound: float = 1.5,
    jitter_bound: float = 1.0,
    loss_bound: float = 0.05,
    sigma: float = 30.0,
    l_max: float = 8.0,
) -> QoSRequest:
    """An adaptive wireless video connection (Section 3.2's 60–600 kbps)."""
    return QoSRequest(
        flowspec=FlowSpec(sigma=sigma, rho=b_min, l_max=l_max),
        bounds=QoSBounds(b_min, b_max),
        delay_bound=delay_bound,
        jitter_bound=jitter_bound,
        loss_bound=loss_bound,
    )
