"""Static/mobile portable classification (Section 3.4.2).

A portable is *static* once it has stayed in the same cell for the threshold
period ``T_th``, and *mobile* otherwise.  The classification drives both
adaptation eligibility (only static portables' connections are upgraded
beyond ``b_min``) and advance reservation (only mobile portables get
reservations in the next-predicted cell).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Hashable, List, Optional, Tuple

__all__ = ["PortableState", "StaticMobileClassifier"]


class PortableState(Enum):
    STATIC = "static"
    MOBILE = "mobile"


@dataclass
class _Residence:
    cell: Hashable
    since: float


class StaticMobileClassifier:
    """Tracks residence times and classifies portables.

    Transitions to STATIC are reported via the optional ``on_static``
    callback, which the resource manager uses to (a) upgrade the portable's
    QoS to the maximum the network can provide and (b) cancel its advance
    reservations (Section 3.4.2); ``on_mobile`` fires on every cell change.
    """

    def __init__(
        self,
        threshold: float,
        on_static: Optional[Callable[[Hashable, float], None]] = None,
        on_mobile: Optional[Callable[[Hashable, float], None]] = None,
    ):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self.on_static = on_static
        self.on_mobile = on_mobile
        self._residence: Dict[Hashable, _Residence] = {}
        self._notified_static: Dict[Hashable, bool] = {}

    def observe(self, portable_id: Hashable, cell: Hashable, now: float) -> PortableState:
        """Record the portable's current cell at time ``now``.

        Call on entry to a cell and whenever a fresh classification is
        needed; returns the state as of ``now``.
        """
        res = self._residence.get(portable_id)
        if res is None or res.cell != cell:
            moved = res is not None
            self._residence[portable_id] = _Residence(cell=cell, since=now)
            self._notified_static[portable_id] = False
            if moved and self.on_mobile is not None:
                self.on_mobile(portable_id, now)
            return PortableState.MOBILE
        return self.classify(portable_id, now)

    def classify(self, portable_id: Hashable, now: float) -> PortableState:
        """STATIC iff resident in the current cell for >= threshold."""
        res = self._residence.get(portable_id)
        if res is None:
            return PortableState.MOBILE
        if now - res.since >= self.threshold:
            if not self._notified_static.get(portable_id) and self.on_static:
                self._notified_static[portable_id] = True
                self.on_static(portable_id, now)
            return PortableState.STATIC
        return PortableState.MOBILE

    def is_static(self, portable_id: Hashable, now: float) -> bool:
        return self.classify(portable_id, now) is PortableState.STATIC

    def residence(self, portable_id: Hashable) -> Optional[Tuple[Hashable, float]]:
        """(cell, since) for a tracked portable, else None."""
        res = self._residence.get(portable_id)
        return (res.cell, res.since) if res else None

    def static_portables(self, now: float) -> List[Hashable]:
        """All portables classified static at ``now``."""
        return [
            pid
            for pid in self._residence
            if self.classify(pid, now) is PortableState.STATIC
        ]

    def forget(self, portable_id: Hashable) -> None:
        self._residence.pop(portable_id, None)
        self._notified_static.pop(portable_id, None)
