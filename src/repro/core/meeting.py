"""Meeting-room advance reservation (Section 6.2.1).

Handoff activity in a meeting room is spiky: a burst of arrivals around the
meeting start ``T_s`` and a burst of departures around its end ``T_a``.  The
booking calendar makes both bursts predictable:

* From ``T_s - Delta_s`` the room's base station advance-reserves resources
  for ``N_m - N_arrived(t)`` attendees (shrinking as attendees arrive); a
  release timer fires ``start_release`` after ``T_s`` and frees whatever is
  still unused.
* From ``T_a - Delta_a`` the room asks its *neighbors* to reserve for the
  expected leavers, distributed according to the room's handoff profile and
  shrinking as attendees actually leave; a release timer fires
  ``end_release`` after ``T_a``.

Paper parameters: ``Delta_s`` = 10 min, ``Delta_a`` = 5 min, start release
timer = 5 min, end release timer = 15 min.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from ..des import Environment
from ..profiles.records import BookingCalendar, Meeting
from .reservation import CellReservations

__all__ = ["MeetingRoomReservation"]


class MeetingRoomReservation:
    """Drives reservations in and around one meeting room.

    Parameters
    ----------
    env:
        Simulation environment (time unit: seconds).
    cell_id:
        The meeting room's cell id; reservations booked under the tag
        ``("meeting", cell_id)``.
    reservations:
        The room's own reservation ledger.
    neighbor_ledgers:
        Ledgers of the neighboring cells, for the departure-side bookings.
    handoff_distribution:
        Callable returning ``{neighbor: probability}`` from the room's cell
        profile (how leavers historically spread over neighbors); an empty
        dict falls back to a uniform split.
    per_user_bandwidth:
        Resources per attendee (the paper specifies ``N_m`` "in terms of the
        number of users"; Section 7.1 uses one connection per user).
    """

    def __init__(
        self,
        env: Environment,
        cell_id: Hashable,
        reservations: CellReservations,
        neighbor_ledgers: Dict[Hashable, CellReservations],
        handoff_distribution: Callable[[], Dict[Hashable, float]],
        per_user_bandwidth: float = 16.0,
        delta_s: float = 600.0,
        delta_a: float = 300.0,
        start_release: float = 300.0,
        end_release: float = 900.0,
    ):
        self.env = env
        self.cell_id = cell_id
        self.reservations = reservations
        self.neighbor_ledgers = dict(neighbor_ledgers)
        self.handoff_distribution = handoff_distribution
        self.per_user_bandwidth = per_user_bandwidth
        self.delta_s = delta_s
        self.delta_a = delta_a
        self.start_release = start_release
        self.end_release = end_release

        self.tag = ("meeting", cell_id)
        self._arrived = 0
        self._left = 0
        self._active_meeting: Optional[Meeting] = None
        self._outbound_base = 0  # attendees present at T_a - Delta_a
        self._left_at_outbound = 0
        self._outbound_active = False

    # -- lifecycle driving ---------------------------------------------------------

    def run(self, calendar: BookingCalendar):
        """DES process serving every meeting on the calendar in order."""
        for meeting in calendar.meetings:
            yield from self._serve_meeting(meeting)

    def _serve_meeting(self, meeting: Meeting):
        env = self.env
        # Phase 1: pre-start reservation ramp.
        t_reserve = max(env.now, meeting.start - self.delta_s)
        if t_reserve > env.now:
            yield env.timeout(t_reserve - env.now)
        self._active_meeting = meeting
        self._arrived = 0
        self._left = 0
        self._outbound_active = False
        self._update_inbound()

        # Phase 2: release timer after the start.
        release_at = meeting.start + self.start_release
        if release_at > env.now:
            yield env.timeout(release_at - env.now)
        self.reservations.reserve_aggregate(self.tag, 0.0)

        # Phase 3: pre-end neighbor reservations.
        t_outbound = max(env.now, meeting.end - self.delta_a)
        if t_outbound > env.now:
            yield env.timeout(t_outbound - env.now)
        self._outbound_base = self._arrived - self._left
        self._left_at_outbound = self._left
        self._outbound_active = True
        self._update_outbound()

        # Phase 4: release neighbors after the end timer.
        release_at = meeting.end + self.end_release
        if release_at > env.now:
            yield env.timeout(release_at - env.now)
        self._outbound_active = False
        for ledger in self.neighbor_ledgers.values():
            ledger.release_aggregate(self.tag)
        self._active_meeting = None

    # -- attendance callbacks (wired to the handoff layer) ----------------------------

    def attendee_arrived(self) -> None:
        """An expected attendee handed into the room."""
        self._arrived += 1
        self._update_inbound()

    def attendee_left(self) -> None:
        """An attendee handed out of the room."""
        self._left += 1
        if self._outbound_active:
            self._update_outbound()

    @property
    def arrived(self) -> int:
        return self._arrived

    @property
    def left(self) -> int:
        return self._left

    # -- reservation arithmetic ------------------------------------------------------

    def _update_inbound(self) -> None:
        """Reserve for ``N_m - N_arrived(t)`` attendees yet to come."""
        meeting = self._active_meeting
        if meeting is None:
            return
        missing = max(0, meeting.attendees - self._arrived)
        self.reservations.reserve_aggregate(
            self.tag, missing * self.per_user_bandwidth
        )

    def _update_outbound(self) -> None:
        """Neighbors reserve for the attendees still expected to leave.

        The paper's text counts leavers from ``N_m``; we count from the
        attendees actually present at ``T_a - Delta_a`` (``N_arrived - N_left``
        then), which is the quantity the base station can observe and what
        the worked example in Section 7.1 requires (a half-empty meeting
        should not trigger full-size neighbor reservations).
        """
        left_since = self._left - self._left_at_outbound
        expected = max(0, self._outbound_base - left_since)
        share = self.handoff_distribution() or {}
        if not share:
            neighbors = list(self.neighbor_ledgers)
            share = {n: 1.0 / len(neighbors) for n in neighbors} if neighbors else {}
        for neighbor, ledger in self.neighbor_ledgers.items():
            fraction = share.get(neighbor, 0.0)
            ledger.reserve_aggregate(
                self.tag, expected * fraction * self.per_user_bandwidth
            )
