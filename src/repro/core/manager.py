"""Cell-level resource-management orchestration (Figure 1).

``CellularResourceManager`` glues the pieces together the way the paper's
overview describes: connection requests run admission (with conflict
resolution squeezing excess shares), the static/mobile test gates both QoS
upgrades and advance reservations, handoffs consume advance reservations,
and the ``B_dyn`` pools adapt to static portables in neighboring cells.

This manager operates on the *wireless* hop of each cell — the scarce,
contended resource the paper's evaluation exercises.  End-to-end wired-path
admission is available separately via
:class:`~repro.core.admission.AdmissionController`.
"""

from __future__ import annotations

import math
from functools import partial
from heapq import heappop, heappush
from itertools import count
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..profiles.server import ProfileServer
from ..traffic.connection import Connection, ConnectionState
from .maxmin import MaxMinProblem, maxmin_allocation
from .qos import QoSRequest
from .statmob import StaticMobileClassifier

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..wireless.basestation import BaseStation
    from ..wireless.cell import Cell
    from ..wireless.handoff import HandoffOutcome

__all__ = ["CellularResourceManager"]


class CellularResourceManager:
    """Resource management across a set of cells.

    Parameters
    ----------
    env:
        DES environment (supplies the clock).
    cells:
        The managed cells, keyed by id.
    server:
        Zone profile server recording handoffs and backing predictions.
    static_threshold:
        ``T_th`` of the static/mobile test.
    on_handoff:
        Optional extra observer for handoff outcomes.
    incremental:
        When True (default) the periodic maintenance pass
        (:meth:`refresh_static_states`) touches only cells dirtied since
        the previous pass — cells whose links, ledgers, or populations
        changed, plus cells where a portable's static timer expired —
        instead of scanning every portable and rebalancing every cell.
        The two modes are bit-identical (rebalancing an untouched cell is
        the identity, and a pool recomputed from unchanged inputs lands on
        the same float); ``incremental=False`` keeps the full-scan
        reference path for equivalence testing.
    """

    def __init__(
        self,
        env,
        cells: Dict[Hashable, Cell],
        server: Optional[ProfileServer] = None,
        static_threshold: float = 300.0,
        on_handoff: Optional[Callable[[HandoffOutcome, float], None]] = None,
        incremental: bool = True,
    ):
        from ..wireless.basestation import BaseStation
        from ..wireless.handoff import HandoffEngine

        self.env = env
        self.cells = dict(cells)
        self.server = server or ProfileServer()
        self.statmob = StaticMobileClassifier(static_threshold)
        self._extra_on_handoff = on_handoff
        self.handoffs = HandoffEngine(
            get_cell=self.get_cell, on_handoff=self._handoff_observed
        )
        self.base_stations: Dict[Hashable, BaseStation] = {
            cell_id: BaseStation(cell, self.server, self.statmob, self.get_cell)
            for cell_id, cell in self.cells.items()
        }
        for cell_id, cell in self.cells.items():
            self.server.register_cell(
                cell_id, cell.cell_class, neighbors=sorted(cell.neighbors, key=repr)
            )
        #: All connections ever admitted, by id.
        self.connections: Dict[Hashable, Connection] = {}
        self._portables: Dict[Hashable, "Portable"] = {}
        self.blocked = 0
        self.admitted = 0
        self.dropped = 0
        self._incremental = bool(incremental)
        #: Per-cell index of portables carrying at least one connection.
        #: The maintenance hot paths (static withdrawal, pool sizing) only
        #: ever need these: a connectionless portable has nothing to
        #: withdraw, zero rebalance demand, and zero pool contribution, so
        #: per-cell maintenance cost tracks the *connected* occupancy, not
        #: the population.
        self._connected: Dict[Hashable, Dict[Hashable, None]] = {
            cell_id: {} for cell_id in self.cells
        }
        #: Cells touched since the last maintenance pass (insertion-ordered
        #: so the incremental refresh processes them deterministically).
        self._dirty: Dict[Hashable, None] = {}
        #: Static-flip timers: ``(deadline, seq, pid, cell_id, since)``.
        #: Armed when a portable with connections (re)settles in a cell, so
        #: the refresh pass learns about flips in otherwise-quiet cells
        #: without scanning the population.
        self._pending_static: List[Tuple[float, int, Hashable, Hashable, float]] = []
        self._pending_seq = count()
        #: The ``(cell, since)`` residence each armed timer refers to —
        #: dedups re-arming and invalidates superseded heap entries.
        self._armed_since: Dict[Hashable, Tuple[Hashable, float]] = {}
        for cell_id, cell in self.cells.items():
            cell.reservations.on_change = partial(self._mark_dirty, cell_id)

    # -- lookups --------------------------------------------------------------

    def get_cell(self, cell_id: Hashable) -> Cell:
        return self.cells[cell_id]

    def base_station(self, cell_id: Hashable) -> BaseStation:
        return self.base_stations[cell_id]

    @property
    def portables(self) -> Dict[Hashable, "Portable"]:
        """Attached portables by id (treat as read-only).

        Library code should not iterate this population on hot paths —
        per-cell work belongs on ``cell.present`` so cost tracks cell
        occupancy, not total population (lint rule REP005 enforces this).
        """
        return self._portables

    # -- portables --------------------------------------------------------------

    def attach_portable(self, portable, cell_id: Hashable) -> None:
        """Register a portable's initial location (no handoff recorded)."""
        self._portables[portable.portable_id] = portable
        portable.move_to(cell_id, self.env.now)
        self.cells[cell_id].enter(portable.portable_id, self.env.now)
        self.server.seed_presence(portable.portable_id, cell_id)
        self.statmob.observe(portable.portable_id, cell_id, self.env.now)
        self._mark_dirty(cell_id)
        self._index_portable(portable, cell_id)
        if portable.connections:
            self._arm_static_timer(portable)

    # -- connection lifecycle -------------------------------------------------------

    def request_connection(
        self, portable, qos: QoSRequest, ctype: int = 0
    ) -> Optional[Connection]:
        """Admit a new connection on the portable's current cell.

        Conflict resolution is implicit: admission tests the *floor*
        headroom (``C - b_resv - sum(b_min)``), so excess granted to ongoing
        connections never blocks a newcomer — the rebalance step afterwards
        shrinks their shares within bounds (Section 5.2, case (b)).

        Returns the ACTIVE connection, or None when blocked.
        """
        now = self.env.now
        cell = self.cells[portable.current_cell]
        conn = Connection(
            src=f"air:{cell.cell_id}",
            dst=f"bs:{cell.cell_id}",
            qos=qos,
            portable_id=portable.portable_id,
            ctype=ctype,
        )
        if qos.bounds is None:
            conn.activate([conn.src, conn.dst], 0.0, now)
            portable.attach(conn)
            self.connections[conn.conn_id] = conn
            self._index_portable(portable, cell.cell_id)
            return conn

        if qos.b_min > cell.link.excess_available + 1e-9:
            conn.block(now)
            self.blocked += 1
            return None

        cell.link.admit(conn.conn_id, qos.b_min)
        conn.activate([conn.src, conn.dst], qos.b_min, now)
        portable.attach(conn)
        self.connections[conn.conn_id] = conn
        self.admitted += 1
        self._mark_dirty(cell.cell_id)
        self._index_portable(portable, cell.cell_id)
        self._arm_static_timer(portable)
        self.rebalance(cell.cell_id)
        return conn

    def terminate_connection(self, conn: Connection) -> None:
        """Normal teardown; freed capacity is redistributed."""
        portable = self._portables.get(conn.portable_id)
        cell_id = portable.current_cell if portable else None
        if cell_id is not None:
            link = self.cells[cell_id].link
            if conn.conn_id in link.allocations:
                link.release(conn.conn_id)
        conn.terminate(self.env.now)
        if portable is not None and conn in portable.connections:
            portable.detach(conn)
        if cell_id is not None:
            if portable is not None:
                self._index_portable(portable, cell_id)
            self._mark_dirty(cell_id)
            self.rebalance(cell_id)

    def renegotiate(self, conn: Connection, new_qos: QoSRequest) -> bool:
        """Application-initiated adaptation (Sections 4.2 and 5.3).

        The network "essentially treats it as a new connection request":
        the new bounds are admission-tested at floor level; on success the
        connection's QoS is swapped in place (no service interruption) and
        the cell rebalances, on failure the old contract stays untouched.

        Returns True if the new contract was accepted.
        """
        portable = self._portables.get(conn.portable_id)
        if portable is None or conn.state is not ConnectionState.ACTIVE:
            raise RuntimeError("only active, attached connections renegotiate")
        if new_qos.bounds is None:
            raise ValueError("renegotiation requires bandwidth bounds")
        cell = self.cells[portable.current_cell]
        link = cell.link

        old_floor = conn.b_min if conn.qos.bounds is not None else 0.0
        extra_floor = new_qos.b_min - old_floor
        if extra_floor > 0 and extra_floor > link.excess_available + 1e-9:
            return False  # cannot grow the guarantee

        if conn.conn_id in link.allocations:
            link.release(conn.conn_id)
        link.admit(conn.conn_id, new_qos.b_min)
        conn.qos = new_qos
        conn.rate = new_qos.b_min
        self._mark_dirty(cell.cell_id)
        self.rebalance(cell.cell_id)
        return True

    # -- mobility ----------------------------------------------------------------

    def move_portable(self, portable, to_cell: Hashable) -> HandoffOutcome:
        """Hand a portable off to ``to_cell`` (must be a neighbor)."""
        return self.move_portables([(portable, to_cell)])[0]

    def move_portables(
        self, moves: Sequence[Tuple["Portable", Hashable]]
    ) -> List[HandoffOutcome]:
        """Hand off a wave of portables, rebalancing each cell once.

        Moves are applied in order with the exact per-move semantics of
        :meth:`move_portable` — withdraw the old base station's advance
        reservation, record the handoff, execute it (claiming reservations
        and cascading admission), reset the static clock, plan the next
        advance reservation — but max-min rebalancing is deferred to one
        pass per *affected* cell (in first-touch order) instead of running
        twice per portable.  This is bit-identical to sequential moves:
        rebalancing only rewrites excess shares and rates, never the
        floors, reservations, or static states that admission and planning
        read, and the final rebalance of a cell recomputes those shares
        from scratch.

        Raises on the first invalid move; earlier moves in the wave stand
        (their cells are still rebalanced before the exception propagates).
        """
        now = self.env.now
        outcomes: List[HandoffOutcome] = []
        affected: Dict[Hashable, None] = {}
        try:
            for portable, to_cell in moves:
                from_cell = portable.current_cell
                if to_cell not in self.cells[from_cell].neighbors:
                    raise ValueError(
                        f"{to_cell!r} is not a neighbor of {from_cell!r}"
                    )

                # Withdraw any reservation the old base station placed
                # elsewhere.
                self.base_stations[from_cell].withdraw_reservation(
                    portable.portable_id
                )
                self.server.report_handoff(
                    portable.portable_id, from_cell, to_cell
                )

                outcome = self.handoffs.execute(portable, to_cell, now)
                self.dropped += len(outcome.dropped)

                # Mobility resets the static clock and triggers the new
                # cell's advance-reservation planning.
                self.statmob.observe(portable.portable_id, to_cell, now)
                self.base_stations[to_cell].plan_advance_reservation(
                    portable, now
                )
                self._connected[from_cell].pop(portable.portable_id, None)
                self._index_portable(portable, to_cell)
                if portable.connections:
                    self._arm_static_timer(portable)

                affected.setdefault(from_cell, None)
                affected.setdefault(to_cell, None)
                self._mark_dirty(from_cell)
                self._mark_dirty(to_cell)
                outcomes.append(outcome)
        finally:
            for cell_id in affected:
                self.rebalance(cell_id)
        return outcomes

    # -- adaptation ---------------------------------------------------------------------

    def rebalance(self, cell_id: Hashable) -> Dict[Hashable, float]:
        """Max-min redistribution of the cell's excess among static owners.

        Single-link instance of the Section 5.2 policy: mobile portables'
        connections are pinned at ``b_min`` (demand 0), static portables'
        connections share the leftover up to their ``b_max``.
        """
        now = self.env.now
        cell = self.cells[cell_id]
        link = cell.link
        problem = MaxMinProblem()
        problem.add_link(cell_id, max(0.0, link.excess_available))
        conns: List[Connection] = []
        for conn_id in link.allocations:
            conn = self.connections.get(conn_id)
            if conn is None or conn.state is not ConnectionState.ACTIVE:
                continue
            if conn.qos.bounds is None:
                continue
            owner_static = self.statmob.is_static(conn.portable_id, now)
            demand = conn.qos.bounds.span if owner_static else 0.0
            problem.add_connection(conn_id, [cell_id], demand)
            conns.append(conn)
        shares = maxmin_allocation(problem)
        for conn in conns:
            share = shares.get(conn.conn_id, 0.0)
            link.set_excess(conn.conn_id, share)
            conn.rate = conn.qos.bounds.clamp(conn.b_min + share)
        return shares

    def refresh_static_states(self) -> None:
        """Re-run the static/mobile test and react to flips.

        Newly static portables get their reservations withdrawn, their
        profiles refreshed from the server, and their cells rebalanced (the
        QoS-upgrade path of Section 3.4.2).

        In incremental mode only *touched* cells are processed: cells
        dirtied since the previous pass plus cells where an armed static
        timer expired.  Untouched cells are provably fixpoints of the full
        scan — their statics were withdrawn/refreshed at their flip tick
        (both operations are idempotent), rebalancing them is the identity,
        and their neighbors' pool inputs are unchanged — so both modes
        produce bit-identical state.
        """
        now = self.env.now
        if not self._incremental:
            for pid, portable in self._portables.items():  # repro-lint: ignore[REP005]
                cell_id = portable.current_cell
                if cell_id is None:
                    continue
                if self.statmob.is_static(pid, now):
                    self.base_stations[cell_id].withdraw_reservation(pid)
                    self.base_stations[cell_id].cache.refresh_static(pid)
            for cell_id in self.cells:
                self.rebalance(cell_id)
            self.update_pools()
            return

        touched, flipped = self._collect_touched(now)
        for pid, cell_id in flipped:
            # Every live targeted reservation stems from its portable's
            # last move, and that move armed this timer — so processing
            # flips covers every withdrawal the full scan would perform
            # (its re-runs on continuing statics are no-ops).
            station = self.base_stations[cell_id]
            station.withdraw_reservation(pid)
            station.cache.refresh_static(pid)
        # Withdrawals release targeted reservations held in *other* cells'
        # ledgers; their on_change dirt must rebalance this tick (the full
        # scan would have), so fold it in before clearing.
        for cell_id in self._dirty:
            touched.setdefault(cell_id, None)
        self._dirty.clear()
        for cell_id in touched:
            self.rebalance(cell_id)
        self.update_pools(touched)

    def update_pools(self, cell_ids: Optional[Iterable[Hashable]] = None) -> None:
        """Section 5.3's ``B_dyn`` policy.

        Each cell sizes its pool to fit at least one maximum-rate connection
        of a static portable residing in a neighboring cell.  With
        ``cell_ids`` given, only those cells *and their neighbors* are
        re-sized — a cell's pool depends solely on rates of statics present
        in neighboring cells, so cells not adjacent to a touched cell keep
        their pool inputs (and hence their pools) unchanged.
        """
        now = self.env.now
        if cell_ids is None:
            targets = list(self.cells.values())
        else:
            expanded = dict.fromkeys(cell_ids)
            for cell_id in list(expanded):
                for neighbor_id in sorted(self.cells[cell_id].neighbors, key=repr):
                    expanded.setdefault(neighbor_id, None)
            targets = [self.cells[cell_id] for cell_id in expanded]
        for cell in targets:
            peak = 0.0
            for neighbor_id in sorted(cell.neighbors, key=repr):
                neighbor = self.cells[neighbor_id]
                # Connectionless portables contribute a zero rate, so the
                # connected index gives the same peak as the full roster
                # (``max`` is order-independent); the reference mode keeps
                # the original full-roster walk.
                occupants = (
                    self._connected[neighbor_id]
                    if self._incremental
                    else neighbor.present
                )
                for pid in occupants:
                    if not self.statmob.is_static(pid, now):
                        continue
                    portable = self._portables.get(pid)
                    if portable is not None:
                        peak = max(peak, portable.max_allocated_rate)
            cell.reservations.adapt_pool_for_static_neighbors(peak)

    # -- internals -----------------------------------------------------------------------

    def _mark_dirty(self, cell_id: Hashable) -> None:
        """Queue a cell for the next incremental maintenance pass."""
        self._dirty[cell_id] = None

    def _index_portable(self, portable, cell_id: Hashable) -> None:
        """Sync a portable's membership in the per-cell connected index."""
        bucket = self._connected[cell_id]
        if portable.connections:
            bucket[portable.portable_id] = None
        else:
            bucket.pop(portable.portable_id, None)

    def _arm_static_timer(self, portable) -> None:
        """Schedule a static-flip check for the portable's current residence.

        Only portables with connections are armed: an unconnected portable's
        flip is invisible to the refresh pass (nothing to withdraw, zero
        rebalance demand, zero pool contribution), so the heap stays
        proportional to the *connected* population.
        """
        pid = portable.portable_id
        res = self.statmob.residence(pid)
        if res is None:
            return
        token = res  # (cell, since)
        if self._armed_since.get(pid) == token:
            return
        cell_id, since = res
        deadline = since + self.statmob.threshold
        self._armed_since[pid] = token
        heappush(
            self._pending_static,
            (deadline, next(self._pending_seq), pid, cell_id, since),
        )

    def _collect_touched(
        self, now: float
    ) -> Tuple[Dict[Hashable, None], List[Tuple[Hashable, Hashable]]]:
        """Drain dirty cells and expired static timers.

        Returns the touched-cell set (insertion-ordered) and the list of
        ``(portable_id, cell_id)`` static flips that fired, in fire order.
        """
        touched = dict.fromkeys(self._dirty)
        self._dirty.clear()
        flipped: List[Tuple[Hashable, Hashable]] = []
        heap = self._pending_static
        while heap and heap[0][0] <= now:
            deadline, _seq, pid, cell_id, since = heappop(heap)
            if self._armed_since.get(pid) != (cell_id, since):
                continue  # superseded by a later move/arm
            res = self.statmob.residence(pid)
            if res != (cell_id, since):
                del self._armed_since[pid]
                continue  # residence changed without re-arming (no connections)
            if now - since >= self.statmob.threshold:
                del self._armed_since[pid]
                if cell_id in self.cells:
                    touched[cell_id] = None
                    flipped.append((pid, cell_id))
            else:
                # Float disagreement between the precomputed deadline and
                # the classifier's subtraction: nudge the timer one ulp.
                heappush(
                    heap,
                    (
                        math.nextafter(deadline, math.inf),
                        next(self._pending_seq),
                        pid,
                        cell_id,
                        since,
                    ),
                )
        return touched, flipped

    # -- observers ----------------------------------------------------------------------

    def _handoff_observed(self, outcome: HandoffOutcome, now: float) -> None:
        if self._extra_on_handoff is not None:
            self._extra_on_handoff(outcome, now)
