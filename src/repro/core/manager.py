"""Cell-level resource-management orchestration (Figure 1).

``CellularResourceManager`` glues the pieces together the way the paper's
overview describes: connection requests run admission (with conflict
resolution squeezing excess shares), the static/mobile test gates both QoS
upgrades and advance reservations, handoffs consume advance reservations,
and the ``B_dyn`` pools adapt to static portables in neighboring cells.

This manager operates on the *wireless* hop of each cell — the scarce,
contended resource the paper's evaluation exercises.  End-to-end wired-path
admission is available separately via
:class:`~repro.core.admission.AdmissionController`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional

from ..profiles.server import ProfileServer
from ..traffic.connection import Connection, ConnectionState
from .maxmin import MaxMinProblem, maxmin_allocation
from .qos import QoSRequest
from .statmob import StaticMobileClassifier

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..wireless.basestation import BaseStation
    from ..wireless.cell import Cell
    from ..wireless.handoff import HandoffOutcome

__all__ = ["CellularResourceManager"]


class CellularResourceManager:
    """Resource management across a set of cells.

    Parameters
    ----------
    env:
        DES environment (supplies the clock).
    cells:
        The managed cells, keyed by id.
    server:
        Zone profile server recording handoffs and backing predictions.
    static_threshold:
        ``T_th`` of the static/mobile test.
    on_handoff:
        Optional extra observer for handoff outcomes.
    """

    def __init__(
        self,
        env,
        cells: Dict[Hashable, Cell],
        server: Optional[ProfileServer] = None,
        static_threshold: float = 300.0,
        on_handoff: Optional[Callable[[HandoffOutcome, float], None]] = None,
    ):
        from ..wireless.basestation import BaseStation
        from ..wireless.handoff import HandoffEngine

        self.env = env
        self.cells = dict(cells)
        self.server = server or ProfileServer()
        self.statmob = StaticMobileClassifier(static_threshold)
        self._extra_on_handoff = on_handoff
        self.handoffs = HandoffEngine(
            get_cell=self.get_cell, on_handoff=self._handoff_observed
        )
        self.base_stations: Dict[Hashable, BaseStation] = {
            cell_id: BaseStation(cell, self.server, self.statmob, self.get_cell)
            for cell_id, cell in self.cells.items()
        }
        for cell_id, cell in self.cells.items():
            self.server.register_cell(
                cell_id, cell.cell_class, neighbors=sorted(cell.neighbors, key=repr)
            )
        #: All connections ever admitted, by id.
        self.connections: Dict[Hashable, Connection] = {}
        self._portables: Dict[Hashable, "Portable"] = {}
        self.blocked = 0
        self.admitted = 0
        self.dropped = 0

    # -- lookups --------------------------------------------------------------

    def get_cell(self, cell_id: Hashable) -> Cell:
        return self.cells[cell_id]

    def base_station(self, cell_id: Hashable) -> BaseStation:
        return self.base_stations[cell_id]

    # -- portables --------------------------------------------------------------

    def attach_portable(self, portable, cell_id: Hashable) -> None:
        """Register a portable's initial location (no handoff recorded)."""
        self._portables[portable.portable_id] = portable
        portable.move_to(cell_id, self.env.now)
        self.cells[cell_id].enter(portable.portable_id, self.env.now)
        self.server.seed_presence(portable.portable_id, cell_id)
        self.statmob.observe(portable.portable_id, cell_id, self.env.now)

    # -- connection lifecycle -------------------------------------------------------

    def request_connection(
        self, portable, qos: QoSRequest, ctype: int = 0
    ) -> Optional[Connection]:
        """Admit a new connection on the portable's current cell.

        Conflict resolution is implicit: admission tests the *floor*
        headroom (``C - b_resv - sum(b_min)``), so excess granted to ongoing
        connections never blocks a newcomer — the rebalance step afterwards
        shrinks their shares within bounds (Section 5.2, case (b)).

        Returns the ACTIVE connection, or None when blocked.
        """
        now = self.env.now
        cell = self.cells[portable.current_cell]
        conn = Connection(
            src=f"air:{cell.cell_id}",
            dst=f"bs:{cell.cell_id}",
            qos=qos,
            portable_id=portable.portable_id,
            ctype=ctype,
        )
        if qos.bounds is None:
            conn.activate([conn.src, conn.dst], 0.0, now)
            portable.attach(conn)
            self.connections[conn.conn_id] = conn
            return conn

        if qos.b_min > cell.link.excess_available + 1e-9:
            conn.block(now)
            self.blocked += 1
            return None

        cell.link.admit(conn.conn_id, qos.b_min)
        conn.activate([conn.src, conn.dst], qos.b_min, now)
        portable.attach(conn)
        self.connections[conn.conn_id] = conn
        self.admitted += 1
        self.rebalance(cell.cell_id)
        return conn

    def terminate_connection(self, conn: Connection) -> None:
        """Normal teardown; freed capacity is redistributed."""
        portable = self._portables.get(conn.portable_id)
        cell_id = portable.current_cell if portable else None
        if cell_id is not None:
            link = self.cells[cell_id].link
            if conn.conn_id in link.allocations:
                link.release(conn.conn_id)
        conn.terminate(self.env.now)
        if portable is not None and conn in portable.connections:
            portable.detach(conn)
        if cell_id is not None:
            self.rebalance(cell_id)

    def renegotiate(self, conn: Connection, new_qos: QoSRequest) -> bool:
        """Application-initiated adaptation (Sections 4.2 and 5.3).

        The network "essentially treats it as a new connection request":
        the new bounds are admission-tested at floor level; on success the
        connection's QoS is swapped in place (no service interruption) and
        the cell rebalances, on failure the old contract stays untouched.

        Returns True if the new contract was accepted.
        """
        portable = self._portables.get(conn.portable_id)
        if portable is None or conn.state is not ConnectionState.ACTIVE:
            raise RuntimeError("only active, attached connections renegotiate")
        if new_qos.bounds is None:
            raise ValueError("renegotiation requires bandwidth bounds")
        cell = self.cells[portable.current_cell]
        link = cell.link

        old_floor = conn.b_min if conn.qos.bounds is not None else 0.0
        extra_floor = new_qos.b_min - old_floor
        if extra_floor > 0 and extra_floor > link.excess_available + 1e-9:
            return False  # cannot grow the guarantee

        if conn.conn_id in link.allocations:
            link.release(conn.conn_id)
        link.admit(conn.conn_id, new_qos.b_min)
        conn.qos = new_qos
        conn.rate = new_qos.b_min
        self.rebalance(cell.cell_id)
        return True

    # -- mobility ----------------------------------------------------------------

    def move_portable(self, portable, to_cell: Hashable) -> HandoffOutcome:
        """Hand a portable off to ``to_cell`` (must be a neighbor)."""
        now = self.env.now
        from_cell = portable.current_cell
        if to_cell not in self.cells[from_cell].neighbors:
            raise ValueError(f"{to_cell!r} is not a neighbor of {from_cell!r}")

        # Withdraw any reservation the old base station placed elsewhere.
        self.base_stations[from_cell].withdraw_reservation(portable.portable_id)
        self.server.report_handoff(portable.portable_id, from_cell, to_cell)

        outcome = self.handoffs.execute(portable, to_cell, now)
        self.dropped += len(outcome.dropped)

        # Mobility resets the static clock and triggers the new cell's
        # advance-reservation planning.
        self.statmob.observe(portable.portable_id, to_cell, now)
        self.base_stations[to_cell].plan_advance_reservation(portable, now)

        self.rebalance(from_cell)
        self.rebalance(to_cell)
        return outcome

    # -- adaptation ---------------------------------------------------------------------

    def rebalance(self, cell_id: Hashable) -> Dict[Hashable, float]:
        """Max-min redistribution of the cell's excess among static owners.

        Single-link instance of the Section 5.2 policy: mobile portables'
        connections are pinned at ``b_min`` (demand 0), static portables'
        connections share the leftover up to their ``b_max``.
        """
        now = self.env.now
        cell = self.cells[cell_id]
        link = cell.link
        problem = MaxMinProblem()
        problem.add_link(cell_id, max(0.0, link.excess_available))
        conns: List[Connection] = []
        for conn_id in link.allocations:
            conn = self.connections.get(conn_id)
            if conn is None or conn.state is not ConnectionState.ACTIVE:
                continue
            if conn.qos.bounds is None:
                continue
            owner_static = self.statmob.is_static(conn.portable_id, now)
            demand = conn.qos.bounds.span if owner_static else 0.0
            problem.add_connection(conn_id, [cell_id], demand)
            conns.append(conn)
        shares = maxmin_allocation(problem)
        for conn in conns:
            share = shares.get(conn.conn_id, 0.0)
            link.set_excess(conn.conn_id, share)
            conn.rate = conn.qos.bounds.clamp(conn.b_min + share)
        return shares

    def refresh_static_states(self) -> None:
        """Re-run the static/mobile test everywhere and react to flips.

        Newly static portables get their reservations withdrawn, their
        profiles refreshed from the server, and their cells rebalanced (the
        QoS-upgrade path of Section 3.4.2).
        """
        now = self.env.now
        for pid, portable in self._portables.items():
            cell_id = portable.current_cell
            if cell_id is None:
                continue
            if self.statmob.is_static(pid, now):
                self.base_stations[cell_id].withdraw_reservation(pid)
                self.base_stations[cell_id].cache.refresh_static(pid)
        for cell_id in self.cells:
            self.rebalance(cell_id)
        self.update_pools()

    def update_pools(self) -> None:
        """Section 5.3's ``B_dyn`` policy for every cell.

        Each cell sizes its pool to fit at least one maximum-rate connection
        of a static portable residing in a neighboring cell.
        """
        now = self.env.now
        for cell in self.cells.values():
            peak = 0.0
            for neighbor_id in sorted(cell.neighbors, key=repr):
                neighbor = self.cells[neighbor_id]
                for pid in neighbor.present:
                    if not self.statmob.is_static(pid, now):
                        continue
                    portable = self._portables.get(pid)
                    if portable is not None:
                        peak = max(peak, portable.max_allocated_rate)
            cell.reservations.adapt_pool_for_static_neighbors(peak)

    # -- internals -----------------------------------------------------------------------

    def _handoff_observed(self, outcome: HandoffOutcome, now: float) -> None:
        if self._extra_on_handoff is not None:
            self._extra_on_handoff(outcome, now)
