"""Resource-conflict resolution (Section 5.2).

With loose QoS bounds, two conflicts arise: (a) excess capacity appears and
must be divided among competing (static-portable) connections, and (b) a new
connection fits the *floors* but the headroom is currently handed out as
excess to ongoing connections.  Both are resolved by recomputing the max-min
fair division of excess bandwidth and shrinking/growing ongoing connections
within their pre-negotiated bounds — floors are never violated.

This is the *centralized* resolver used by the cell-level simulations; the
message-passing realization is :mod:`repro.core.adaptation`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from ..network.topology import Topology
from ..traffic.connection import Connection, ConnectionState
from .maxmin import MaxMinProblem, maxmin_allocation

__all__ = ["ConflictResolver"]


class ConflictResolver:
    """Recomputes and applies max-min excess shares across a topology.

    The resolver tracks the set of adaptive connections and which of them
    belong to *static* portables: per Section 4.3 only static portables'
    connections are upgraded beyond ``b_min`` (mobile portables stay at the
    floor to minimize adaptation churn during handoffs).
    """

    def __init__(self, topo: Topology):
        self.topo = topo
        self._routes: Dict[Hashable, List[Hashable]] = {}
        self._connections: Dict[Hashable, Connection] = {}
        self._static: Dict[Hashable, bool] = {}
        #: Number of reallocation rounds performed (observability).
        self.rounds = 0

    # -- membership ---------------------------------------------------------

    def track(self, conn: Connection, static_portable: bool) -> None:
        """Start managing ``conn``'s excess share (route must be set)."""
        if not conn.route:
            raise ValueError(f"connection {conn.conn_id!r} has no route")
        self._connections[conn.conn_id] = conn
        self._routes[conn.conn_id] = list(conn.route)
        self._static[conn.conn_id] = static_portable

    def untrack(self, conn_id: Hashable) -> None:
        self._connections.pop(conn_id, None)
        self._routes.pop(conn_id, None)
        self._static.pop(conn_id, None)

    def set_static(self, conn_id: Hashable, static_portable: bool) -> None:
        """Flip a connection's upgrade eligibility (portable state change)."""
        if conn_id in self._static:
            self._static[conn_id] = static_portable

    @property
    def tracked(self) -> List[Hashable]:
        return list(self._connections)

    # -- resolution ------------------------------------------------------------

    def build_problem(self) -> Tuple[MaxMinProblem, Dict[Hashable, float]]:
        """Snapshot the current excess-sharing instance.

        Returns the problem plus the demand map used (0 for mobile-owned
        connections, ``b_max - b_min`` for static-owned ones).
        """
        problem = MaxMinProblem()
        for link in self.topo.links:
            problem.add_link(link.key, max(0.0, link.excess_available))
        demands: Dict[Hashable, float] = {}
        for conn_id, conn in self._connections.items():
            if conn.state is not ConnectionState.ACTIVE:
                continue
            if conn.qos.bounds is None:
                continue
            span = conn.qos.bounds.span
            demand = span if self._static.get(conn_id, False) else 0.0
            demands[conn_id] = demand
            links = [link.key for link in self.topo.path_links(self._routes[conn_id])]
            problem.add_connection(conn_id, links, demand)
        return problem, demands

    def resolve(self) -> Dict[Hashable, float]:
        """Recompute max-min excess shares and apply them to the links.

        Returns the new excess share per connection id.  Connections' stored
        ``rate`` fields are refreshed to ``b_min + excess``.
        """
        problem, _ = self.build_problem()
        shares = maxmin_allocation(problem)
        self._apply(shares)
        self.rounds += 1
        return shares

    def excess_capacity_event(self) -> Dict[Hashable, float]:
        """Entry point for "excess resources appeared" (conflict case (a))."""
        return self.resolve()

    def squeeze_for(self, route_links: Iterable[Tuple[Hashable, Hashable]],
                    b_min: float) -> bool:
        """Conflict case (b): can a new floor ``b_min`` fit on ``route_links``?

        True iff every link's *floor-level* headroom (capacity minus advance
        reservations minus existing floors) covers ``b_min`` — excess shares
        do not count because resolution can always reclaim them.
        """
        for key in route_links:
            link = self.topo.link(*key)
            if b_min > link.excess_available + 1e-9:
                return False
        return True

    # -- internals ----------------------------------------------------------------

    def _apply(self, shares: Dict[Hashable, float]) -> None:
        for conn_id, share in shares.items():
            conn = self._connections[conn_id]
            route = self._routes[conn_id]
            for link in self.topo.path_links(route):
                if conn_id in link.allocations:
                    link.set_excess(conn_id, share)
            if conn.qos.bounds is not None:
                conn.rate = conn.qos.bounds.clamp(conn.b_min + share)
