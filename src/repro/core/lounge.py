"""Cafeteria and default-lounge advance reservation (Sections 6.2.2–6.2.3).

Both algorithms operate in discrete time slots.  The base station counts the
handoffs out of the cell during each slot, predicts the next slot's count,
and asks its neighbors to reserve bandwidth for the predicted leavers,
distributed according to the cell's aggregate handoff profile.

* **Cafeteria** — slow time-varying activity; prediction is a least-squares
  linear extrapolation over the last three slots.
* **Default** — random time-varying activity; prediction is one-step memory
  (``N(t+1) = N(t)``).

Each also tracks *incoming* handoffs when at least one neighbor is a
``default`` cell: a default neighbor's own predictions are not to be
trusted, so the cell independently predicts its arrivals and reserves for
them locally — the cafeteria with its linear model, the default cell with
the probabilistic algorithm of Section 6.3 (eqn. 7).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Hashable, Optional, Sequence

from ..des import Environment
from .prediction import linear_ls_predict, one_step_memory_predict
from .probabilistic import ProbabilisticAdmission
from .reservation import CellReservations

__all__ = ["SlotCounter", "CafeteriaReservation", "DefaultLoungeReservation"]


class SlotCounter:
    """Counts events per fixed-length time slot, keeping a short history."""

    def __init__(self, history: int = 8):
        if history < 3:
            raise ValueError(f"history must be >= 3, got {history}")
        self._current = 0
        self._history: Deque[int] = deque(maxlen=history)

    def count(self, n: int = 1) -> None:
        self._current += n

    def roll(self) -> int:
        """Close the current slot; returns its count."""
        closed = self._current
        self._history.append(closed)
        self._current = 0
        return closed

    @property
    def current(self) -> int:
        return self._current

    @property
    def history(self) -> Sequence[int]:
        return list(self._history)

    def last(self, n: int) -> Optional[Sequence[int]]:
        """The last ``n`` closed slots (oldest first), or None if too few."""
        if len(self._history) < n:
            return None
        return list(self._history)[-n:]


class _SlottedLounge:
    """Shared machinery: slot clock, counters, neighbor distribution."""

    kind = "lounge"

    def __init__(
        self,
        env: Environment,
        cell_id: Hashable,
        reservations: CellReservations,
        neighbor_ledgers: Dict[Hashable, CellReservations],
        handoff_distribution: Callable[[], Dict[Hashable, float]],
        per_user_bandwidth: float = 16.0,
        slot_duration: float = 60.0,
        default_neighbors: Sequence[Hashable] = (),
    ):
        if slot_duration <= 0:
            raise ValueError(f"slot_duration must be positive, got {slot_duration}")
        self.env = env
        self.cell_id = cell_id
        self.reservations = reservations
        self.neighbor_ledgers = dict(neighbor_ledgers)
        self.handoff_distribution = handoff_distribution
        self.per_user_bandwidth = per_user_bandwidth
        self.slot_duration = slot_duration
        self.default_neighbors = set(default_neighbors)

        self.tag = (self.kind, cell_id)
        self.outgoing = SlotCounter()
        self.incoming = SlotCounter()
        #: Predicted outgoing handoffs for the upcoming slot (observability).
        self.predicted_out: float = 0.0
        self.predicted_in: float = 0.0

    # -- event feeds (wired to the handoff layer) ------------------------------------

    def handoff_out(self) -> None:
        self.outgoing.count()

    def handoff_in(self) -> None:
        self.incoming.count()

    # -- the slot process --------------------------------------------------------------

    def run(self):
        """DES process: close a slot every ``slot_duration`` and re-reserve."""
        while True:
            yield self.env.timeout(self.slot_duration)
            self.outgoing.roll()
            self.incoming.roll()
            self._reserve_for_next_slot()

    def _reserve_for_next_slot(self) -> None:
        self.predicted_out = self._predict(self.outgoing)
        self._spread_to_neighbors(self.predicted_out)
        if self.default_neighbors:
            self._reserve_local()

    def _spread_to_neighbors(self, predicted: float) -> None:
        share = self.handoff_distribution() or {}
        if not share and self.neighbor_ledgers:
            n = len(self.neighbor_ledgers)
            share = {k: 1.0 / n for k in self.neighbor_ledgers}
        for neighbor, ledger in self.neighbor_ledgers.items():
            fraction = share.get(neighbor, 0.0)
            ledger.reserve_aggregate(
                self.tag, predicted * fraction * self.per_user_bandwidth
            )

    # -- subclass hooks ------------------------------------------------------------------

    def _predict(self, counter: SlotCounter) -> float:
        raise NotImplementedError

    def _reserve_local(self) -> None:
        raise NotImplementedError


class CafeteriaReservation(_SlottedLounge):
    """Section 6.2.2: linear least-squares prediction over 3 slots."""

    kind = "cafeteria"

    def _predict(self, counter: SlotCounter) -> float:
        window = counter.last(3)
        if window is None:
            # Too little history: behave like one-step memory until warm.
            history = counter.history
            return float(history[-1]) if history else 0.0
        return linear_ls_predict(window)

    def _reserve_local(self) -> None:
        """Predict arrivals independently of untrusted default neighbors."""
        self.predicted_in = self._predict(self.incoming)
        self.reservations.reserve_aggregate(
            ("cafeteria-in", self.cell_id),
            self.predicted_in * self.per_user_bandwidth,
        )


class DefaultLoungeReservation(_SlottedLounge):
    """Section 6.2.3: one-step memory, plus eqn. (7) with default neighbors.

    ``admission`` and ``occupancy`` are needed only when a default neighbor
    exists: the probabilistic algorithm sizes the local reservation from the
    current per-type occupancies of this cell and its neighbor.
    """

    kind = "default"

    def __init__(
        self,
        *args,
        admission: Optional[ProbabilisticAdmission] = None,
        occupancy: Optional[Callable[[], tuple]] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.admission = admission
        self.occupancy = occupancy

    def _predict(self, counter: SlotCounter) -> float:
        history = counter.history
        return one_step_memory_predict(history[-1]) if history else 0.0

    def _reserve_local(self) -> None:
        if self.admission is None or self.occupancy is None:
            return
        local_counts, neighbor_counts = self.occupancy()
        max_counts = self.admission.max_admissible_counts(
            local_counts, neighbor_counts
        )
        amount = self.admission.reservation_for(max_counts)
        # eqn. (7): the bandwidth to keep free for surviving + handing-off
        # connections; booked locally under the default tag.
        self.reservations.reserve_aggregate(("default-in", self.cell_id), amount)
